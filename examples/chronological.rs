//! Chronological prediction, end to end — the paper's §4.3 workflow:
//! train on 2005 SPEC announcements, predict the 2006 systems, and inspect
//! which components drive the prediction.
//!
//! Run with: `cargo run --release --example chronological [family]`
//! (default: "Opteron 2"; families: Xeon, "Pentium 4", "Pentium D",
//! Opteron, "Opteron 2", "Opteron 4", "Opteron 8")

use perfpredict::dse::chrono::{run_chronological, ChronoConfig};
use perfpredict::dse::report::{f, render_table};
use perfpredict::mlmodels::ModelKind;
use perfpredict::specdata::ProcessorFamily;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Opteron 2".into());
    let family =
        ProcessorFamily::from_name(&name).unwrap_or_else(|| panic!("unknown family '{name}'"));

    let cfg = ChronoConfig {
        train_year: 2005,
        models: ModelKind::FIGURE7_ORDER.to_vec(),
        data_seed: 42,
        seed: 7,
        estimate_errors: true,
        export_models: None,
    };
    println!(
        "chronological prediction for {} (2005 -> 2006)…\n",
        family.name()
    );
    let r = run_chronological(family, &cfg);
    println!(
        "training records (2005): {}   test records (2006): {}\n",
        r.n_train, r.n_test
    );

    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                p.model.abbrev().to_string(),
                f(p.error_mean, 2),
                f(p.error_std, 2),
                p.estimated.map(|e| f(e.max, 2)).unwrap_or_default(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "model".into(),
                "2006 err %".into(),
                "std".into(),
                "est (2005, max) %".into(),
            ],
            &rows,
        )
    );

    let (best, err) = r.best();
    println!(
        "\nbest model: {} at {err:.2}% mean error",
        best.model.abbrev()
    );
    println!("\nwhat the best model looks at (§4.4-style importance):");
    for imp in best.importance.iter().take(5) {
        println!("  {:<22} {:.3}", imp.name, imp.score);
    }
    println!(
        "\npaper's finding: linear regression beats neural networks here — networks \
         over-fit the training year and extrapolate poorly into the next."
    );
}
