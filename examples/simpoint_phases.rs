//! SimPoint-style phase analysis — the §4.1 substrate on its own: split a
//! benchmark's execution into intervals, cluster basic-block vectors, and
//! show how few representative intervals reproduce full-run behaviour.
//!
//! Run with: `cargo run --release --example simpoint_phases [benchmark]`

use perfpredict::cpusim::core::Core;
use perfpredict::cpusim::simpoint::analyze;
use perfpredict::cpusim::trace::TraceGenerator;
use perfpredict::cpusim::{Benchmark, CpuConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gcc".into());
    let benchmark =
        Benchmark::from_name(&name).unwrap_or_else(|| panic!("unknown benchmark '{name}'"));
    let seed = 0xC0FFEE;
    let n_intervals = 20;
    let interval_len = 10_000u64;

    println!(
        "phase analysis of {}: {} intervals x {} instructions",
        benchmark.name(),
        n_intervals,
        interval_len
    );
    let analysis = analyze(benchmark, seed, n_intervals, interval_len, 6);
    println!("clusters found: k = {}", analysis.k);
    println!("interval -> cluster: {:?}", analysis.assignments);
    println!("\nselected simulation points:");
    for p in &analysis.points {
        println!("  interval {:>2}  weight {:.2}", p.interval, p.weight);
    }

    // Compare: cycles of the full run vs. the SimPoint-weighted estimate.
    // Both sides exclude cold-start effects via warm-up (standard SimPoint
    // practice): the reference warms on its first interval, each selected
    // interval warms on the interval preceding it.
    let cfg = CpuConfig::baseline();
    let total = n_intervals as u64 * interval_len;
    let mut gen = TraceGenerator::for_benchmark(benchmark, seed);
    let mut core = Core::new(cfg);
    let full = core.run_with_warmup(&mut gen, interval_len, total - interval_len);
    let full_cpi = full.cycles as f64 / full.instructions as f64;

    let mut weighted_cpi = 0.0;
    for p in &analysis.points {
        let mut gen = TraceGenerator::for_benchmark(benchmark, seed);
        let skip = p.interval.saturating_sub(1) as u64 * interval_len;
        for _ in 0..skip {
            let _ = gen.next_inst();
        }
        let mut core = Core::new(cfg);
        let stats = if p.interval == 0 {
            // Warm interval 0 on a replay of itself.
            let trace = gen.take_vec(interval_len as usize);
            let mut src = perfpredict::cpusim::trace::ReplaySource::new(&trace, 1);
            core.run_with_warmup(&mut src, interval_len, interval_len)
        } else {
            core.run_with_warmup(&mut gen, interval_len, interval_len)
        };
        weighted_cpi += p.weight * stats.cycles as f64 / stats.instructions as f64;
    }

    println!("\nfull-run CPI:            {full_cpi:.3}");
    println!("SimPoint-weighted CPI:   {weighted_cpi:.3}");
    println!(
        "error from simulating only {} of {} intervals: {:.1}%",
        analysis.points.len(),
        n_intervals,
        100.0 * (weighted_cpi - full_cpi).abs() / full_cpi
    );
}
