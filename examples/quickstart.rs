//! Quickstart: train a surrogate on a small sample of the microprocessor
//! design space and use it to find fast configurations without simulating
//! them.
//!
//! Run with: `cargo run --release --example quickstart`

use perfpredict::cpusim::{sweep_design_space, Benchmark, DesignSpace, SimOptions};
use perfpredict::dse::data::table_from_sweep;
use perfpredict::mlmodels::{train, ModelKind};

fn main() {
    // 1. A design space: every 8th point of the paper's 4608-point lattice
    //    keeps this example fast (576 configurations).
    let full = DesignSpace::table1();
    let space = DesignSpace::from_configs(full.configs().iter().copied().step_by(8).collect());
    println!("design space: {} configurations", space.len());

    // 2. Simulate a 5% sample — the only simulator time we spend.
    let sim = SimOptions {
        instructions: 30_000,
        ..Default::default()
    };
    let sample_configs: Vec<_> = space.configs().iter().copied().step_by(20).collect(); // 5% systematic sample
    let sample_space = DesignSpace::from_configs(sample_configs);
    println!("simulating {} sampled configurations…", sample_space.len());
    let sample_results = sweep_design_space(&sample_space, Benchmark::Gcc, &sim);
    let sample_table = table_from_sweep(&sample_results);

    // 3. Train the paper's best model (NN-E, exhaustive-prune network).
    println!("training NN-E on the sample…");
    let model = train(ModelKind::NnE, &sample_table, 42);

    // 4. Predict the whole space and rank configurations — no simulation.
    let all_results = sweep_design_space(&space, Benchmark::Gcc, &sim); // ground truth for the demo
    let full_table = table_from_sweep(&all_results);
    let predictions = model.predict(&full_table);

    let mut ranked: Vec<(usize, f64)> = predictions.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1));

    println!("\npredicted fastest configurations for gcc:");
    for &(idx, pred) in ranked.iter().take(3) {
        let cfg = &space.configs()[idx];
        let actual = all_results[idx].cycles;
        println!(
            "  L1I {:>2}KB L1D {:>2}KB L2 {:>4}KB L3 {} bpred {:<11} width {}: predicted {:.0} cycles, simulated {:.0} ({:+.1}% off)",
            cfg.l1i.size_kb,
            cfg.l1d.size_kb,
            cfg.l2.size_kb,
            if cfg.l3.is_some() { "8MB" } else { " - " },
            cfg.bpred.name(),
            cfg.width,
            pred,
            actual,
            100.0 * (pred - actual) / actual,
        );
    }

    // 5. How good is the surrogate overall?
    let (mape, std) = perfpredict::linalg::stats::mape(
        &predictions,
        &all_results.iter().map(|r| r.cycles).collect::<Vec<_>>(),
    );
    println!("\nsurrogate error over the whole space: {mape:.2}% ± {std:.2}%");
    println!(
        "simulator work saved: {} of {} configurations never simulated (in a real DSE)",
        space.len() - sample_space.len(),
        space.len()
    );
}
