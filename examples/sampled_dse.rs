//! Sampled design-space exploration, end to end — the paper's §4.2 workflow
//! on one benchmark, comparing all ten models and the *select* method.
//!
//! Run with: `cargo run --release --example sampled_dse [benchmark]`
//! (default benchmark: mesa)

use perfpredict::cpusim::{Benchmark, DesignSpace, SimOptions};
use perfpredict::dse::report::{pct, render_table};
use perfpredict::dse::sampled::{run_sampled_dse, SampledConfig, SamplingStrategy};
use perfpredict::dse::selectbest::select_method_series;
use perfpredict::mlmodels::ModelKind;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mesa".into());
    let benchmark = Benchmark::from_name(&name)
        .unwrap_or_else(|| panic!("unknown benchmark '{name}' (try applu/equake/gcc/mesa/mcf)"));

    // Every 4th configuration keeps the example minutes-fast while
    // preserving the lattice structure.
    let full = DesignSpace::table1();
    let space = DesignSpace::from_configs(full.configs().iter().copied().step_by(4).collect());

    let cfg = SampledConfig {
        sampling_rates: vec![0.02, 0.05],
        strategy: SamplingStrategy::Random,
        models: ModelKind::ALL.to_vec(),
        sim: SimOptions {
            instructions: 40_000,
            ..Default::default()
        },
        seed: 7,
        estimate_errors: true,
        export_models: None,
    };

    println!(
        "sampled DSE on {} — {} configurations, sampling at 2% and 5%…",
        benchmark.name(),
        space.len()
    );
    let run = run_sampled_dse(benchmark, &space, &cfg, None);
    println!(
        "cycle range over the space: {:.2}x, variation {:.3}\n",
        run.range, run.variation
    );

    for &rate in &cfg.sampling_rates {
        println!("sampling rate {:.0}%:", rate * 100.0);
        let mut rows: Vec<Vec<String>> = Vec::new();
        for m in ModelKind::ALL {
            let p = run.point(m, rate).expect("point");
            rows.push(vec![
                m.abbrev().to_string(),
                pct(p.true_error),
                pct(p.estimated.expect("estimated").max),
            ]);
        }
        rows.sort_by(|a, b| {
            a[1].parse::<f64>()
                .unwrap()
                .total_cmp(&b[1].parse::<f64>().unwrap())
        });
        print!(
            "{}",
            render_table(
                &[
                    "model".into(),
                    "true err %".into(),
                    "estimated (max) %".into()
                ],
                &rows,
            )
        );
        println!();
    }

    println!("select method (best estimated error wins):");
    for s in select_method_series(&run) {
        println!(
            "  at {:.0}% sampling -> picks {} (true error {:.2}%)",
            s.rate * 100.0,
            s.chosen.abbrev(),
            s.true_error
        );
    }
}
