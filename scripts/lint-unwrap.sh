#!/usr/bin/env bash
# Fail on `.unwrap()` and message-less `assert!` in non-test library code.
#
# Fallible paths use the typed `fault::Error` hierarchy; production code
# must propagate with `?`, use a recoverable default, or `expect()` with a
# message documenting the invariant. Asserts that *do* belong in library
# code (true invariants) must carry a message so the panic names what was
# violated. The message check is a single-line heuristic: a complete
# `assert!(..);` / `assert_eq!(..);` / `assert_ne!(..);` with no string
# literal on the line is flagged (`debug_assert!` and `prop_assert!` are
# exempt, as are multi-line asserts — put the message on the first line).
# Test modules (everything after the first `#[cfg(test)]`), `tests/`
# directories, and the vendored `crates/compat/` tree are exempt.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
while IFS= read -r file; do
    hits=$(awk '
        /#\[cfg\(test\)\]/ { exit }
        { sub(/\/\/.*/, "") }          # strip line comments and doc text
        /\.unwrap\(\)/ { print FILENAME ":" FNR ": unwrap: " $0; found = 1 }
        /(^|[^_a-zA-Z])assert(_eq|_ne)?!\(/ && /\);/ && !/"/ {
            print FILENAME ":" FNR ": bare assert: " $0; found = 1
        }
        END { exit !found }
    ' "$file" || true)
    if [ -n "$hits" ]; then
        echo "$hits"
        fail=1
    fi
done < <(find src crates/*/src -name '*.rs' -not -path 'crates/compat/*')

if [ "$fail" -ne 0 ]; then
    echo
    echo "error: .unwrap() or message-less assert! in non-test library code —"
    echo "use '?', a recoverable default, expect(\"<documented invariant>\"),"
    echo "or give the assert a message naming the violated invariant."
    exit 1
fi
echo "unwrap lint: clean"
