#!/usr/bin/env bash
# Thin wrapper around the workspace-native static analyzer. The awk
# heuristic that used to live here (single-line, comment-blind, unwrap
# and bare-assert only) is retired: `crates/analyze` lexes the source
# for real and enforces the full invariant set — panic-policy,
# bare-assert, float-order, nondet-iter, lossy-cast, error-policy —
# with hash-pinned waivers in analyze.toml. See DESIGN.md §10.
#
# Usage: scripts/lint-unwrap.sh [extra analyze args...]
#   e.g. scripts/lint-unwrap.sh --format json
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run -q -p analyze -- "$@"
