#!/usr/bin/env bash
# Fail on `.unwrap()` in non-test library code.
#
# Fallible paths use the typed `fault::Error` hierarchy; production code
# must propagate with `?`, use a recoverable default, or `expect()` with a
# message documenting the invariant. Test modules (everything after the
# first `#[cfg(test)]`), `tests/` directories, and the vendored
# `crates/compat/` tree are exempt.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
while IFS= read -r file; do
    hits=$(awk '
        /#\[cfg\(test\)\]/ { exit }
        { sub(/\/\/.*/, "") }          # strip line comments and doc text
        /\.unwrap\(\)/ { print FILENAME ":" FNR ": " $0; found = 1 }
        END { exit !found }
    ' "$file" || true)
    if [ -n "$hits" ]; then
        echo "$hits"
        fail=1
    fi
done < <(find src crates/*/src -name '*.rs' -not -path 'crates/compat/*')

if [ "$fail" -ne 0 ]; then
    echo
    echo "error: .unwrap() in non-test library code — use '?', a recoverable"
    echo "default, or expect(\"<documented invariant>\") instead."
    exit 1
fi
echo "unwrap lint: clean"
