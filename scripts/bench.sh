#!/usr/bin/env bash
# Run the kernel-level criterion benchmarks and assemble their JSON-lines
# output into BENCH_selection.json / BENCH_nn.json / BENCH_dse.json /
# BENCH_serve.json at the repo root (or under --out-dir).
#
# Usage:
#   scripts/bench.sh                  # full timing budgets (minutes)
#   scripts/bench.sh --quick          # CRITERION_QUICK smoke budgets (seconds),
#                                     # for CI and local sanity checks
#   scripts/bench.sh --out-dir DIR    # write BENCH_*.json under DIR instead of
#                                     # the repo root (e.g. a fresh run to feed
#                                     # `perfpredict perf-report` against the
#                                     # committed baselines)
#
# Each BENCH_*.json is a JSON document:
#   { "mode": "quick"|"full", "results": [ {bench, mean_ns, ...}, ... ] }
# The per-bench records come verbatim from the compat criterion harness
# (CRITERION_JSON_LINES); equivalence between the incremental/batched and
# reference/scalar paths is asserted inside the bench binaries themselves
# — nn additionally pins the AVX2 linalg kernels to the scalar oracle,
# and serve pins the compiled specialized predictors to the interpreted
# transform-then-predict path (PERFPREDICT_SERVE=interpreted) — so a
# completed run certifies bit-identical answers, not just speed.
# The dse bench also times the adaptive (query-by-committee) explorer
# against its equal-budget random baseline (dse/adaptive_vs_random_quick),
# so acquisition-loop regressions land in BENCH_dse.json.
set -euo pipefail
cd "$(dirname "$0")/.."

mode=full
out_dir=.
while [ $# -gt 0 ]; do
    case "$1" in
        --quick)
            mode=quick
            export CRITERION_QUICK=1
            shift
            ;;
        --out-dir)
            [ $# -ge 2 ] || { echo "error: --out-dir requires a path" >&2; exit 2; }
            out_dir=$2
            shift 2
            ;;
        *)
            echo "error: unknown argument '$1' (usage: bench.sh [--quick] [--out-dir DIR])" >&2
            exit 2
            ;;
    esac
done
mkdir -p "$out_dir"

for bench in selection nn dse serve; do
    lines=$(mktemp)
    trap 'rm -f "$lines"' EXIT
    CRITERION_JSON_LINES="$lines" cargo bench -p bench --bench "$bench"
    if [ ! -s "$lines" ]; then
        echo "error: bench '$bench' emitted no results" >&2
        exit 1
    fi
    out="$out_dir/BENCH_${bench}.json"
    {
        printf '{"mode":"%s","results":[\n' "$mode"
        # JSON-lines -> comma-separated array elements.
        sed '$!s/$/,/' "$lines"
        printf ']}\n'
    } > "$out"
    rm -f "$lines"
    trap - EXIT
    echo "wrote $out ($(grep -c '"bench"' "$out") results)"
done
