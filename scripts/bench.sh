#!/usr/bin/env bash
# Run the kernel-level criterion benchmarks and assemble their JSON-lines
# output into BENCH_selection.json / BENCH_nn.json / BENCH_dse.json /
# BENCH_serve.json at the repo root.
#
# Usage:
#   scripts/bench.sh            # full timing budgets (minutes)
#   scripts/bench.sh --quick    # CRITERION_QUICK smoke budgets (seconds),
#                               # for CI and local sanity checks
#
# Each BENCH_*.json is a JSON document:
#   { "mode": "quick"|"full", "results": [ {bench, mean_ns, ...}, ... ] }
# The per-bench records come verbatim from the compat criterion harness
# (CRITERION_JSON_LINES); equivalence between the incremental/batched and
# reference/scalar paths is asserted inside the bench binaries themselves,
# so a completed run certifies bit-identical answers, not just speed.
set -euo pipefail
cd "$(dirname "$0")/.."

mode=full
if [ "${1:-}" = "--quick" ]; then
    mode=quick
    export CRITERION_QUICK=1
fi

for bench in selection nn dse serve; do
    lines=$(mktemp)
    trap 'rm -f "$lines"' EXIT
    CRITERION_JSON_LINES="$lines" cargo bench -p bench --bench "$bench"
    if [ ! -s "$lines" ]; then
        echo "error: bench '$bench' emitted no results" >&2
        exit 1
    fi
    {
        printf '{"mode":"%s","results":[\n' "$mode"
        # JSON-lines -> comma-separated array elements.
        sed '$!s/$/,/' "$lines"
        printf ']}\n'
    } > "BENCH_${bench}.json"
    rm -f "$lines"
    trap - EXIT
    echo "wrote BENCH_${bench}.json ($(grep -c '"bench"' "BENCH_${bench}.json") results)"
done
