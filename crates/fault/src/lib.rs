//! `fault` — the typed error hierarchy and checkpoint machinery behind
//! perfpredict's fault tolerance.
//!
//! The paper's premise is that surrogate models replace expensive
//! simulation sweeps; a production pipeline built on that idea has to
//! survive the failure modes the paper itself observes — networks that
//! diverge or over-fit (§4.3), degenerate design matrices produced by
//! near-constant samples, and long sweeps that die halfway. This crate
//! gives every layer a shared vocabulary for those failures:
//!
//! * [`Error`] — the typed hierarchy ([`Error::SingularSystem`],
//!   [`Error::Diverged`], [`Error::DegenerateData`], [`Error::Io`],
//!   [`Error::Checkpoint`], …) returned by the fallible cores
//!   (`linalg::solve::try_lstsq`, `mlmodels::try_train`,
//!   `cpusim::runner::try_sweep_design_space`, `dse::try_run_sampled_dse`).
//! * [`Error::exit_code`] — the CLI's error-to-exit-code mapping, so shell
//!   drivers can distinguish bad input from numeric failure from a
//!   corrupted checkpoint.
//! * [`checkpoint`] — append-only JSONL checkpoint files shared by the
//!   simulator sweep and the sampled-DSE model fits, tolerant of a
//!   truncated final line (the signature a `kill -9` leaves behind).

pub mod checkpoint;

use std::fmt;

/// Alias for results carrying the perfpredict [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Every failure the pipeline can surface, from the numeric cores up to
/// the CLI. Variants carry enough context to be actionable in a log line.
#[derive(Debug)]
pub enum Error {
    /// A linear system was singular (rank-deficient) to working precision
    /// and no factorization produced finite coefficients.
    SingularSystem {
        /// What was being solved (e.g. `"lstsq 24x3"`).
        context: String,
    },
    /// Iterative training left the finite domain and retries were
    /// exhausted.
    Diverged {
        /// Epoch (or iteration) at which divergence was detected.
        epoch: usize,
        /// The non-finite (or exploded) loss observed there.
        loss: f64,
    },
    /// Input data cannot support a fit: empty/too-few rows, non-finite
    /// values, constant targets where variation is required, and so on.
    DegenerateData {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// An I/O operation failed.
    Io {
        /// Path involved (empty when unknown).
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A checkpoint file is unusable: corrupt before its final line, or
    /// written by an incompatible run (different benchmark, space, seed).
    Checkpoint {
        /// Checkpoint path.
        path: String,
        /// What is wrong with it.
        detail: String,
    },
    /// A model-artifact file is unusable: truncated, checksum mismatch,
    /// unknown format version, or structurally malformed payload.
    Artifact {
        /// Artifact path (or a label for in-memory sources).
        path: String,
        /// What is wrong with it.
        detail: String,
    },
    /// User-supplied input (CLI argument, configuration field) is invalid.
    InvalidInput {
        /// What was rejected and why.
        detail: String,
    },
    /// Every candidate model in a selection set failed; carries the
    /// per-candidate reasons so the degradation is recorded, not silent.
    NoViableModel {
        /// `(candidate, reason)` pairs, in candidate order.
        reasons: Vec<(String, String)>,
    },
    /// A perf-report comparison found at least one metric regressed
    /// beyond the threshold. The run itself succeeded — this is a
    /// verdict, distinguished from operational failures by exit code 6.
    Regression {
        /// Metrics over threshold, worst first (e.g. `"serve/p99_ms 2.31x"`).
        metrics: Vec<String>,
    },
    /// The serving daemon's bounded admission queue is full and the
    /// request was load-shed. This is the *typed* rejection the
    /// daemon's backpressure contract requires — a shed request always
    /// produces one of these, never a silent drop.
    Overloaded {
        /// Queue depth at the moment of rejection.
        queue_depth: usize,
        /// Configured admission-queue capacity.
        capacity: usize,
    },
    /// A request's deadline expired before the predict path reached it;
    /// the daemon fails closed (no late prediction is served).
    DeadlineExceeded {
        /// How long the request waited, milliseconds.
        waited_ms: u64,
        /// The deadline it carried, milliseconds.
        deadline_ms: u64,
    },
    /// A model version (or the whole registry) is quarantined: a reload
    /// produced a corrupt artifact and no healthy version remains for
    /// the route. As a daemon termination error it means *every*
    /// registered model is quarantined — nothing left to serve.
    Quarantined {
        /// The model route (name or `name@version`), or `"*"` when the
        /// whole registry is down.
        model: String,
        /// Why the version(s) went dark.
        detail: String,
    },
}

impl Error {
    /// Convenience constructor for [`Error::DegenerateData`].
    pub fn degenerate(reason: impl Into<String>) -> Error {
        Error::DegenerateData {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`Error::SingularSystem`].
    pub fn singular(context: impl Into<String>) -> Error {
        Error::SingularSystem {
            context: context.into(),
        }
    }

    /// Convenience constructor for [`Error::InvalidInput`].
    pub fn invalid(detail: impl Into<String>) -> Error {
        Error::InvalidInput {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`Error::Checkpoint`].
    pub fn checkpoint(path: impl Into<String>, detail: impl Into<String>) -> Error {
        Error::Checkpoint {
            path: path.into(),
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`Error::Artifact`].
    pub fn artifact(path: impl Into<String>, detail: impl Into<String>) -> Error {
        Error::Artifact {
            path: path.into(),
            detail: detail.into(),
        }
    }

    /// Attach a path to an I/O error.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Error {
        Error::Io {
            path: path.into(),
            source,
        }
    }

    /// Convenience constructor for [`Error::Overloaded`].
    pub fn overloaded(queue_depth: usize, capacity: usize) -> Error {
        Error::Overloaded {
            queue_depth,
            capacity,
        }
    }

    /// Convenience constructor for [`Error::DeadlineExceeded`].
    pub fn deadline(waited_ms: u64, deadline_ms: u64) -> Error {
        Error::DeadlineExceeded {
            waited_ms,
            deadline_ms,
        }
    }

    /// Convenience constructor for [`Error::Quarantined`].
    pub fn quarantined(model: impl Into<String>, detail: impl Into<String>) -> Error {
        Error::Quarantined {
            model: model.into(),
            detail: detail.into(),
        }
    }

    /// The process exit code the CLI maps this error to:
    ///
    /// | code | meaning |
    /// |---|---|
    /// | 2 | invalid input (bad argument, unknown benchmark/family) |
    /// | 3 | I/O failure |
    /// | 4 | checkpoint or model artifact corrupt or incompatible |
    /// | 5 | numeric/model failure (singular, diverged, degenerate, no viable model) |
    /// | 6 | performance regression verdict from `perf-report` |
    /// | 7 | service unavailable: admission queue overloaded or deadline missed |
    /// | 8 | every registered model version is quarantined — fail-closed termination |
    pub fn exit_code(&self) -> i32 {
        match self {
            Error::InvalidInput { .. } => 2,
            Error::Io { .. } => 3,
            Error::Checkpoint { .. } | Error::Artifact { .. } => 4,
            Error::SingularSystem { .. }
            | Error::Diverged { .. }
            | Error::DegenerateData { .. }
            | Error::NoViableModel { .. } => 5,
            Error::Regression { .. } => 6,
            Error::Overloaded { .. } | Error::DeadlineExceeded { .. } => 7,
            Error::Quarantined { .. } => 8,
        }
    }

    /// Short machine-friendly tag for telemetry attributes and checkpoint
    /// records (`singular`, `diverged`, `degenerate`, `io`, `checkpoint`,
    /// `artifact`, `invalid`, `no_viable_model`, `regression`,
    /// `overloaded`, `deadline`, `quarantined`).
    pub fn kind(&self) -> &'static str {
        match self {
            Error::SingularSystem { .. } => "singular",
            Error::Diverged { .. } => "diverged",
            Error::DegenerateData { .. } => "degenerate",
            Error::Io { .. } => "io",
            Error::Checkpoint { .. } => "checkpoint",
            Error::Artifact { .. } => "artifact",
            Error::InvalidInput { .. } => "invalid",
            Error::NoViableModel { .. } => "no_viable_model",
            Error::Regression { .. } => "regression",
            Error::Overloaded { .. } => "overloaded",
            Error::DeadlineExceeded { .. } => "deadline",
            Error::Quarantined { .. } => "quarantined",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::SingularSystem { context } => {
                write!(f, "singular system: {context}")
            }
            Error::Diverged { epoch, loss } => {
                write!(f, "training diverged at epoch {epoch} (loss {loss})")
            }
            Error::DegenerateData { reason } => write!(f, "degenerate data: {reason}"),
            Error::Io { path, source } => {
                if path.is_empty() {
                    write!(f, "I/O error: {source}")
                } else {
                    write!(f, "I/O error on {path}: {source}")
                }
            }
            Error::Checkpoint { path, detail } => {
                write!(f, "checkpoint {path}: {detail}")
            }
            Error::Artifact { path, detail } => {
                write!(f, "model artifact {path}: {detail}")
            }
            Error::InvalidInput { detail } => write!(f, "invalid input: {detail}"),
            Error::NoViableModel { reasons } => {
                write!(f, "no viable model among {} candidates:", reasons.len())?;
                for (cand, why) in reasons {
                    write!(f, " [{cand}: {why}]")?;
                }
                Ok(())
            }
            Error::Regression { metrics } => {
                write!(f, "performance regression in {} metric(s):", metrics.len())?;
                for m in metrics {
                    write!(f, " [{m}]")?;
                }
                Ok(())
            }
            Error::Overloaded {
                queue_depth,
                capacity,
            } => {
                write!(
                    f,
                    "overloaded: admission queue at {queue_depth}/{capacity}, request shed"
                )
            }
            Error::DeadlineExceeded {
                waited_ms,
                deadline_ms,
            } => {
                write!(
                    f,
                    "deadline exceeded: waited {waited_ms} ms against a {deadline_ms} ms deadline"
                )
            }
            Error::Quarantined { model, detail } => {
                write!(f, "model {model} quarantined: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(source: std::io::Error) -> Error {
        Error::Io {
            path: String::new(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_distinguish_failure_classes() {
        assert_eq!(Error::invalid("bad flag").exit_code(), 2);
        assert_eq!(Error::io("x", std::io::Error::other("e")).exit_code(), 3);
        assert_eq!(Error::checkpoint("p", "corrupt").exit_code(), 4);
        assert_eq!(Error::artifact("m.ppm", "bad checksum").exit_code(), 4);
        assert_eq!(Error::singular("lstsq").exit_code(), 5);
        assert_eq!(
            Error::Diverged {
                epoch: 3,
                loss: f64::NAN
            }
            .exit_code(),
            5
        );
        assert_eq!(Error::degenerate("constant target").exit_code(), 5);
        assert_eq!(Error::NoViableModel { reasons: vec![] }.exit_code(), 5);
        assert_eq!(Error::Regression { metrics: vec![] }.exit_code(), 6);
        assert_eq!(Error::overloaded(1024, 1024).exit_code(), 7);
        assert_eq!(Error::deadline(120, 50).exit_code(), 7);
        assert_eq!(
            Error::quarantined("mcf@2", "checksum mismatch").exit_code(),
            8
        );
    }

    #[test]
    fn display_carries_context() {
        let e = Error::singular("lstsq 24x3");
        assert!(e.to_string().contains("lstsq 24x3"));
        let e = Error::Diverged {
            epoch: 17,
            loss: f64::INFINITY,
        };
        assert!(e.to_string().contains("epoch 17"));
        let e = Error::NoViableModel {
            reasons: vec![("NN-E".into(), "diverged".into())],
        };
        let s = e.to_string();
        assert!(s.contains("NN-E") && s.contains("diverged"), "{s}");
        let e = Error::Regression {
            metrics: vec!["serve/p99_ms 2.31x".into()],
        };
        let s = e.to_string();
        assert!(s.contains("serve/p99_ms 2.31x"), "{s}");
    }

    #[test]
    fn kind_tags_are_stable() {
        assert_eq!(Error::singular("x").kind(), "singular");
        assert_eq!(Error::degenerate("x").kind(), "degenerate");
        assert_eq!(Error::checkpoint("p", "d").kind(), "checkpoint");
        assert_eq!(Error::artifact("p", "d").kind(), "artifact");
        assert_eq!(Error::Regression { metrics: vec![] }.kind(), "regression");
        assert_eq!(Error::overloaded(8, 8).kind(), "overloaded");
        assert_eq!(Error::deadline(9, 5).kind(), "deadline");
        assert_eq!(Error::quarantined("m", "d").kind(), "quarantined");
    }

    #[test]
    fn serving_errors_carry_actionable_context() {
        let s = Error::overloaded(512, 512).to_string();
        assert!(s.contains("512/512") && s.contains("shed"), "{s}");
        let s = Error::deadline(120, 50).to_string();
        assert!(s.contains("120 ms") && s.contains("50 ms"), "{s}");
        let s = Error::quarantined("mcf@3", "payload checksum mismatch").to_string();
        assert!(s.contains("mcf@3") && s.contains("checksum"), "{s}");
    }

    #[test]
    fn io_errors_convert() {
        fn fails() -> Result<()> {
            Err(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"))?;
            Ok(())
        }
        match fails() {
            Err(Error::Io { .. }) => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }
}
