//! Append-only JSONL checkpoint files with truncation-tolerant resume.
//!
//! A checkpoint is a sequence of newline-terminated JSON objects. The
//! first line is a `header` record identifying the run (benchmark,
//! design-space size, instruction budget, seed); every subsequent line
//! records one completed unit of work — a simulated configuration
//! (`"type":"sim"`) or a fitted model (`"type":"fit"`). Writers append
//! one line per completed unit and flush immediately, so the file is
//! valid after every unit and loses at most the line being written when
//! the process dies.
//!
//! That failure mode — a partial final line — is expected and tolerated:
//! [`load_records`] drops an unparseable *final* line silently, while a
//! malformed line anywhere earlier means real corruption and yields
//! [`Error::Checkpoint`](crate::Error::Checkpoint).

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::sync::Mutex;

use telemetry::json::{self, Value};

use crate::{Error, Result};

/// Serialized writer appending JSON lines to a checkpoint file.
///
/// Clones of the underlying handle are not taken; concurrent producers
/// (rayon workers) share one writer behind its internal mutex, and each
/// append is written and flushed atomically with respect to the others.
pub struct CheckpointWriter {
    path: String,
    file: Mutex<File>,
}

impl CheckpointWriter {
    /// Open `path` for appending, creating it if absent.
    ///
    /// If the existing file ends in a partial line (an interrupted final
    /// write), it is truncated back to the last complete line first —
    /// otherwise the next append would concatenate onto the fragment and
    /// turn a tolerated truncation into mid-file corruption.
    pub fn append(path: &str) -> Result<CheckpointWriter> {
        trim_partial_tail(path)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| Error::io(path, e))?;
        Ok(CheckpointWriter {
            path: path.to_string(),
            file: Mutex::new(file),
        })
    }

    /// Path this writer appends to.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Append one record (a rendered JSON object, no trailing newline)
    /// and flush so the line survives an immediate kill.
    pub fn append_record(&self, json_line: &str) -> Result<()> {
        debug_assert!(
            !json_line.contains('\n'),
            "checkpoint records must be single-line JSON"
        );
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut buf = Vec::with_capacity(json_line.len() + 1);
        buf.extend_from_slice(json_line.as_bytes());
        buf.push(b'\n');
        file.write_all(&buf).map_err(|e| Error::io(&self.path, e))?;
        file.flush().map_err(|e| Error::io(&self.path, e))?;
        Ok(())
    }
}

/// Truncate `path` back to its last newline if it ends mid-line; a
/// missing file is fine. Returns the number of bytes discarded.
fn trim_partial_tail(path: &str) -> Result<u64> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(Error::io(path, e)),
    };
    if bytes.is_empty() || bytes.ends_with(b"\n") {
        return Ok(0);
    }
    let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
    let dropped = (bytes.len() - keep) as u64;
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| Error::io(path, e))?;
    file.set_len(keep as u64).map_err(|e| Error::io(path, e))?;
    telemetry::point!("checkpoint/trimmed_tail", bytes = dropped);
    Ok(dropped)
}

/// Parsed records from a checkpoint file, in file order.
///
/// * Missing file → `Ok(vec![])` — a fresh run.
/// * Unparseable **final** line → dropped (interrupted write), with a
///   telemetry point recording the loss.
/// * Unparseable earlier line, or a non-object record → `Err(Checkpoint)`.
pub fn load_records(path: &str) -> Result<Vec<Value>> {
    let mut text = String::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut text)
                .map_err(|e| Error::io(path, e))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(Error::io(path, e)),
    }
    parse_records(path, &text)
}

/// [`load_records`] on in-memory text; split out for direct testing.
pub fn parse_records(path: &str, text: &str) -> Result<Vec<Value>> {
    // A well-formed file ends in '\n'; anything after the last newline is
    // by construction an interrupted final write.
    let (complete, tail) = match text.rfind('\n') {
        Some(i) => (&text[..=i], &text[i + 1..]),
        None => ("", text),
    };
    if !tail.trim().is_empty() {
        telemetry::point!("checkpoint/truncated_tail", bytes = tail.len());
    }
    let mut records = Vec::new();
    let lines: Vec<&str> = complete.lines().filter(|l| !l.trim().is_empty()).collect();
    for (i, line) in lines.iter().enumerate() {
        match json::parse(line) {
            Ok(v @ Value::Obj(_)) => records.push(v),
            Ok(_) => {
                return Err(Error::checkpoint(
                    path,
                    format!("record {} is not a JSON object", i + 1),
                ));
            }
            Err(reason) => {
                // A malformed line is only forgivable if it is the last
                // *newline-terminated* line AND nothing follows it — i.e.
                // the process died between write and flush boundaries.
                if i + 1 == lines.len() && tail.trim().is_empty() {
                    telemetry::point!("checkpoint/truncated_tail", bytes = line.len());
                    break;
                }
                return Err(Error::checkpoint(
                    path,
                    format!("corrupt record {}: {reason}", i + 1),
                ));
            }
        }
    }
    Ok(records)
}

/// Read the string field `key` from a record, or a `Checkpoint` error
/// naming the field.
pub fn str_field<'a>(path: &str, record: &'a Value, key: &str) -> Result<&'a str> {
    record
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| Error::checkpoint(path, format!("record missing string field '{key}'")))
}

/// Read the u64 field `key` from a record, or a `Checkpoint` error.
pub fn u64_field(path: &str, record: &Value, key: &str) -> Result<u64> {
    record
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| Error::checkpoint(path, format!("record missing integer field '{key}'")))
}

/// Read the f64 field `key` from a record, or a `Checkpoint` error.
pub fn f64_field(path: &str, record: &Value, key: &str) -> Result<f64> {
    record
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| Error::checkpoint(path, format!("record missing numeric field '{key}'")))
}

/// Iterate the records whose `"type"` field equals `ty`.
///
/// A ledger may interleave record families from several layers — sweep
/// `sim` lines, shard `claim`/`unit_done` lines, sampled-DSE `fit` lines —
/// so consumers filter for their own family and skip the rest. Records
/// without a string `type` are skipped rather than erroring; writers
/// always stamp one, so an untyped record can only be another layer's.
pub fn records_of_type<'a>(records: &'a [Value], ty: &'a str) -> impl Iterator<Item = &'a Value> {
    records
        .iter()
        .filter(move |r| r.get("type").and_then(Value::as_str) == Some(ty))
}

/// Verify that a header record's fields match the current run; any
/// mismatch is a `Checkpoint` error naming the divergent field.
///
/// `expected` pairs are `(field, value-as-string)`; numeric fields are
/// compared after rendering the stored value with `Display`.
pub fn check_header(path: &str, header: &Value, expected: &[(&str, String)]) -> Result<()> {
    if str_field(path, header, "type")? != "header" {
        return Err(Error::checkpoint(path, "first record is not a header"));
    }
    for (field, want) in expected {
        let got = match header.get(field) {
            Some(Value::Str(s)) => s.clone(),
            Some(Value::Num(x)) => json::number(*x),
            Some(other) => format!("{other:?}"),
            None => {
                return Err(Error::checkpoint(
                    path,
                    format!("header missing field '{field}'"),
                ));
            }
        };
        if got != *want {
            return Err(Error::checkpoint(
                path,
                format!("header mismatch on '{field}': checkpoint has {got}, run has {want}"),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::json::JsonObject;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("perfpredict-fault-tests");
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir.join(name).to_string_lossy().into_owned()
    }

    fn header_line() -> String {
        JsonObject::new()
            .str("type", "header")
            .str("benchmark", "gcc")
            .uint("space", 4608)
            .finish()
    }

    #[test]
    fn missing_file_is_empty() {
        let recs = load_records(&tmp("does-not-exist.jsonl")).expect("ok");
        assert!(recs.is_empty());
    }

    #[test]
    fn append_and_reload_round_trip() {
        let path = tmp("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        let w = CheckpointWriter::append(&path).expect("open");
        w.append_record(&header_line()).expect("header");
        for i in 0..5u64 {
            let line = JsonObject::new()
                .str("type", "sim")
                .uint("idx", i)
                .num("cycles", 1000.0 + i as f64)
                .finish();
            w.append_record(&line).expect("record");
        }
        let recs = load_records(&path).expect("load");
        assert_eq!(recs.len(), 6);
        assert_eq!(str_field(&path, &recs[0], "type").expect("type"), "header");
        assert_eq!(u64_field(&path, &recs[3], "idx").expect("idx"), 2);
        assert_eq!(
            f64_field(&path, &recs[5], "cycles").expect("cycles"),
            1004.0
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_final_line_is_dropped() {
        let path = tmp("truncated.jsonl");
        let full = format!(
            "{}\n{}\n",
            header_line(),
            JsonObject::new().str("type", "sim").uint("idx", 0).finish()
        );
        // Truncate at every byte offset: we must never error, and must
        // never recover more records than were completely written.
        for cut in 0..=full.len() {
            let part = &full[..cut];
            let recs = parse_records(&path, part).expect("tolerates truncation");
            let complete_lines = part.matches('\n').count();
            assert!(
                recs.len() <= complete_lines,
                "cut={cut}: {} records from {complete_lines} complete lines",
                recs.len()
            );
            for r in &recs {
                assert!(r.get("type").is_some(), "cut={cut}: partial record leaked");
            }
        }
    }

    #[test]
    fn appending_after_partial_tail_stays_parseable() {
        let path = tmp("partial-tail.jsonl");
        let _ = std::fs::remove_file(&path);
        let sim = JsonObject::new().str("type", "sim").uint("idx", 0).finish();
        std::fs::write(
            &path,
            format!("{}\n{}\n{}", header_line(), sim, &sim[..sim.len() / 2]),
        )
        .expect("write");
        let w = CheckpointWriter::append(&path).expect("open");
        w.append_record(&JsonObject::new().str("type", "sim").uint("idx", 1).finish())
            .expect("append");
        let recs = load_records(&path).expect("load");
        assert_eq!(recs.len(), 3, "partial tail must be trimmed, not merged");
        assert_eq!(u64_field(&path, &recs[2], "idx").expect("idx"), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corruption_before_final_line_errors() {
        let text = format!("{}\nnot json at all\n{}\n", header_line(), header_line());
        match parse_records("p", &text) {
            Err(Error::Checkpoint { .. }) => {}
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
    }

    #[test]
    fn header_mismatch_is_detected() {
        let recs = parse_records("p", &format!("{}\n", header_line())).expect("parse");
        check_header("p", &recs[0], &[("benchmark", "gcc".to_string())]).expect("match");
        let err =
            check_header("p", &recs[0], &[("benchmark", "mcf".to_string())]).expect_err("mismatch");
        assert!(err.to_string().contains("benchmark"), "{err}");
        let err = check_header("p", &recs[0], &[("seed", "42".to_string())]).expect_err("missing");
        assert!(err.to_string().contains("seed"), "{err}");
    }

    #[test]
    fn records_of_type_filters_mixed_ledgers() {
        let text = format!(
            "{}\n{}\n{}\n{}\n",
            header_line(),
            JsonObject::new()
                .str("type", "claim")
                .uint("unit", 0)
                .finish(),
            JsonObject::new().str("type", "sim").uint("idx", 7).finish(),
            JsonObject::new()
                .str("type", "unit_done")
                .uint("unit", 0)
                .finish(),
        );
        let recs = parse_records("p", &text).expect("parse");
        assert_eq!(records_of_type(&recs, "sim").count(), 1);
        assert_eq!(records_of_type(&recs, "claim").count(), 1);
        assert_eq!(records_of_type(&recs, "header").count(), 1);
        assert_eq!(records_of_type(&recs, "fit").count(), 0);
        let sim = records_of_type(&recs, "sim").next().expect("sim record");
        assert_eq!(u64_field("p", sim, "idx").expect("idx"), 7);
    }

    #[test]
    fn non_object_record_errors() {
        let text = format!("{}\n[1,2,3]\n{}\n", header_line(), header_line());
        assert!(parse_records("p", &text).is_err());
    }
}
