//! Property-based tests for the checkpoint layer.

use fault::checkpoint::{parse_records, CheckpointWriter};
use proptest::prelude::*;
use telemetry::json::JsonObject;

fn render_file(n_records: usize) -> String {
    let mut text = format!(
        "{}\n",
        JsonObject::new()
            .str("type", "header")
            .str("benchmark", "gcc")
            .uint("space", 4608)
            .finish()
    );
    for i in 0..n_records {
        text.push_str(&format!(
            "{}\n",
            JsonObject::new()
                .str("type", "sim")
                .uint("idx", i as u64)
                .num("cycles", 1000.0 + i as f64)
                .finish()
        ));
    }
    text
}

proptest! {
    /// Cutting a checkpoint at ANY byte offset — mid-record, mid-number,
    /// mid-escape — must parse without error and never recover more
    /// records than were completely written, nor invent field values.
    #[test]
    fn truncation_at_any_offset_is_tolerated(
        n_records in 0usize..8,
        cut_frac in 0.0f64..1.001,
    ) {
        let full = render_file(n_records);
        let cut = ((full.len() as f64) * cut_frac) as usize;
        let cut = cut.min(full.len());
        let part = &full[..cut];
        let recs = parse_records("p", part).expect("truncation is never an error");
        let complete_lines = part.matches('\n').count();
        prop_assert!(recs.len() <= complete_lines);
        for (i, r) in recs.iter().enumerate().skip(1) {
            prop_assert_eq!(r.get("type").and_then(|v| v.as_str()), Some("sim"));
            prop_assert_eq!(r.get("idx").and_then(|v| v.as_u64()), Some(i as u64 - 1));
        }
    }

    /// Writer/reader round-trip: whatever we append comes back verbatim,
    /// in order, and re-opening for append preserves earlier records.
    #[test]
    fn append_then_load_round_trips(idxs in prop::collection::vec(0u64..1000, 0..12)) {
        let dir = std::env::temp_dir().join("perfpredict-fault-prop");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir
            .join(format!("roundtrip-{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let _ = std::fs::remove_file(&path);
        // Two writer sessions: records must accumulate across reopens.
        for half in [&idxs[..idxs.len() / 2], &idxs[idxs.len() / 2..]] {
            let w = CheckpointWriter::append(&path).expect("open");
            for &i in half {
                w.append_record(
                    &JsonObject::new().str("type", "sim").uint("idx", i).finish(),
                )
                .expect("append");
            }
        }
        let recs = fault::checkpoint::load_records(&path).expect("load");
        prop_assert_eq!(recs.len(), idxs.len());
        for (r, &want) in recs.iter().zip(&idxs) {
            prop_assert_eq!(r.get("idx").and_then(|v| v.as_u64()), Some(want));
        }
        let _ = std::fs::remove_file(&path);
    }
}
