//! Multi-model registry: versioned artifacts, hot load/unload, and
//! quarantine.
//!
//! The daemon hosts many `.ppmodel` artifacts at once. Each *name* in
//! the registry owns a list of monotonically numbered *versions*;
//! `load` appends a fresh version from disk, `reload` re-reads an
//! existing version's path in place, and routing resolves either a
//! bare name (newest healthy version) or a pinned `name@version`.
//!
//! Failure policy, which is the point of this module:
//!
//! * **Transient load failures retry with bounded backoff.** An
//!   [`fault::Error::Io`] from [`mlmodels::ModelArtifact::load`] is
//!   retried up to [`RegistryConfig::load_retries`] times, sleeping
//!   `backoff_ms · 2^attempt` (capped) between attempts — the file may
//!   be mid-copy by the exporter.
//! * **A corrupt artifact quarantines that version, never the
//!   process.** A typed [`fault::Error::Artifact`] (bad checksum,
//!   truncation, version mismatch) is *not* retried: the version
//!   transitions to [`Quarantined`](VersionState) with the reason
//!   recorded, and — crucially — keeps whatever surrogate cache it had
//!   accumulated, so the daemon's fail-closed degraded mode can still
//!   answer cache hits for the dark route.
//! * **Routing falls back.** A bare-name route skips quarantined
//!   versions and serves the newest healthy one; only when *no*
//!   healthy version exists does the route go degraded. A pinned
//!   `name@version` route never falls back — pinning means the caller
//!   wants exactly that version or a typed error.

use crate::cache::LruCache;
use crate::compiled::{compile_with, CompiledModel, Precision};
use fault::{Error, Result};
use mlmodels::artifact::TableSchema;
use mlmodels::ModelArtifact;
use std::collections::BTreeMap;
use telemetry::json::JsonObject;

/// A loaded, compiled artifact plus its per-model surrogate cache.
pub struct ServingModel {
    /// The artifact served on this route, compiled into its
    /// topology-specialized predictor at load time.
    pub compiled: CompiledModel,
    /// LRU cache keyed on canonicalized configuration vectors.
    pub cache: LruCache<Vec<u64>, f64>,
}

impl ServingModel {
    /// The artifact behind the compiled predictor.
    pub fn artifact(&self) -> &ModelArtifact {
        &self.compiled.artifact
    }
}

/// Health of one registered version.
pub(crate) enum VersionState {
    /// Loaded and serving.
    Ready(Box<ServingModel>),
    /// Dark: the artifact failed to (re)load. The salvaged cache keeps
    /// serving hits in degraded mode; `reason` is surfaced in every
    /// typed rejection and in `status`.
    Quarantined {
        /// Why the version went dark (the typed load error, rendered).
        reason: String,
        /// Cache salvaged from the version's serving life, if any.
        cache: LruCache<Vec<u64>, f64>,
        /// Schema salvaged alongside the cache — without it requests
        /// cannot be canonicalized, so a quarantined version that never
        /// served (fresh load failure) cannot answer even cache hits.
        schema: Option<TableSchema>,
    },
}

struct Version {
    version: u64,
    path: String,
    /// Precision this version was loaded at; reloads recompile at the
    /// same precision.
    precision: Precision,
    state: VersionState,
}

struct ModelEntry {
    versions: Vec<Version>, // ascending by version number
    next_version: u64,
}

/// Registry tuning knobs.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Per-model surrogate-cache capacity (0 disables caching, which
    /// also disables degraded-mode hit serving).
    pub cache_cap: usize,
    /// Retry attempts for *transient* (I/O) load failures.
    pub load_retries: u32,
    /// Base backoff between retries; doubles per attempt, capped at
    /// 32× the base.
    pub backoff_ms: u64,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            cache_cap: 4096,
            load_retries: 2,
            backoff_ms: 10,
        }
    }
}

/// Counters the registry reports through `status` and the daemon's
/// final stats line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Successful version loads (including reloads).
    pub loads: u64,
    /// Transient load attempts that were retried.
    pub retries: u64,
    /// Versions quarantined by corrupt artifacts.
    pub quarantines: u64,
    /// Versions or whole names unloaded.
    pub unloads: u64,
}

/// What a route resolves to (see module docs for the fallback rules).
pub enum Route<'a> {
    /// A healthy version: full service.
    Ready {
        /// Resolved `name@version` label.
        label: String,
        /// The model and its cache.
        model: &'a mut ServingModel,
    },
    /// Every candidate version is quarantined: degraded, cache-only
    /// service against the newest quarantined version's salvaged cache.
    Quarantined {
        /// Resolved `name@version` label of the newest dark version.
        label: String,
        /// Why it is dark.
        reason: String,
        /// Salvaged cache (may be empty).
        cache: &'a mut LruCache<Vec<u64>, f64>,
        /// Salvaged schema; `None` means the version never served and
        /// no request can even be canonicalized against it.
        schema: Option<&'a TableSchema>,
    },
}

impl std::fmt::Debug for Route<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Route::Ready { label, .. } => write!(f, "Route::Ready({label})"),
            Route::Quarantined { label, reason, .. } => {
                write!(f, "Route::Quarantined({label}: {reason})")
            }
        }
    }
}

/// The daemon's model host (see module docs).
pub struct Registry {
    models: BTreeMap<String, ModelEntry>,
    config: RegistryConfig,
    stats: RegistryStats,
}

/// Split a route into `(name, pinned version)`.
fn parse_route(route: &str) -> Result<(&str, Option<u64>)> {
    match route.split_once('@') {
        None => Ok((route, None)),
        Some((name, v)) => {
            let version: u64 = v.parse().map_err(|_| {
                Error::invalid(format!(
                    "route '{route}': version after '@' must be a number"
                ))
            })?;
            Ok((name, Some(version)))
        }
    }
}

impl Registry {
    /// An empty registry.
    pub fn new(config: RegistryConfig) -> Registry {
        Registry {
            models: BTreeMap::new(),
            config,
            stats: RegistryStats::default(),
        }
    }

    /// Load `path` with bounded-backoff retry on transient I/O errors.
    /// Corrupt artifacts fail immediately — retrying a bad checksum
    /// cannot help.
    fn load_with_retry(&mut self, path: &str) -> Result<ModelArtifact> {
        let mut backoff = self.config.backoff_ms;
        let mut attempt = 0u32;
        loop {
            match ModelArtifact::load(path) {
                Ok(a) => return Ok(a),
                Err(e @ Error::Io { .. }) if attempt < self.config.load_retries => {
                    attempt += 1;
                    self.stats.retries += 1;
                    telemetry::counter_add("serve/registry_load_retries", 1);
                    telemetry::emit_point(
                        "serve/registry_retry",
                        &[("path", path.to_string()), ("error", e.to_string())],
                    );
                    std::thread::sleep(std::time::Duration::from_millis(backoff));
                    backoff = (backoff * 2).min(self.config.backoff_ms.saturating_mul(32));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Register a new version of `name` from `path` at f64 precision.
    /// See [`Registry::load_with_precision`].
    pub fn load(&mut self, name: &str, path: &str) -> Result<u64> {
        self.load_with_precision(name, path, Precision::F64)
    }

    /// Register a new version of `name` from `path`, compiled at the
    /// given precision. On success the new version becomes the newest
    /// healthy route target. On a corrupt artifact — or one that fails
    /// to compile (malformed plan, or an f32 probe exceeding the error
    /// bound) — the new version is registered *quarantined* (with the
    /// reason) and the error is returned; previously healthy versions
    /// keep serving untouched.
    pub(crate) fn load_with_precision(
        &mut self,
        name: &str,
        path: &str,
        precision: Precision,
    ) -> Result<u64> {
        if name.is_empty() || name.contains('@') {
            return Err(Error::invalid(format!(
                "model name '{name}' must be non-empty and must not contain '@'"
            )));
        }
        let loaded = self
            .load_with_retry(path)
            .and_then(|a| compile_with(a, precision));
        let entry = self.models.entry(name.to_string()).or_insert(ModelEntry {
            versions: Vec::new(),
            next_version: 1,
        });
        let version = entry.next_version;
        entry.next_version += 1;
        match loaded {
            Ok(compiled) => {
                entry.versions.push(Version {
                    version,
                    path: path.to_string(),
                    precision,
                    state: VersionState::Ready(Box::new(ServingModel {
                        compiled,
                        cache: LruCache::new(self.config.cache_cap),
                    })),
                });
                self.stats.loads += 1;
                telemetry::counter_add("serve/registry_loads", 1);
                Ok(version)
            }
            Err(e) => {
                entry.versions.push(Version {
                    version,
                    path: path.to_string(),
                    precision,
                    state: VersionState::Quarantined {
                        reason: e.to_string(),
                        cache: LruCache::new(0),
                        schema: None,
                    },
                });
                self.stats.quarantines += 1;
                telemetry::counter_add("serve/registry_quarantines", 1);
                Err(e)
            }
        }
    }

    /// Re-read a version's artifact from its recorded path, in place.
    /// `route` is a name (newest version) or `name@version`. On a
    /// corrupt artifact the version transitions Ready → Quarantined but
    /// *keeps its accumulated cache*, enabling degraded hit-serving.
    pub(crate) fn reload(&mut self, route: &str) -> Result<u64> {
        let (name, pinned) = parse_route(route)?;
        // Resolve the target version number first (immutably), then
        // load outside the borrow so retry/backoff does not hold the
        // entry.
        let (version, path, precision) = {
            let entry = self
                .models
                .get(name)
                .ok_or_else(|| Error::invalid(format!("unknown model '{name}'")))?;
            let v = match pinned {
                Some(p) => entry
                    .versions
                    .iter()
                    .find(|v| v.version == p)
                    .ok_or_else(|| Error::invalid(format!("unknown version '{route}'")))?,
                None => entry
                    .versions
                    .last()
                    .ok_or_else(|| Error::invalid(format!("model '{name}' has no versions")))?,
            };
            (v.version, v.path.clone(), v.precision)
        };
        let loaded = self
            .load_with_retry(&path)
            .and_then(|a| compile_with(a, precision));
        let entry = self.models.get_mut(name).unwrap_or_else(|| {
            unreachable!("entry '{name}' existed above and reload holds &mut self")
        });
        let slot = entry
            .versions
            .iter_mut()
            .find(|v| v.version == version)
            .unwrap_or_else(|| unreachable!("version {version} existed above"));
        let placeholder = VersionState::Quarantined {
            reason: String::new(),
            cache: LruCache::new(0),
            schema: None,
        };
        match loaded {
            Ok(compiled) => {
                let cache = match std::mem::replace(&mut slot.state, placeholder) {
                    VersionState::Ready(m) => m.cache,
                    VersionState::Quarantined { .. } => LruCache::new(self.config.cache_cap),
                };
                slot.state = VersionState::Ready(Box::new(ServingModel { compiled, cache }));
                self.stats.loads += 1;
                telemetry::counter_add("serve/registry_loads", 1);
                Ok(version)
            }
            Err(e) => {
                // Salvage the serving cache and schema for degraded mode.
                let (cache, schema) = match std::mem::replace(&mut slot.state, placeholder) {
                    VersionState::Ready(m) => {
                        let m = *m;
                        (m.cache, Some(m.compiled.artifact.schema))
                    }
                    VersionState::Quarantined { cache, schema, .. } => (cache, schema),
                };
                slot.state = VersionState::Quarantined {
                    reason: e.to_string(),
                    cache,
                    schema,
                };
                self.stats.quarantines += 1;
                telemetry::counter_add("serve/registry_quarantines", 1);
                Err(e)
            }
        }
    }

    /// Remove a version (`name@version`) or every version of a name.
    pub(crate) fn unload(&mut self, route: &str) -> Result<()> {
        let (name, pinned) = parse_route(route)?;
        let entry = self
            .models
            .get_mut(name)
            .ok_or_else(|| Error::invalid(format!("unknown model '{name}'")))?;
        match pinned {
            None => {
                self.stats.unloads += entry.versions.len() as u64;
                self.models.remove(name);
            }
            Some(p) => {
                let before = entry.versions.len();
                entry.versions.retain(|v| v.version != p);
                if entry.versions.len() == before {
                    return Err(Error::invalid(format!("unknown version '{route}'")));
                }
                self.stats.unloads += 1;
                if entry.versions.is_empty() {
                    self.models.remove(name);
                }
            }
        }
        telemetry::counter_add("serve/registry_unloads", 1);
        Ok(())
    }

    /// Resolve a route for serving (see module docs for fallback).
    pub fn resolve(&mut self, route: &str) -> Result<Route<'_>> {
        let (name, pinned) = parse_route(route)?;
        let entry = self
            .models
            .get_mut(name)
            .ok_or_else(|| Error::invalid(format!("unknown model '{name}'")))?;
        // Candidate versions, newest first; a pinned route considers
        // exactly one.
        let mut candidates: Vec<&mut Version> = entry
            .versions
            .iter_mut()
            .filter(|v| pinned.is_none_or(|p| v.version == p))
            .collect();
        if candidates.is_empty() {
            return Err(Error::invalid(format!("unknown version '{route}'")));
        }
        candidates.sort_by_key(|v| std::cmp::Reverse(v.version));
        // Newest healthy version wins; otherwise the newest quarantined
        // version's salvaged cache serves degraded hits.
        let ready_pos = candidates
            .iter()
            .position(|v| matches!(v.state, VersionState::Ready(_)));
        let chosen = match ready_pos {
            Some(pos) => candidates.swap_remove(pos),
            None => candidates.swap_remove(0),
        };
        let label = format!("{name}@{}", chosen.version);
        match &mut chosen.state {
            VersionState::Ready(model) => Ok(Route::Ready { label, model }),
            VersionState::Quarantined {
                reason,
                cache,
                schema,
            } => Ok(Route::Quarantined {
                label,
                reason: reason.clone(),
                cache,
                schema: schema.as_ref(),
            }),
        }
    }

    /// Whether at least one healthy version exists anywhere.
    pub(crate) fn has_ready(&self) -> bool {
        self.models.values().any(|e| {
            e.versions
                .iter()
                .any(|v| matches!(v.state, VersionState::Ready(_)))
        })
    }

    /// Fail-closed check: true when the registry has models but every
    /// single version is quarantined — the daemon's termination
    /// condition (exit code 8).
    pub(crate) fn all_quarantined(&self) -> bool {
        !self.models.is_empty() && !self.has_ready()
    }

    /// The single registered name, when exactly one model is hosted —
    /// the daemon's implicit route for frames that omit `"model"`.
    pub(crate) fn sole_name(&self) -> Option<&str> {
        let mut names = self.models.keys();
        match (names.next(), names.next()) {
            (Some(name), None) => Some(name.as_str()),
            _ => None,
        }
    }

    /// Number of registered names.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether no model is registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Registry counters.
    pub fn stats(&self) -> RegistryStats {
        self.stats
    }

    /// One JSON object per version, sorted by name then version — the
    /// body of the `status` op. Deterministic: `models` is a B-tree and
    /// versions are kept ascending.
    pub(crate) fn status_json(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (name, entry) in &self.models {
            for v in &entry.versions {
                let obj = JsonObject::new()
                    .str("model", name)
                    .uint("version", v.version)
                    .str("path", &v.path);
                let obj = match &v.state {
                    VersionState::Ready(m) => obj
                        .str("state", "ready")
                        .str("kind", m.compiled.artifact.model.kind.abbrev())
                        .str("precision", v.precision.label())
                        .uint("cache_entries", m.cache.len() as u64),
                    VersionState::Quarantined { reason, cache, .. } => obj
                        .str("state", "quarantined")
                        .str("reason", reason)
                        .uint("cache_entries", cache.len() as u64),
                };
                out.push(obj.finish());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlmodels::{train, ModelKind, Table};

    fn write_artifact(dir: &std::path::Path, file: &str) -> String {
        let n = 32;
        let xs: Vec<f64> = (0..n).map(|i| 100.0 + (i % 4) as f64 * 10.0).collect();
        let y: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let mut t = Table::new();
        t.add_numeric("x", xs).set_target(y);
        let art = ModelArtifact::from_training(train(ModelKind::LrE, &t, 3), &t);
        let path = dir.join(file).to_string_lossy().into_owned();
        art.save(&path).expect("save artifact");
        path
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("perfpredict-registry-{tag}"));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    fn cfg() -> RegistryConfig {
        RegistryConfig {
            cache_cap: 16,
            load_retries: 1,
            backoff_ms: 1,
        }
    }

    #[test]
    fn load_resolve_and_version_routing() {
        let dir = tmpdir("route");
        let path = write_artifact(&dir, "m.ppmodel");
        let mut reg = Registry::new(cfg());
        assert_eq!(reg.load("mcf", &path).expect("load v1"), 1);
        assert_eq!(reg.load("mcf", &path).expect("load v2"), 2);
        match reg.resolve("mcf").expect("bare name") {
            Route::Ready { label, .. } => assert_eq!(label, "mcf@2", "newest wins"),
            Route::Quarantined { .. } => panic!("healthy model resolved quarantined"),
        }
        match reg.resolve("mcf@1").expect("pinned") {
            Route::Ready { label, .. } => assert_eq!(label, "mcf@1"),
            Route::Quarantined { .. } => panic!("pinned healthy version"),
        }
        assert_eq!(reg.resolve("nope").expect_err("unknown").kind(), "invalid");
        assert_eq!(
            reg.resolve("mcf@9").expect_err("unknown version").kind(),
            "invalid"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_load_quarantines_new_version_and_falls_back() {
        let dir = tmpdir("corrupt");
        let good = write_artifact(&dir, "good.ppmodel");
        let bad = dir.join("bad.ppmodel").to_string_lossy().into_owned();
        std::fs::write(&bad, "not an artifact").expect("write corrupt");
        let mut reg = Registry::new(cfg());
        reg.load("mcf", &good).expect("v1 healthy");
        let err = reg.load("mcf", &bad).expect_err("corrupt");
        assert_eq!(err.kind(), "artifact");
        // v2 is quarantined, but the bare route falls back to v1.
        match reg.resolve("mcf").expect("fallback") {
            Route::Ready { label, .. } => assert_eq!(label, "mcf@1"),
            Route::Quarantined { .. } => panic!("fallback should find v1"),
        }
        // The pinned route reports the quarantine, never falls back.
        match reg.resolve("mcf@2").expect("pinned resolves") {
            Route::Quarantined { label, reason, .. } => {
                assert_eq!(label, "mcf@2");
                assert!(!reason.is_empty());
            }
            Route::Ready { .. } => panic!("pinned quarantined version must not serve"),
        }
        assert!(!reg.all_quarantined(), "v1 still healthy");
        assert_eq!(reg.stats().quarantines, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_reload_keeps_cache_for_degraded_mode() {
        let dir = tmpdir("reload");
        let path = write_artifact(&dir, "m.ppmodel");
        let mut reg = Registry::new(cfg());
        reg.load("mcf", &path).expect("v1");
        // Warm the serving cache.
        match reg.resolve("mcf").expect("ready") {
            Route::Ready { model, .. } => model.cache.put(vec![42], 7.5),
            Route::Quarantined { .. } => panic!("fresh model is ready"),
        }
        // Corrupt the on-disk artifact, then reload in place.
        std::fs::write(&path, "garbage").expect("corrupt file");
        let err = reg.reload("mcf").expect_err("reload of corrupt file");
        assert_eq!(err.kind(), "artifact");
        assert!(reg.all_quarantined(), "only version is dark");
        match reg.resolve("mcf").expect("degraded route") {
            Route::Quarantined { cache, .. } => {
                assert_eq!(
                    cache.get(&vec![42]),
                    Some(7.5),
                    "salvaged cache serves hits"
                );
            }
            Route::Ready { .. } => panic!("quarantined model resolved ready"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_io_failure_retries_with_bounded_backoff() {
        let mut reg = Registry::new(RegistryConfig {
            load_retries: 2,
            backoff_ms: 1,
            ..cfg()
        });
        let err = reg
            .load("mcf", "/nonexistent/never.ppmodel")
            .expect_err("io");
        assert_eq!(err.kind(), "io");
        assert_eq!(reg.stats().retries, 2, "both retries consumed");
        // The failed load still registered a quarantined version.
        assert!(reg.all_quarantined());
        let _ = reg;
    }

    #[test]
    fn unload_and_status_are_deterministic() {
        let dir = tmpdir("status");
        let path = write_artifact(&dir, "m.ppmodel");
        let mut reg = Registry::new(cfg());
        reg.load("alpha", &path).expect("alpha");
        reg.load("beta", &path).expect("beta v1");
        reg.load("beta", &path).expect("beta v2");
        let status = reg.status_json();
        assert_eq!(status.len(), 3);
        assert!(status[0].contains("\"model\":\"alpha\""), "{}", status[0]);
        assert!(status[1].contains("\"version\":1"), "{}", status[1]);
        assert!(status[2].contains("\"version\":2"), "{}", status[2]);
        reg.unload("beta@1").expect("drop one version");
        assert_eq!(reg.status_json().len(), 2);
        reg.unload("beta").expect("drop the rest");
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.unload("beta").expect_err("gone").kind(), "invalid");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
