//! Bounded admission with explicit, typed load-shedding.
//!
//! The one-shot replay engine gets backpressure for free: its reader
//! only pulls from the input when the queue has room, so the producer
//! stalls on an unread pipe. A long-lived daemon cannot do that — the
//! reader must keep draining the transport to *see* a burst, which
//! means admission has to be an explicit decision with an explicit
//! rejection. [`AdmissionQueue`] is that decision point:
//!
//! * [`AdmissionQueue::try_admit`] — data-plane admission. When the
//!   queue is at capacity it returns [`fault::Error::Overloaded`]
//!   carrying the observed depth, and the caller turns that into a
//!   typed `{"error":"overloaded"}` response. **A full queue is never a
//!   silent drop** — every rejected request produces exactly one typed
//!   response.
//! * [`AdmissionQueue::admit_priority`] — control-plane admission
//!   (load/unload/status/shutdown frames). Control traffic bypasses
//!   the capacity check so an overloaded data plane cannot lock the
//!   operator out of the daemon; it is bounded in practice by the
//!   transport's frame rate.
//! * [`AdmissionQueue::pop_window`] — consumer side: blocks until at
//!   least one item or closure, then drains up to a window.
//!
//! The queue also owns the two robustness counters the soak gate
//! asserts on: the depth high-water mark and the shed count.

use fault::{Error, Result};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    high_water: usize,
    shed: u64,
}

/// A bounded MPSC work queue with typed shedding (see module docs).
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    readable: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` data-plane items.
    pub fn new(capacity: usize) -> AdmissionQueue<T> {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(1 << 16)),
                closed: false,
                high_water: 0,
                shed: 0,
            }),
            readable: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // A poisoned mutex means a holder panicked; the queue state
        // itself (a VecDeque and counters) is still coherent, so
        // recover the guard rather than cascading the panic.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Admit a data-plane item, or shed it with a typed
    /// [`Error::Overloaded`] when the queue is full (or closed —
    /// a closing daemon stops admitting, it does not drop silently).
    pub(crate) fn try_admit(&self, item: T) -> Result<()> {
        let mut inner = self.lock();
        if inner.closed || inner.items.len() >= self.capacity {
            inner.shed += 1;
            let depth = inner.items.len();
            drop(inner);
            return Err(Error::overloaded(depth, self.capacity));
        }
        inner.items.push_back(item);
        inner.high_water = inner.high_water.max(inner.items.len());
        drop(inner);
        self.readable.notify_one();
        Ok(())
    }

    /// Admit a control-plane item regardless of depth. Fails only when
    /// the queue is already closed.
    pub(crate) fn admit_priority(&self, item: T) -> Result<()> {
        let mut inner = self.lock();
        if inner.closed {
            let depth = inner.items.len();
            drop(inner);
            return Err(Error::overloaded(depth, self.capacity));
        }
        inner.items.push_back(item);
        inner.high_water = inner.high_water.max(inner.items.len());
        drop(inner);
        self.readable.notify_one();
        Ok(())
    }

    /// Block until at least one item is queued (or the queue is closed),
    /// then drain up to `max` items in admission order. `None` means
    /// closed *and* fully drained — the consumer's termination signal.
    pub(crate) fn pop_window(&self, max: usize) -> Option<Vec<T>> {
        let mut inner = self.lock();
        while inner.items.is_empty() {
            if inner.closed {
                return None;
            }
            inner = match self.readable.wait(inner) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        let take = max.max(1).min(inner.items.len());
        Some(inner.items.drain(..take).collect())
    }

    /// Close the queue: future admissions fail, and `pop_window`
    /// returns `None` once the backlog drains.
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        drop(inner);
        self.readable.notify_all();
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// Deepest the queue has ever been.
    pub(crate) fn high_water(&self) -> usize {
        self.lock().high_water
    }

    /// Data-plane items rejected by [`try_admit`](AdmissionQueue::try_admit).
    pub(crate) fn shed_count(&self) -> u64 {
        self.lock().shed
    }

    /// The configured data-plane capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_with_typed_overloaded_when_full() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(2);
        q.try_admit(1).expect("room");
        q.try_admit(2).expect("room");
        let err = q.try_admit(3).expect_err("full");
        assert_eq!(err.kind(), "overloaded");
        assert!(err.to_string().contains("2/2"), "{err}");
        assert_eq!(q.shed_count(), 1);
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.depth(), 2, "shed item was not enqueued");
    }

    #[test]
    fn priority_admission_ignores_capacity_but_not_closure() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(1);
        q.try_admit(1).expect("room");
        q.admit_priority(2).expect("control bypasses capacity");
        assert_eq!(q.depth(), 2);
        q.close();
        assert_eq!(
            q.admit_priority(3).expect_err("closed").kind(),
            "overloaded"
        );
        assert_eq!(q.try_admit(4).expect_err("closed").kind(), "overloaded");
    }

    #[test]
    fn pop_window_preserves_order_and_drains_after_close() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(8);
        for i in 0..5 {
            q.try_admit(i).expect("room");
        }
        q.close();
        assert_eq!(q.pop_window(3), Some(vec![0, 1, 2]));
        assert_eq!(q.pop_window(3), Some(vec![3, 4]));
        assert_eq!(q.pop_window(3), None, "closed and drained");
    }

    #[test]
    fn pop_window_blocks_until_producer_arrives() {
        let q: Arc<AdmissionQueue<u32>> = Arc::new(AdmissionQueue::new(4));
        let prod = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            prod.try_admit(7).expect("room");
            prod.close();
        });
        assert_eq!(q.pop_window(4), Some(vec![7]));
        assert_eq!(q.pop_window(4), None);
        h.join().expect("producer");
    }
}
