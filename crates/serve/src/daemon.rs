//! The long-lived serving daemon.
//!
//! Where [`crate::engine`] replays one request file against one artifact
//! and exits, the daemon holds a [`Registry`] of many models and serves
//! a framed JSONL protocol until told to stop. Each frame is one JSON
//! object; predict frames look exactly like one-shot replay requests
//! plus an optional envelope (`"model"` route, `"deadline_ms"`), and
//! control frames carry an `"op"`:
//!
//! ```text
//! {"op":"load","model":"mcf","path":"mcf.ppmodel"}
//! {"id":"q1","model":"mcf","speed":1800,"smt":true,"bpred":"gshare"}
//! {"op":"status"}
//! {"op":"shutdown"}
//! ```
//!
//! Robustness contract (the reason this module exists):
//!
//! * **Bounded admission, explicit shedding.** A reader thread drains
//!   the transport and admits work into an [`AdmissionQueue`]. When the
//!   queue is full the frame is answered immediately with a typed
//!   `{"error":"overloaded"}` line — never a silent drop, never
//!   unbounded memory.
//! * **Per-request deadlines, fail closed.** An admitted request whose
//!   deadline expires before the predict path reaches it gets a typed
//!   `{"error":"deadline"}` response and *no* late prediction.
//! * **Degraded mode.** A window that saw shedding or deadline misses
//!   flips the daemon into cache-hits-only service: hits are answered,
//!   misses are rejected with a typed error, and the daemon returns to
//!   normal after the first quiet window. Saturation degrades service
//!   quality, it never degrades correctness.
//! * **Quarantine, not crash.** A corrupt artifact quarantines that
//!   model version in the [`Registry`]; routing falls back to older
//!   healthy versions, and a fully-dark route still serves salvaged
//!   cache hits. Only when *every* version of *every* model is dark
//!   does the daemon give up — with a typed error (exit code 8).
//!
//! Termination paths, each with a distinct typed exit (see
//! `DESIGN.md` §12): clean EOF and `shutdown` exit 0; a protocol
//! violation (oversized or non-UTF-8 frame) exits 2; a transport write
//! failure exits 3; all-models-quarantined exits 8.

use crate::admission::AdmissionQueue;
use crate::compiled::Precision;
use crate::core::predict_window;
use crate::registry::{Registry, Route};
use crate::request::{request_from_fields, Request};
use fault::{Error, Result};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use telemetry::json::{self, JsonObject, Value};
use telemetry::Histogram;

/// Daemon tuning knobs. The CLI maps `serve --daemon` flags onto them.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Requests predicted per batch window.
    pub window: usize,
    /// Admission-queue capacity; frames beyond it are shed with a typed
    /// `overloaded` response.
    pub queue_cap: usize,
    /// Worker threads for batch prediction (1 = in-line).
    pub workers: usize,
    /// Default per-request deadline in milliseconds (`None` = no
    /// deadline; a frame's `"deadline_ms"` field overrides, and `0`
    /// means already-expired — the deterministic test hook).
    pub deadline_ms: Option<u64>,
    /// Maximum frame length in bytes; a longer line is a protocol
    /// violation that terminates the daemon (exit code 2).
    pub max_frame_bytes: usize,
    /// Route for predict frames that omit `"model"`. When `None`, a
    /// single-model registry routes implicitly; otherwise such frames
    /// are rejected as invalid.
    pub default_model: Option<String>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            window: 64,
            queue_cap: 256,
            workers: std::thread::available_parallelism().map_or(1, usize::from),
            deadline_ms: None,
            max_frame_bytes: 1 << 20,
            default_model: None,
        }
    }
}

impl DaemonConfig {
    fn validated(&self) -> Result<()> {
        if self.window == 0 {
            return Err(Error::invalid("daemon window must be at least 1"));
        }
        if self.queue_cap < self.window {
            return Err(Error::invalid(format!(
                "daemon queue capacity {} is smaller than the window {}",
                self.queue_cap, self.window
            )));
        }
        if self.workers == 0 {
            return Err(Error::invalid("daemon worker count must be at least 1"));
        }
        if self.max_frame_bytes < 16 {
            return Err(Error::invalid("daemon max frame bytes must be at least 16"));
        }
        Ok(())
    }
}

/// Counters and latency summary for one daemon run (the stderr summary
/// line and the soak gate's input).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DaemonStats {
    /// Predict frames answered with a prediction (including cache hits).
    pub requests: u64,
    /// Predictions served from a model's LRU cache.
    pub cache_hits: u64,
    /// Predictions that missed the cache.
    pub cache_misses: u64,
    /// Distinct configurations actually predicted.
    pub predictions: u64,
    /// Prediction batches run.
    pub batches: u64,
    /// Admission windows processed.
    pub windows: u64,
    /// Queue-depth high-water mark.
    pub max_queue_depth: u64,
    /// Frames shed at admission with a typed `overloaded` response.
    pub shed: u64,
    /// Admitted requests whose deadline expired before service; each
    /// got a typed `deadline` response and no (late) prediction.
    pub deadline_misses: u64,
    /// Cache misses rejected while degraded (cache-hits-only) mode was
    /// active, each with a typed error response.
    pub degraded_rejects: u64,
    /// Cache misses rejected because every candidate model version was
    /// quarantined, each with a typed `quarantined` response.
    pub quarantined_rejects: u64,
    /// Frames rejected as invalid (malformed JSON, schema violations,
    /// unknown routes), each with a typed `invalid` response.
    pub invalid: u64,
    /// Control frames executed (load/reload/unload/status/shutdown).
    pub control_ops: u64,
    /// Times the daemon entered degraded mode.
    pub degraded_entries: u64,
    /// Registry: successful version loads (including preloads).
    pub loads: u64,
    /// Registry: versions quarantined by corrupt artifacts.
    pub quarantines: u64,
    /// Registry: transient load attempts retried.
    pub load_retries: u64,
    /// Median service latency (admission → response), milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile service latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile service latency, milliseconds.
    pub p99_ms: f64,
    /// Worst single service latency, milliseconds.
    pub max_ms: f64,
}

impl DaemonStats {
    /// Render as a single JSON object.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .uint("requests", self.requests)
            .uint("cache_hits", self.cache_hits)
            .uint("cache_misses", self.cache_misses)
            .uint("predictions", self.predictions)
            .uint("batches", self.batches)
            .uint("windows", self.windows)
            .uint("max_queue_depth", self.max_queue_depth)
            .uint("shed", self.shed)
            .uint("deadline_misses", self.deadline_misses)
            .uint("degraded_rejects", self.degraded_rejects)
            .uint("quarantined_rejects", self.quarantined_rejects)
            .uint("invalid", self.invalid)
            .uint("control_ops", self.control_ops)
            .uint("degraded_entries", self.degraded_entries)
            .uint("loads", self.loads)
            .uint("quarantines", self.quarantines)
            .uint("load_retries", self.load_retries)
            .num("p50_ms", self.p50_ms)
            .num("p95_ms", self.p95_ms)
            .num("p99_ms", self.p99_ms)
            .num("max_ms", self.max_ms)
            .finish()
    }
}

/// A control verb parsed from a frame's `"op"` field.
enum Op {
    Load {
        name: String,
        path: String,
        precision: Precision,
    },
    Reload {
        route: String,
    },
    Unload {
        route: String,
    },
    Status,
    Shutdown,
}

struct ControlJob {
    id: String,
    op: Op,
}

/// A predict frame waiting for service. Fields are kept raw (envelope
/// already stripped) because schema validation needs the routed model,
/// which is resolved at dequeue time.
struct PredictJob {
    id: String,
    route: Option<String>,
    fields: BTreeMap<String, Value>,
    frame_no: u64,
    admitted_at: Instant,
    deadline_ms: Option<u64>,
}

enum WorkItem {
    Predict(PredictJob),
    Control(ControlJob),
    Malformed { id: String, detail: String },
}

impl WorkItem {
    fn id(&self) -> &str {
        match self {
            WorkItem::Predict(j) => &j.id,
            WorkItem::Control(j) => &j.id,
            WorkItem::Malformed { id, .. } => id,
        }
    }
}

/// Why a stream ended cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EndReason {
    Eof,
    Shutdown,
}

fn predict_line(id: &str, prediction: f64, cached: bool) -> String {
    JsonObject::new()
        .str("id", id)
        .raw("prediction", &json::number(prediction))
        .bool("cached", cached)
        .finish()
}

fn error_line(id: &str, kind: &str, detail: &str) -> String {
    JsonObject::new()
        .str("id", id)
        .str("error", kind)
        .str("detail", detail)
        .finish()
}

fn lock_writer<W>(writer: &Arc<Mutex<W>>) -> std::sync::MutexGuard<'_, W> {
    match writer.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn write_lines<W: Write>(writer: &Arc<Mutex<W>>, lines: &[String]) -> Result<()> {
    let mut w = lock_writer(writer);
    for line in lines {
        w.write_all(line.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
            .map_err(|e| Error::io("<daemon output>", e))?;
    }
    w.flush().map_err(|e| Error::io("<daemon output>", e))
}

/// One bounded frame read. `Ok(None)` is EOF; a partial final line
/// (EOF with no trailing newline) is returned as a normal frame so a
/// mid-line truncation becomes a typed `invalid` response followed by a
/// clean EOF — never a hang. Oversized and non-UTF-8 frames are
/// protocol violations (typed `InvalidInput`, exit code 2).
fn read_frame<R: BufRead>(input: &mut R, max: usize) -> Result<Option<String>> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (consumed, done) = {
            let available = match input.fill_buf() {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(Error::io("<daemon input>", e)),
            };
            if available.is_empty() {
                if buf.is_empty() {
                    return Ok(None);
                }
                (0, true) // partial final frame
            } else {
                match available.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        buf.extend_from_slice(&available[..pos]);
                        (pos + 1, true)
                    }
                    None => {
                        buf.extend_from_slice(available);
                        (available.len(), false)
                    }
                }
            }
        };
        input.consume(consumed);
        if buf.len() > max {
            return Err(Error::invalid(format!(
                "protocol violation: frame exceeds {max} bytes"
            )));
        }
        if done {
            break;
        }
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(Some(s)),
        Err(_) => Err(Error::invalid(
            "protocol violation: frame is not valid UTF-8",
        )),
    }
}

fn field_id(
    fields: &BTreeMap<String, Value>,
    frame_no: u64,
) -> std::result::Result<String, String> {
    match fields.get("id") {
        None => Ok(frame_no.to_string()),
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(Value::Num(x)) => Ok(json::number(*x)),
        Some(_) => Err("'id' must be a string or number".to_string()),
    }
}

fn take_str(
    fields: &mut BTreeMap<String, Value>,
    key: &str,
) -> std::result::Result<Option<String>, String> {
    match fields.remove(key) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s)),
        Some(_) => Err(format!("'{key}' must be a string")),
    }
}

/// Classify one frame into a work item. Every malformation becomes a
/// typed `Malformed` item (answered in admission order), never an
/// abort: the daemon outlives its worst client.
fn classify_frame(line: &str, frame_no: u64) -> WorkItem {
    let frame_id = frame_no.to_string();
    let parsed = match json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return WorkItem::Malformed {
                id: frame_id,
                detail: format!("malformed JSON: {e}"),
            }
        }
    };
    let Value::Obj(mut fields) = parsed else {
        return WorkItem::Malformed {
            id: frame_id,
            detail: "request must be a JSON object".to_string(),
        };
    };
    let id = match field_id(&fields, frame_no) {
        Ok(id) => id,
        Err(detail) => {
            return WorkItem::Malformed {
                id: frame_id,
                detail,
            }
        }
    };
    let op = match take_str(&mut fields, "op") {
        Ok(op) => op,
        Err(detail) => return WorkItem::Malformed { id, detail },
    };
    let malformed = |id: String, detail: String| WorkItem::Malformed { id, detail };
    match op.as_deref() {
        None | Some("predict") => {
            let route = match take_str(&mut fields, "model") {
                Ok(r) => r,
                Err(detail) => return malformed(id, detail),
            };
            let deadline_ms = match fields.remove("deadline_ms") {
                None => None,
                Some(v) => match v.as_u64() {
                    Some(ms) => Some(ms),
                    None => {
                        return malformed(
                            id,
                            "'deadline_ms' must be a non-negative integer".to_string(),
                        )
                    }
                },
            };
            WorkItem::Predict(PredictJob {
                id,
                route,
                fields,
                frame_no,
                admitted_at: Instant::now(),
                deadline_ms,
            })
        }
        Some("load") => {
            let name = match take_str(&mut fields, "model") {
                Ok(Some(n)) => n,
                Ok(None) => return malformed(id, "'load' needs a 'model' name".to_string()),
                Err(detail) => return malformed(id, detail),
            };
            let path = match take_str(&mut fields, "path") {
                Ok(Some(p)) => p,
                Ok(None) => return malformed(id, "'load' needs a 'path'".to_string()),
                Err(detail) => return malformed(id, detail),
            };
            // Optional "precision": "f64" (default) or "f32" opts this
            // version into verified single-precision inference.
            let precision = match take_str(&mut fields, "precision") {
                Ok(None) => Precision::F64,
                Ok(Some(p)) if p == "f64" => Precision::F64,
                Ok(Some(p)) if p == "f32" => Precision::F32,
                Ok(Some(p)) => {
                    return malformed(id, format!("unknown precision '{p}' (use f64 or f32)"))
                }
                Err(detail) => return malformed(id, detail),
            };
            WorkItem::Control(ControlJob {
                id,
                op: Op::Load {
                    name,
                    path,
                    precision,
                },
            })
        }
        Some(verb @ ("reload" | "unload")) => match take_str(&mut fields, "model") {
            Ok(Some(route)) => WorkItem::Control(ControlJob {
                id,
                op: if verb == "reload" {
                    Op::Reload { route }
                } else {
                    Op::Unload { route }
                },
            }),
            Ok(None) => malformed(id, format!("'{verb}' needs a 'model' route")),
            Err(detail) => malformed(id, detail),
        },
        Some("status") => WorkItem::Control(ControlJob { id, op: Op::Status }),
        Some("shutdown") => WorkItem::Control(ControlJob {
            id,
            op: Op::Shutdown,
        }),
        Some(other) => malformed(id, format!("unknown op '{other}'")),
    }
}

/// The reader half: drain the transport, classify frames, admit work.
/// Returns `Ok(())` on clean EOF or after a `shutdown` frame; a
/// protocol or transport error is returned for the core to surface.
fn reader_loop<R: BufRead, W: Write>(
    input: &mut R,
    queue: &AdmissionQueue<WorkItem>,
    writer: &Arc<Mutex<W>>,
    terminated: &AtomicBool,
    max_frame: usize,
) -> Result<()> {
    let mut frame_no = 0u64;
    loop {
        if terminated.load(Ordering::Relaxed) {
            return Ok(());
        }
        let Some(line) = read_frame(input, max_frame)? else {
            return Ok(()); // EOF
        };
        if line.trim().is_empty() {
            continue;
        }
        frame_no += 1;
        let item = classify_frame(line.trim(), frame_no);
        match item {
            WorkItem::Control(job) => {
                let is_shutdown = matches!(job.op, Op::Shutdown);
                if queue.admit_priority(WorkItem::Control(job)).is_err() {
                    return Ok(()); // closed: the core is already terminating
                }
                if is_shutdown {
                    return Ok(()); // frames after shutdown are not read
                }
            }
            data => {
                // Predict and malformed frames share the data plane so
                // error responses keep admission order.
                let id = data.id().to_string();
                if let Err(e) = queue.try_admit(data) {
                    if terminated.load(Ordering::Relaxed) {
                        return Ok(());
                    }
                    // Typed shed response, written by the reader so the
                    // core never sees the frame. Never a silent drop.
                    write_lines(writer, &[error_line(&id, e.kind(), &e.to_string())])?;
                }
            }
        }
    }
}

/// A multi-model serving daemon (see module docs).
pub struct Daemon {
    config: DaemonConfig,
    registry: Registry,
}

impl Daemon {
    /// Build a daemon over a (possibly pre-loaded) registry.
    pub fn new(config: DaemonConfig, registry: Registry) -> Result<Daemon> {
        config.validated()?;
        Ok(Daemon { config, registry })
    }

    /// The hosted registry (for inspection in tests and the CLI).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Serve one framed stream to completion. Returns the run's stats on
    /// a clean end (EOF or `shutdown`); protocol violations, transport
    /// failures, and all-models-quarantined return typed errors (exit
    /// codes 2, 3, and 8).
    pub fn run<R, W>(&mut self, input: R, writer: Arc<Mutex<W>>) -> Result<DaemonStats>
    where
        R: BufRead + Send + 'static,
        W: Write + Send + 'static,
    {
        let mut stats = DaemonStats::default();
        let mut latency = Histogram::new();
        let end = self.run_stream(input, &writer, &mut stats, &mut latency);
        self.finalize(&mut stats, &latency);
        end.map(|_| stats)
    }

    /// Serve sequential connections on a unix socket at `path` until a
    /// `shutdown` frame arrives. Stats aggregate across connections.
    /// A connection-level I/O failure (client hangup mid-response) aborts
    /// that connection and the daemon accepts the next one; only the
    /// listener's own failures are transport-fatal (exit code 3).
    pub fn run_socket(&mut self, path: &str) -> Result<DaemonStats> {
        let _ = std::fs::remove_file(path);
        let listener =
            std::os::unix::net::UnixListener::bind(path).map_err(|e| Error::io(path, e))?;
        let mut stats = DaemonStats::default();
        let mut latency = Histogram::new();
        let outcome = loop {
            let (stream, _) = match listener.accept() {
                Ok(conn) => conn,
                Err(e) => break Err(Error::io(path, e)),
            };
            let reader = match stream.try_clone() {
                Ok(s) => std::io::BufReader::new(s),
                Err(e) => break Err(Error::io(path, e)),
            };
            let writer = Arc::new(Mutex::new(stream));
            match self.run_stream(reader, &writer, &mut stats, &mut latency) {
                Ok(EndReason::Eof) => continue, // next connection
                Ok(EndReason::Shutdown) => break Ok(()),
                // A client that disappears mid-conversation (EPIPE on a
                // pending response, a torn read) aborts *its* connection,
                // not the daemon: the transport exit code (3) is reserved
                // for the daemon's own transport — bind/accept failures.
                Err(Error::Io { .. }) => {
                    telemetry::counter_add("serve/daemon_conn_aborts", 1);
                    continue;
                }
                Err(e) => break Err(e),
            }
        };
        let _ = std::fs::remove_file(path);
        self.finalize(&mut stats, &latency);
        outcome.map(|()| stats)
    }

    fn finalize(&self, stats: &mut DaemonStats, latency: &Histogram) {
        let reg = self.registry.stats();
        stats.loads = reg.loads;
        stats.quarantines = reg.quarantines;
        stats.load_retries = reg.retries;
        let ms = |ns: u64| ns as f64 / 1e6;
        stats.p50_ms = ms(latency.quantile(0.50));
        stats.p95_ms = ms(latency.quantile(0.95));
        stats.p99_ms = ms(latency.quantile(0.99));
        stats.max_ms = ms(latency.max());
        telemetry::gauge_set("serve/daemon_p99_ms", stats.p99_ms);
        telemetry::gauge_set("serve/daemon_shed", stats.shed as f64);
        telemetry::hist_merge("serve/daemon_latency_ns", latency);
    }

    fn run_stream<R, W>(
        &mut self,
        mut input: R,
        writer: &Arc<Mutex<W>>,
        stats: &mut DaemonStats,
        latency: &mut Histogram,
    ) -> Result<EndReason>
    where
        R: BufRead + Send + 'static,
        W: Write + Send + 'static,
    {
        let _span = telemetry::span!("serve/daemon", models = self.registry.len());
        let queue: Arc<AdmissionQueue<WorkItem>> =
            Arc::new(AdmissionQueue::new(self.config.queue_cap));
        let terminated = Arc::new(AtomicBool::new(false));
        let fatal: Arc<Mutex<Option<Error>>> = Arc::new(Mutex::new(None));
        let reader = {
            let queue = Arc::clone(&queue);
            let writer = Arc::clone(writer);
            let terminated = Arc::clone(&terminated);
            let fatal = Arc::clone(&fatal);
            let max_frame = self.config.max_frame_bytes;
            std::thread::spawn(move || {
                let outcome = reader_loop(&mut input, &queue, &writer, &terminated, max_frame);
                if let Err(e) = outcome {
                    let mut slot = match fatal.lock() {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    *slot = Some(e);
                }
                // Whatever the reason, no more work is coming.
                queue.close();
            })
        };
        let mut end = EndReason::Eof;
        let mut degraded = false;
        let mut all_quarantined = false;
        let mut last_shed = 0u64;
        while let Some(window) = queue.pop_window(self.config.window) {
            stats.windows += 1;
            telemetry::gauge_max("serve/queue_depth", queue.depth() as f64);
            let mut responses: Vec<Option<String>> = (0..window.len()).map(|_| None).collect();
            let mut pending: Vec<(usize, PredictJob)> = Vec::new();
            let mut window_deadline_misses = 0u64;
            let mut saw_shutdown = false;
            for (slot, item) in window.into_iter().enumerate() {
                match item {
                    WorkItem::Malformed { id, detail } => {
                        stats.invalid += 1;
                        responses[slot] = Some(error_line(&id, "invalid", &detail));
                    }
                    WorkItem::Predict(job) => pending.push((slot, job)),
                    WorkItem::Control(job) => {
                        // Flush predicts admitted before this op so a
                        // reload cannot retroactively affect them.
                        window_deadline_misses += self.flush_predicts(
                            &mut pending,
                            &mut responses,
                            stats,
                            latency,
                            degraded,
                        );
                        let (line, is_shutdown) = self.exec_control(job, stats);
                        responses[slot] = Some(line);
                        saw_shutdown |= is_shutdown;
                    }
                }
            }
            window_deadline_misses +=
                self.flush_predicts(&mut pending, &mut responses, stats, latency, degraded);
            let lines: Vec<String> = responses.into_iter().flatten().collect();
            write_lines(writer, &lines)?;
            // Health transitions happen at window boundaries: any new
            // shedding or deadline miss enters degraded mode; the first
            // window with neither (degraded rejects don't count as new
            // trouble) exits it.
            let shed_now = queue.shed_count();
            let trouble = shed_now > last_shed || window_deadline_misses > 0;
            last_shed = shed_now;
            if trouble && !degraded {
                degraded = true;
                stats.degraded_entries += 1;
                telemetry::counter_add("serve/degraded_entries", 1);
            } else if !trouble && degraded {
                degraded = false;
            }
            if saw_shutdown {
                end = EndReason::Shutdown;
                queue.close();
            }
            if self.registry.all_quarantined() {
                // Fail closed: drain the backlog (salvaged caches still
                // answer hits), then terminate with a typed error.
                all_quarantined = true;
                queue.close();
            }
        }
        terminated.store(true, Ordering::Relaxed);
        stats.shed += queue.shed_count();
        stats.max_queue_depth = stats.max_queue_depth.max(queue.high_water() as u64);
        if all_quarantined {
            // The core closed the queue while the transport may still be
            // open, so the reader could be parked in a blocking read that
            // nothing can interrupt. Detach it: the terminated flag makes
            // it exit silently at its next frame, and the daemon's typed
            // error must not wait on a client that went quiet.
            drop(reader);
        } else if reader.join().is_err() {
            return Err(Error::invalid("daemon reader thread panicked"));
        }
        let fatal_err = {
            let mut slot = match fatal.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            slot.take()
        };
        if let Some(e) = fatal_err {
            return Err(e);
        }
        if all_quarantined {
            return Err(Error::quarantined(
                "*",
                "every model version is quarantined; daemon cannot serve",
            ));
        }
        Ok(end)
    }

    /// Serve the pending predict jobs of one window segment. Returns the
    /// number of deadline misses (the window's trouble signal).
    fn flush_predicts(
        &mut self,
        pending: &mut Vec<(usize, PredictJob)>,
        responses: &mut [Option<String>],
        stats: &mut DaemonStats,
        latency: &mut Histogram,
        degraded: bool,
    ) -> u64 {
        let mut misses = 0u64;
        let mut groups: BTreeMap<String, Vec<(usize, PredictJob)>> = BTreeMap::new();
        for (slot, job) in pending.drain(..) {
            // Deadline check, fail closed: an expired request gets a
            // typed response and no late prediction.
            let deadline = job.deadline_ms.or(self.config.deadline_ms);
            if let Some(ms) = deadline {
                let waited = job.admitted_at.elapsed();
                if waited >= Duration::from_millis(ms) {
                    let e = Error::deadline(waited.as_millis() as u64, ms);
                    responses[slot] = Some(error_line(&job.id, e.kind(), &e.to_string()));
                    stats.deadline_misses += 1;
                    misses += 1;
                    continue;
                }
            }
            let route = job
                .route
                .clone()
                .or_else(|| self.config.default_model.clone())
                .or_else(|| self.registry.sole_name().map(String::from));
            match route {
                Some(r) => groups.entry(r).or_default().push((slot, job)),
                None => {
                    stats.invalid += 1;
                    responses[slot] = Some(error_line(
                        &job.id,
                        "invalid",
                        "no 'model' specified and no default route",
                    ));
                }
            }
        }
        for (route, jobs) in groups {
            self.serve_group(&route, jobs, responses, stats, latency, degraded);
        }
        misses
    }

    /// Serve one route's jobs: resolve, validate, predict (or reject,
    /// when the route is quarantined or the daemon is degraded).
    fn serve_group(
        &mut self,
        route: &str,
        jobs: Vec<(usize, PredictJob)>,
        responses: &mut [Option<String>],
        stats: &mut DaemonStats,
        latency: &mut Histogram,
        degraded: bool,
    ) {
        let resolved = match self.registry.resolve(route) {
            Ok(r) => r,
            Err(e) => {
                for (slot, job) in jobs {
                    stats.invalid += 1;
                    responses[slot] = Some(error_line(&job.id, e.kind(), &e.to_string()));
                }
                return;
            }
        };
        match resolved {
            Route::Quarantined {
                label,
                reason,
                cache,
                schema,
            } => {
                // Dark route: salvaged cache hits still serve; anything
                // else is a typed quarantined rejection.
                for (slot, job) in jobs {
                    let hit = schema
                        .and_then(|s| request_from_fields(s, &job.fields, job.frame_no).ok())
                        .and_then(|req| cache.get(&req.canonical_key()));
                    match hit {
                        Some(p) => {
                            responses[slot] = Some(predict_line(&job.id, p, true));
                            stats.requests += 1;
                            stats.cache_hits += 1;
                            latency.observe_ns(job.admitted_at.elapsed());
                        }
                        None => {
                            let e = Error::quarantined(label.as_str(), reason.as_str());
                            responses[slot] = Some(error_line(&job.id, e.kind(), &e.to_string()));
                            stats.quarantined_rejects += 1;
                        }
                    }
                }
            }
            Route::Ready { model, .. } => {
                let mut valid: Vec<(usize, String, Instant, Request)> = Vec::new();
                for (slot, job) in jobs {
                    match request_from_fields(&model.artifact().schema, &job.fields, job.frame_no) {
                        Err(e) => {
                            stats.invalid += 1;
                            responses[slot] = Some(error_line(&job.id, e.kind(), &e.to_string()));
                        }
                        Ok(req) => {
                            if degraded {
                                // Cache-hits-only service under stress.
                                match model.cache.get(&req.canonical_key()) {
                                    Some(p) => {
                                        responses[slot] = Some(predict_line(&job.id, p, true));
                                        stats.requests += 1;
                                        stats.cache_hits += 1;
                                        latency.observe_ns(job.admitted_at.elapsed());
                                    }
                                    None => {
                                        stats.degraded_rejects += 1;
                                        responses[slot] = Some(error_line(
                                            &job.id,
                                            "overloaded",
                                            "degraded mode: cache miss rejected while \
                                             recovering from overload",
                                        ));
                                    }
                                }
                            } else {
                                valid.push((slot, job.id, job.admitted_at, req));
                            }
                        }
                    }
                }
                if !valid.is_empty() {
                    let refs: Vec<&Request> = valid.iter().map(|(_, _, _, r)| r).collect();
                    match predict_window(
                        &model.compiled,
                        &mut model.cache,
                        self.config.workers,
                        &refs,
                    ) {
                        Ok(outcome) => {
                            for ((slot, id, admitted_at, _), &(p, cached)) in
                                valid.iter().zip(&outcome.results)
                            {
                                responses[*slot] = Some(predict_line(id, p, cached));
                                stats.requests += 1;
                                latency.observe_ns(admitted_at.elapsed());
                            }
                            stats.cache_hits += outcome.hits;
                            stats.cache_misses += valid.len() as u64 - outcome.hits;
                            stats.predictions += outcome.predictions;
                            stats.batches += outcome.batches;
                        }
                        Err(e) => {
                            // A predict failure (only reachable on the
                            // interpreted oracle path) answers every job
                            // in the group with a typed error line; the
                            // daemon stays up.
                            for (slot, id, _, _) in &valid {
                                stats.invalid += 1;
                                responses[*slot] = Some(error_line(id, e.kind(), &e.to_string()));
                            }
                        }
                    }
                }
            }
        }
    }

    /// Execute one control op; returns the response line and whether the
    /// op was a shutdown.
    fn exec_control(&mut self, job: ControlJob, stats: &mut DaemonStats) -> (String, bool) {
        stats.control_ops += 1;
        let ack = |op: &str| {
            JsonObject::new()
                .str("id", &job.id)
                .bool("ok", true)
                .str("op", op)
        };
        match job.op {
            Op::Load {
                name,
                path,
                precision,
            } => match self.registry.load_with_precision(&name, &path, precision) {
                Ok(v) => (
                    ack("load").str("model", &name).uint("version", v).finish(),
                    false,
                ),
                Err(e) => (error_line(&job.id, e.kind(), &e.to_string()), false),
            },
            Op::Reload { route } => match self.registry.reload(&route) {
                Ok(v) => (
                    ack("reload")
                        .str("model", &route)
                        .uint("version", v)
                        .finish(),
                    false,
                ),
                Err(e) => (error_line(&job.id, e.kind(), &e.to_string()), false),
            },
            Op::Unload { route } => match self.registry.unload(&route) {
                Ok(()) => (ack("unload").str("model", &route).finish(), false),
                Err(e) => (error_line(&job.id, e.kind(), &e.to_string()), false),
            },
            Op::Status => {
                let models = self.registry.status_json().join(",");
                (
                    ack("status")
                        .bool("all_quarantined", self.registry.all_quarantined())
                        .raw("models", &format!("[{models}]"))
                        .finish(),
                    false,
                )
            }
            Op::Shutdown => (ack("shutdown").finish(), true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use mlmodels::{train, ModelArtifact, ModelKind, Table};

    fn write_artifact(dir: &std::path::Path, file: &str) -> String {
        let n = 40;
        let xs: Vec<f64> = (0..n).map(|i| 100.0 + (i % 5) as f64 * 25.0).collect();
        let y: Vec<f64> = xs.iter().map(|x| 2.0 * x + 3.0).collect();
        let mut t = Table::new();
        t.add_numeric("x", xs).set_target(y);
        let art = ModelArtifact::from_training(train(ModelKind::LrE, &t, 3), &t);
        let path = dir.join(file).to_string_lossy().into_owned();
        art.save(&path).expect("save artifact");
        path
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("perfpredict-daemon-{tag}"));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    fn reg_cfg() -> RegistryConfig {
        RegistryConfig {
            cache_cap: 64,
            load_retries: 0,
            backoff_ms: 1,
        }
    }

    fn cfg() -> DaemonConfig {
        DaemonConfig {
            window: 8,
            queue_cap: 64,
            workers: 2,
            deadline_ms: None,
            max_frame_bytes: 4096,
            default_model: None,
        }
    }

    fn run_daemon(
        config: DaemonConfig,
        registry: Registry,
        input: Vec<u8>,
    ) -> (Result<DaemonStats>, Vec<String>) {
        let mut daemon = Daemon::new(config, registry).expect("daemon config");
        let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let result = daemon.run(std::io::Cursor::new(input), Arc::clone(&out));
        let bytes = lock_writer(&out).clone();
        let lines = String::from_utf8(bytes)
            .expect("response stream is UTF-8")
            .lines()
            .map(String::from)
            .collect();
        (result, lines)
    }

    #[test]
    fn load_predict_status_shutdown_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = write_artifact(&dir, "m.ppmodel");
        let input = format!(
            concat!(
                "{{\"id\":\"c1\",\"op\":\"load\",\"model\":\"m\",\"path\":\"{}\"}}\n",
                "{{\"id\":\"q1\",\"x\":150}}\n",
                "{{\"id\":\"c2\",\"op\":\"status\"}}\n",
                "{{\"id\":\"c3\",\"op\":\"shutdown\"}}\n",
                "{{\"id\":\"never\",\"x\":150}}\n",
            ),
            path
        );
        let (result, lines) = run_daemon(cfg(), Registry::new(reg_cfg()), input.into_bytes());
        let stats = result.expect("clean shutdown");
        assert_eq!(
            lines.len(),
            4,
            "frames after shutdown are not read: {lines:?}"
        );
        assert!(
            lines[0].contains("\"ok\":true") && lines[0].contains("\"version\":1"),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].contains("\"id\":\"q1\"") && lines[1].contains("\"prediction\":"),
            "{}",
            lines[1]
        );
        assert!(
            lines[2].contains("\"state\":\"ready\"")
                && lines[2].contains("\"all_quarantined\":false"),
            "{}",
            lines[2]
        );
        assert!(lines[3].contains("\"op\":\"shutdown\""), "{}", lines[3]);
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.control_ops, 3);
        assert_eq!(stats.loads, 1);
        assert_eq!(stats.invalid, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_final_frame_gets_typed_response_then_clean_eof() {
        let dir = tmpdir("trunc");
        let path = write_artifact(&dir, "m.ppmodel");
        let mut reg = Registry::new(reg_cfg());
        reg.load("m", &path).expect("load");
        // Second frame is cut mid-JSON with no trailing newline — the
        // classic torn write. The daemon must answer it with a typed
        // invalid response and then end cleanly, never hang.
        let input = b"{\"id\":\"q1\",\"x\":150}\n{\"id\":\"q2\",\"x\":17".to_vec();
        let (result, lines) = run_daemon(cfg(), reg, input);
        let stats = result.expect("truncation is the client's problem, not the daemon's");
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("\"prediction\":"), "{}", lines[0]);
        assert!(
            lines[1].contains("\"error\":\"invalid\"") && lines[1].contains("malformed JSON"),
            "{}",
            lines[1]
        );
        assert_eq!(stats.invalid, 1);
        assert_eq!(stats.requests, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadline_zero_misses_and_degraded_mode_recovers() {
        let dir = tmpdir("deadline");
        let path = write_artifact(&dir, "m.ppmodel");
        let mut reg = Registry::new(reg_cfg());
        reg.load("m", &path).expect("load");
        // window=1 makes each frame its own window, so the degraded
        // state machine steps once per frame, deterministically.
        let config = DaemonConfig {
            window: 1,
            queue_cap: 64,
            ..cfg()
        };
        let input = concat!(
            "{\"id\":\"a1\",\"x\":150}\n",                  // predicted
            "{\"id\":\"b\",\"x\":175,\"deadline_ms\":0}\n", // deadline miss -> degraded
            "{\"id\":\"c1\",\"x\":200}\n",                  // degraded: miss rejected
            "{\"id\":\"c2\",\"x\":200}\n",                  // recovered: predicted
            "{\"id\":\"a2\",\"x\":150}\n",                  // cache hit
        )
        .as_bytes()
        .to_vec();
        let (result, lines) = run_daemon(config, reg, input);
        let stats = result.expect("clean EOF");
        assert_eq!(lines.len(), 5, "{lines:?}");
        assert!(
            lines[0].contains("\"prediction\":") && lines[0].contains("\"cached\":false"),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].contains("\"error\":\"deadline\"") && lines[1].contains("\"id\":\"b\""),
            "fail-closed: no late prediction: {}",
            lines[1]
        );
        assert!(
            lines[2].contains("\"error\":\"overloaded\"") && lines[2].contains("degraded"),
            "{}",
            lines[2]
        );
        assert!(
            lines[3].contains("\"prediction\":") && lines[3].contains("\"cached\":false"),
            "{}",
            lines[3]
        );
        assert!(lines[4].contains("\"cached\":true"), "{}", lines[4]);
        assert_eq!(stats.deadline_misses, 1);
        assert_eq!(stats.degraded_rejects, 1);
        assert_eq!(stats.degraded_entries, 1);
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.cache_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_reload_fails_closed_with_typed_exit() {
        let dir = tmpdir("quarantine-exit");
        let path = write_artifact(&dir, "m.ppmodel");
        let mut reg = Registry::new(reg_cfg());
        reg.load("m", &path).expect("load");
        std::fs::write(&path, "garbage").expect("corrupt the artifact");
        let input = concat!(
            "{\"id\":\"q1\",\"x\":150}\n",
            "{\"id\":\"c1\",\"op\":\"reload\",\"model\":\"m\"}\n",
        )
        .as_bytes()
        .to_vec();
        let (result, lines) = run_daemon(cfg(), reg, input);
        let err = result.expect_err("all versions dark");
        assert_eq!(err.kind(), "quarantined", "{err}");
        assert!(lines[0].contains("\"prediction\":"), "{}", lines[0]);
        assert!(lines[1].contains("\"error\":\"artifact\""), "{}", lines[1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Build a registry whose only model is quarantined but carries a
    /// warm salvaged cache for the config `x = warm_x`.
    fn quarantined_registry(dir: &std::path::Path, warm_x: f64) -> Registry {
        let path = write_artifact(dir, "m.ppmodel");
        let mut reg = Registry::new(reg_cfg());
        reg.load("m", &path).expect("load");
        // Warm the serving cache through the real predict path.
        match reg.resolve("m").expect("ready") {
            Route::Ready { model, .. } => {
                let line = format!("{{\"x\":{warm_x}}}");
                let req = crate::request::parse_request_line(&model.artifact().schema, &line, 1)
                    .expect("valid request");
                let refs = [&req];
                let _ = predict_window(&model.compiled, &mut model.cache, 1, &refs);
            }
            Route::Quarantined { .. } => panic!("fresh load must be ready"),
        }
        std::fs::write(&path, "garbage").expect("corrupt");
        reg.reload("m").expect_err("corrupt reload");
        assert!(reg.all_quarantined());
        reg
    }

    #[test]
    fn quarantined_route_serves_salvaged_cache_hits() {
        let dir = tmpdir("salvage-hit");
        let reg = quarantined_registry(&dir, 150.0);
        let input = b"{\"id\":\"q1\",\"x\":150}\n".to_vec();
        let (result, lines) = run_daemon(cfg(), reg, input);
        assert_eq!(result.expect_err("still all dark").kind(), "quarantined");
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(
            lines[0].contains("\"prediction\":") && lines[0].contains("\"cached\":true"),
            "degraded hit-serving: {}",
            lines[0]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantined_route_rejects_misses_with_typed_error() {
        let dir = tmpdir("salvage-miss");
        let reg = quarantined_registry(&dir, 150.0);
        let input = b"{\"id\":\"q1\",\"x\":999}\n".to_vec();
        let (result, lines) = run_daemon(cfg(), reg, input);
        assert_eq!(result.expect_err("all dark").kind(), "quarantined");
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(
            lines[0].contains("\"error\":\"quarantined\"") && lines[0].contains("m@1"),
            "{}",
            lines[0]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_frame_is_a_protocol_violation() {
        let dir = tmpdir("oversized");
        let path = write_artifact(&dir, "m.ppmodel");
        let mut reg = Registry::new(reg_cfg());
        reg.load("m", &path).expect("load");
        let config = DaemonConfig {
            max_frame_bytes: 64,
            ..cfg()
        };
        let big = format!(
            "{{\"id\":\"q1\",\"x\":150,\"pad\":\"{}\"}}\n",
            "y".repeat(200)
        );
        let (result, _) = run_daemon(config, reg, big.into_bytes());
        let err = result.expect_err("protocol violation");
        assert_eq!(err.kind(), "invalid");
        assert!(err.to_string().contains("exceeds 64 bytes"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_utf8_frame_is_a_protocol_violation() {
        let dir = tmpdir("nonutf8");
        let path = write_artifact(&dir, "m.ppmodel");
        let mut reg = Registry::new(reg_cfg());
        reg.load("m", &path).expect("load");
        let input = vec![0xff, 0xfe, 0x80, b'\n'];
        let (result, _) = run_daemon(cfg(), reg, input);
        let err = result.expect_err("protocol violation");
        assert_eq!(err.kind(), "invalid");
        assert!(err.to_string().contains("UTF-8"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admitted_output_is_byte_identical_across_worker_counts() {
        let dir = tmpdir("workers");
        let path = write_artifact(&dir, "m.ppmodel");
        // Distinct configs only: the cached flag is then false on every
        // response no matter how the admission windows split, so full
        // output bytes are comparable.
        let mut input = String::new();
        for i in 0..60 {
            input.push_str(&format!("{{\"id\":\"q{i}\",\"x\":{}}}\n", 100 + i * 7));
        }
        let mut baseline = None;
        for workers in [1, 2, 4] {
            let mut reg = Registry::new(reg_cfg());
            reg.load("m", &path).expect("load");
            let config = DaemonConfig {
                workers,
                queue_cap: 1024,
                window: 16,
                ..cfg()
            };
            let (result, lines) = run_daemon(config, reg, input.clone().into_bytes());
            let stats = result.expect("clean EOF");
            assert_eq!(stats.shed, 0, "no shedding in this workload");
            assert_eq!(lines.len(), 60);
            match &baseline {
                None => baseline = Some(lines),
                Some(b) => assert_eq!(b, &lines, "{workers} workers diverged"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A writer that sleeps on every line, standing in for a slow
    /// downstream consumer.
    struct SlowWriter {
        inner: Vec<u8>,
        delay: Duration,
    }

    impl Write for SlowWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            std::thread::sleep(self.delay);
            self.inner.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn slow_consumer_sheds_typed_responses_never_silent_drops() {
        let dir = tmpdir("shed");
        let path = write_artifact(&dir, "m.ppmodel");
        let mut reg = Registry::new(reg_cfg());
        reg.load("m", &path).expect("load");
        let mut daemon = Daemon::new(
            DaemonConfig {
                window: 2,
                queue_cap: 4,
                workers: 1,
                ..cfg()
            },
            reg,
        )
        .expect("daemon config");
        let total = 120;
        let mut input = String::new();
        for i in 0..total {
            input.push_str(&format!(
                "{{\"id\":\"q{i}\",\"x\":{}}}\n",
                100 + (i % 6) * 10
            ));
        }
        let out = Arc::new(Mutex::new(SlowWriter {
            inner: Vec::new(),
            delay: Duration::from_millis(2),
        }));
        let stats = daemon
            .run(std::io::Cursor::new(input.into_bytes()), Arc::clone(&out))
            .expect("clean EOF");
        let bytes = lock_writer(&out).inner.clone();
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        // Conservation: every admitted-or-shed frame produced exactly
        // one response line — shedding is typed, never silent.
        assert_eq!(lines.len() as u64, total, "one response per frame");
        let shed_lines = lines
            .iter()
            .filter(|l| l.contains("\"error\":\"overloaded\""))
            .count() as u64;
        assert!(
            stats.shed > 0,
            "slow consumer must force shedding: {stats:?}"
        );
        assert_eq!(
            shed_lines,
            stats.shed + stats.degraded_rejects,
            "typed rejections match counters: {stats:?}"
        );
        assert_eq!(
            stats.requests + stats.shed + stats.degraded_rejects,
            total,
            "{stats:?}"
        );
        assert!(stats.max_queue_depth <= 4, "{stats:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn routing_errors_are_typed_invalid_not_fatal() {
        let dir = tmpdir("routing");
        let p1 = write_artifact(&dir, "a.ppmodel");
        let p2 = write_artifact(&dir, "b.ppmodel");
        let mut reg = Registry::new(reg_cfg());
        reg.load("alpha", &p1).expect("alpha");
        reg.load("beta", &p2).expect("beta");
        let input = concat!(
            "{\"id\":\"q1\",\"x\":150}\n", // ambiguous: two models
            "{\"id\":\"q2\",\"model\":\"nope\",\"x\":150}\n", // unknown route
            "{\"id\":\"q3\",\"model\":\"alpha\",\"x\":150}\n", // fine
            "not json at all\n",           // malformed
        )
        .as_bytes()
        .to_vec();
        let (result, lines) = run_daemon(cfg(), reg, input);
        let stats = result.expect("clean EOF despite bad frames");
        assert_eq!(lines.len(), 4, "{lines:?}");
        assert!(
            lines[0].contains("\"error\":\"invalid\"") && lines[0].contains("no 'model'"),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].contains("\"error\":\"invalid\"") && lines[1].contains("unknown model"),
            "{}",
            lines[1]
        );
        assert!(lines[2].contains("\"prediction\":"), "{}", lines[2]);
        assert!(
            lines[3].contains("\"error\":\"invalid\"") && lines[3].contains("malformed"),
            "{}",
            lines[3]
        );
        assert_eq!(stats.invalid, 3);
        assert_eq!(stats.requests, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
