//! Seeded request-workload generation.
//!
//! The smoke tests and throughput benchmarks need realistic replay
//! files without shipping one: [`generate_requests`] samples the
//! artifact's [`TableSchema`] — numeric columns draw from their
//! observed training lattice, flags flip a coin, categoricals pick a
//! training level — and shapes cache behaviour with a `distinct` pool:
//! requests are drawn (with reuse) from `distinct` pre-sampled
//! configurations, so `distinct ≪ n` produces the cache-heavy replay a
//! design-space exploration actually generates.

use fault::{Error, Result};
use mlmodels::artifact::{ColumnSchema, TableSchema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use telemetry::json::{self, JsonObject};

fn sample_config(schema: &TableSchema, rng: &mut StdRng) -> Result<String> {
    let mut obj = JsonObject::new();
    for col in &schema.columns {
        match col {
            ColumnSchema::Numeric { name, observed } => {
                if observed.is_empty() {
                    return Err(Error::invalid(format!(
                        "cannot generate requests: numeric column '{name}' has no observed values"
                    )));
                }
                let v = observed[rng.random_range(0..observed.len())];
                obj = obj.raw(name, &json::number(v));
            }
            ColumnSchema::Flag { name } => {
                obj = obj.bool(name, rng.random::<bool>());
            }
            ColumnSchema::Categorical { name, levels } => {
                if levels.is_empty() {
                    return Err(Error::invalid(format!(
                        "cannot generate requests: categorical column '{name}' has no levels"
                    )));
                }
                obj = obj.str(name, &levels[rng.random_range(0..levels.len())]);
            }
        }
    }
    Ok(obj.finish())
}

/// Generate `n` JSONL request lines drawn (with reuse) from a pool of
/// `distinct` sampled configurations. Deterministic per
/// `(schema, n, distinct, seed)`. Each line carries `"id":"g<i>"`.
pub fn generate_requests(
    schema: &TableSchema,
    n: usize,
    distinct: usize,
    seed: u64,
) -> Result<String> {
    if n == 0 {
        return Err(Error::invalid("request count must be at least 1"));
    }
    if distinct == 0 {
        return Err(Error::invalid("distinct-config pool must be at least 1"));
    }
    if schema.columns.is_empty() {
        return Err(Error::invalid(
            "cannot generate requests for an empty schema",
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let pool: Vec<String> = (0..distinct)
        .map(|_| sample_config(schema, &mut rng))
        .collect::<Result<_>>()?;
    let mut out = String::new();
    for i in 0..n {
        let body = &pool[rng.random_range(0..pool.len())];
        // Splice the id into the sampled object: `{"id":"g<i>",` + rest.
        let rest = body
            .strip_prefix('{')
            .ok_or_else(|| Error::invalid("generated config is not an object"))?;
        out.push_str(&format!("{{\"id\":\"g{i}\",{rest}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{serve_jsonl, ServeConfig};
    use mlmodels::{train, ModelArtifact, ModelKind, Table};

    fn schema() -> TableSchema {
        TableSchema {
            columns: vec![
                ColumnSchema::Numeric {
                    name: "speed".into(),
                    observed: vec![1000.0, 1200.0, 1400.0],
                },
                ColumnSchema::Flag { name: "smt".into() },
                ColumnSchema::Categorical {
                    name: "bpred".into(),
                    levels: vec!["perfect".into(), "gshare".into()],
                },
            ],
        }
    }

    #[test]
    fn generated_requests_parse_against_the_schema() {
        let s = schema();
        let text = generate_requests(&s, 50, 7, 3).expect("generate");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 50);
        for (i, l) in lines.iter().enumerate() {
            let r = crate::request::parse_request_line(&s, l, i as u64 + 1).expect(l);
            assert_eq!(r.id, format!("g{i}"));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = schema();
        assert_eq!(
            generate_requests(&s, 30, 5, 9).expect("a"),
            generate_requests(&s, 30, 5, 9).expect("b")
        );
        assert_ne!(
            generate_requests(&s, 30, 5, 9).expect("a"),
            generate_requests(&s, 30, 5, 10).expect("c")
        );
    }

    #[test]
    fn degenerate_parameters_are_typed_errors() {
        let s = schema();
        assert_eq!(
            generate_requests(&s, 0, 5, 1).expect_err("n").kind(),
            "invalid"
        );
        assert_eq!(
            generate_requests(&s, 5, 0, 1).expect_err("distinct").kind(),
            "invalid"
        );
        let empty = TableSchema { columns: vec![] };
        assert_eq!(
            generate_requests(&empty, 5, 5, 1)
                .expect_err("empty")
                .kind(),
            "invalid"
        );
    }

    #[test]
    fn generated_workload_replays_end_to_end() {
        let n = 60;
        let speeds: Vec<f64> = (0..n).map(|i| 1000.0 + (i % 5) as f64 * 100.0).collect();
        let smt: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| 0.01 * speeds[i] + if smt[i] { 1.0 } else { 0.0 })
            .collect();
        let mut t = Table::new();
        t.add_numeric("speed", speeds)
            .add_flag("smt", smt)
            .set_target(y);
        let art = ModelArtifact::from_training(train(ModelKind::LrE, &t, 1), &t);
        let input = generate_requests(&art.schema, 300, 6, 4).expect("generate");
        let (out, stats) = serve_jsonl(art, ServeConfig::default(), &input).expect("serve");
        assert_eq!(out.lines().count(), 300);
        assert!(stats.cache_hits > 0, "{stats:?}");
    }
}
