//! Topology-specialized ("compiled") predictors over loaded artifacts.
//!
//! The generic predict path interprets a loaded `.ppmodel` per window:
//! build a [`mlmodels::Table`] from the requests, re-run the
//! preprocessor's transform, and walk the estimator's weight structures
//! (for networks, rebuilding each layer's weight [`Matrix`] per call).
//! [`compile`] does all shape-dependent work once at load time instead:
//!
//! * **LR / LR-E** compile to a single fused dot product — intercept
//!   plus one `coef * scale(extract(cell))` term per *active* feature,
//!   reading request cells directly (inactive features are never
//!   extracted at all).
//! * **NN** compiles to a fixed pipeline for the artifact's exact
//!   topology: fused extract+scale straight into the design row, dead
//!   inputs pinned to zero, prebuilt `outputs x inputs` weight matrices
//!   feeding [`Matrix::affine_nt`] (SIMD-dispatched) with in-place tanh
//!   between layers, and the target unscale folded onto the output.
//!
//! Both are **bit-identical** in f64 to the interpreted path: every
//! arithmetic step keeps the same operand order and grouping as
//! `transform` + `LinearFit::predict_row` / `Mlp::forward_batch`
//! (`serve::core` keeps the interpreted path alive behind
//! `PERFPREDICT_SERVE=interpreted` as the oracle, and the equivalence
//! tests and bench pre-checks compare the two byte-for-byte).
//!
//! # f32 inference mode
//!
//! [`compile_with`] + [`Precision::F32`] additionally lowers the
//! predictor to f32 (train in f64, predict in f32). The f32 path has no
//! bit-identity contract; instead, compilation runs a deterministic
//! probe over configurations drawn from the schema's observed training
//! domains and rejects the artifact with a typed error if any probe
//! prediction deviates from the f64 path by more than
//! [`F32_REL_BOUND`] relative error. Opt-in per artifact load.

use crate::request::{Cell, Request};
use fault::{Error, Result};
use linalg::Matrix;
use mlmodels::artifact::{ColumnSchema, ModelArtifact};
use mlmodels::model::Estimator;
use mlmodels::prep::FeaturePlan;

/// Numeric precision a compiled predictor serves in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Double precision — bit-identical to the interpreted path.
    F64,
    /// Single precision — bounded-relative-error against the f64 path,
    /// verified at compile time over the schema's observed domains.
    F32,
}

impl Precision {
    /// Lower-case label used in status lines and load frames.
    pub fn label(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }
}

/// Maximum relative error (against the f64 path, relative to
/// `max(1, |f64 prediction|)`) the f32 probe tolerates at compile time.
pub const F32_REL_BOUND: f64 = 1e-3;

/// One fused extract+scale: read the plan's source cell and apply the
/// training min/max scaling, exactly as `encode_unscaled` + `transform`
/// would for the matching design-matrix column.
#[derive(Debug, Clone)]
struct FeatureExtract {
    plan: FeaturePlan,
    min: f64,
    max: f64,
}

impl FeatureExtract {
    /// The unscaled feature value — the same mapping `encode_unscaled`
    /// applies to a batch-table column built from these cells.
    fn raw(&self, cells: &[Cell]) -> f64 {
        match self.plan {
            FeaturePlan::Numeric { col } => match cells[col] {
                Cell::Num(x) => x,
                ref other => unreachable!("validated numeric cell, got {other:?}"),
            },
            FeaturePlan::Flag { col } => match cells[col] {
                Cell::Flag(b) => b as u8 as f64,
                ref other => unreachable!("validated flag cell, got {other:?}"),
            },
            FeaturePlan::Code { col } => match cells[col] {
                Cell::Code(c) => c as f64,
                ref other => unreachable!("validated categorical cell, got {other:?}"),
            },
            FeaturePlan::Indicator { col, level } => match cells[col] {
                Cell::Code(c) => (c == level) as u8 as f64,
                ref other => unreachable!("validated categorical cell, got {other:?}"),
            },
        }
    }

    /// Scaled value, with the exact expression `transform` uses.
    fn scaled(&self, cells: &[Cell]) -> f64 {
        (self.raw(cells) - self.min) / (self.max - self.min)
    }
}

/// f64 predictor specialized to the artifact's topology.
#[derive(Debug)]
enum PredictorF64 {
    /// `intercept + Σ coef · scaled(feature)`, active terms only, in
    /// the fit's active order — the same fold as `predict_row`.
    Linear {
        intercept: f64,
        terms: Vec<(FeatureExtract, f64)>,
    },
    /// Fixed-topology network: fused design-row build, prebuilt weight
    /// matrices, affine+tanh per layer, target unscale on the output.
    Network {
        features: Vec<FeatureExtract>,
        dead: Vec<bool>,
        weights: Vec<Matrix>,
        biases: Vec<Vec<f64>>,
        target_min: f64,
        target_max: f64,
    },
}

/// f32 predictor (opt-in). Same structure as [`PredictorF64`] with the
/// arithmetic lowered to f32; extraction stays f64 (cells are f64) and
/// is rounded once per feature.
#[derive(Debug)]
enum PredictorF32 {
    Linear {
        intercept: f32,
        terms: Vec<(FeatureExtract, f32)>,
    },
    Network {
        features: Vec<FeatureExtract>,
        dead: Vec<bool>,
        /// Per layer: `(outputs, inputs, row-major weights)`.
        weights: Vec<(usize, usize, Vec<f32>)>,
        biases: Vec<Vec<f32>>,
        target_min: f64,
        target_max: f64,
    },
}

/// A loaded artifact compiled into a topology-specialized predictor.
#[derive(Debug)]
pub struct CompiledModel {
    /// The artifact this was compiled from (schema, model metadata).
    pub artifact: ModelArtifact,
    precision: Precision,
    f64p: PredictorF64,
    f32p: Option<PredictorF32>,
}

/// Compile an artifact into its specialized f64 predictor. Production
/// callers pick a precision via [`compile_with`]; the equivalence tests
/// are this shorthand's remaining users.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn compile(artifact: ModelArtifact) -> Result<CompiledModel> {
    compile_with(artifact, Precision::F64)
}

/// Compile an artifact, optionally lowering inference to f32 (verified
/// against the f64 path at compile time; see [`F32_REL_BOUND`]).
pub fn compile_with(artifact: ModelArtifact, precision: Precision) -> Result<CompiledModel> {
    let extracts = check_plan(&artifact)?;
    let f64p = build_f64(&artifact, &extracts)?;
    let f32p = match precision {
        Precision::F64 => None,
        Precision::F32 => {
            let p = build_f32(&artifact, &extracts);
            probe_f32(&artifact, &f64p, &p)?;
            Some(p)
        }
    };
    Ok(CompiledModel {
        artifact,
        precision,
        f64p,
        f32p,
    })
}

impl CompiledModel {
    /// The precision requests are served in.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Predict every request (schema-validated cells). Infallible by
    /// construction: every shape and type the prediction reads was
    /// checked when the artifact was compiled.
    pub fn predict_requests(&self, requests: &[&Request]) -> Vec<f64> {
        match &self.f32p {
            Some(p) => predict_f32(p, requests),
            None => predict_f64(&self.f64p, requests),
        }
    }

    /// The f64 predictor's output, regardless of serving precision —
    /// the oracle side of the f32 probe and the f32 bounded-error tests.
    pub fn predict_requests_f64(&self, requests: &[&Request]) -> Vec<f64> {
        predict_f64(&self.f64p, requests)
    }
}

/// Validate the artifact's preprocessing plan against its own schema and
/// return the fused extractors. A malformed artifact (plan reading
/// columns the schema does not have, or with mismatched types) is a
/// typed error at compile time instead of a panic per request.
fn check_plan(artifact: &ModelArtifact) -> Result<Vec<FeatureExtract>> {
    let prep = &artifact.model.prep;
    let plan = prep.plan();
    let features = prep.features();
    let columns = &artifact.schema.columns;
    let mut extracts = Vec::with_capacity(plan.len());
    for (fp, info) in plan.iter().zip(features) {
        let (col, want) = match *fp {
            FeaturePlan::Numeric { col } => (col, "numeric"),
            FeaturePlan::Flag { col } => (col, "flag"),
            FeaturePlan::Code { col } | FeaturePlan::Indicator { col, .. } => (col, "categorical"),
        };
        let got = match columns.get(col) {
            None => {
                return Err(Error::invalid(format!(
                    "artifact plan reads column {} ('{}'), but the schema has {} columns",
                    col,
                    info.name,
                    columns.len()
                )))
            }
            Some(ColumnSchema::Numeric { .. }) => "numeric",
            Some(ColumnSchema::Flag { .. }) => "flag",
            Some(ColumnSchema::Categorical { .. }) => "categorical",
        };
        if got != want {
            return Err(Error::invalid(format!(
                "artifact feature '{}' expects a {} column at index {}, schema has {}",
                info.name, want, col, got
            )));
        }
        extracts.push(FeatureExtract {
            plan: fp.clone(),
            min: info.min,
            max: info.max,
        });
    }
    Ok(extracts)
}

fn build_f64(artifact: &ModelArtifact, extracts: &[FeatureExtract]) -> Result<PredictorF64> {
    let model = &artifact.model;
    match &model.estimator {
        Estimator::Linear(fit) => {
            if fit.min_width() > extracts.len() {
                return Err(Error::invalid(format!(
                    "artifact linear fit reads design column {}, but the plan produces only {} features",
                    fit.min_width() - 1,
                    extracts.len()
                )));
            }
            Ok(PredictorF64::Linear {
                intercept: fit.intercept,
                terms: fit
                    .active
                    .iter()
                    .zip(&fit.coefs)
                    .map(|(&c, &b)| (extracts[c].clone(), b))
                    .collect(),
            })
        }
        Estimator::Network(net) => {
            if net.inputs() != extracts.len() {
                return Err(Error::invalid(format!(
                    "artifact network expects {} inputs, but the plan produces {} features",
                    net.inputs(),
                    extracts.len()
                )));
            }
            let (target_min, target_max) = model.prep.target_range();
            Ok(PredictorF64::Network {
                features: extracts.to_vec(),
                dead: net.dead_inputs().to_vec(),
                weights: (0..net.n_layers()).map(|l| net.layer_weights(l)).collect(),
                biases: (0..net.n_layers())
                    .map(|l| net.layer_bias(l).to_vec())
                    .collect(),
                target_min,
                target_max,
            })
        }
    }
}

fn build_f32(artifact: &ModelArtifact, extracts: &[FeatureExtract]) -> PredictorF32 {
    let model = &artifact.model;
    match &model.estimator {
        Estimator::Linear(fit) => PredictorF32::Linear {
            intercept: fit.intercept as f32,
            terms: fit
                .active
                .iter()
                .zip(&fit.coefs)
                .map(|(&c, &b)| (extracts[c].clone(), b as f32))
                .collect(),
        },
        Estimator::Network(net) => {
            let (target_min, target_max) = model.prep.target_range();
            let mut weights = Vec::with_capacity(net.n_layers());
            let mut biases = Vec::with_capacity(net.n_layers());
            for l in 0..net.n_layers() {
                let w = net.layer_weights(l);
                weights.push((
                    w.rows(),
                    w.cols(),
                    w.as_slice().iter().map(|&x| x as f32).collect(),
                ));
                biases.push(net.layer_bias(l).iter().map(|&x| x as f32).collect());
            }
            PredictorF32::Network {
                features: extracts.to_vec(),
                dead: net.dead_inputs().to_vec(),
                weights,
                biases,
                target_min,
                target_max,
            }
        }
    }
}

fn predict_f64(p: &PredictorF64, requests: &[&Request]) -> Vec<f64> {
    match p {
        PredictorF64::Linear { intercept, terms } => requests
            .iter()
            .map(|r| {
                let mut y = *intercept;
                for (fx, coef) in terms {
                    y += coef * fx.scaled(&r.cells);
                }
                y
            })
            .collect(),
        PredictorF64::Network {
            features,
            dead,
            weights,
            biases,
            target_min,
            target_max,
        } => {
            let n = requests.len();
            let p_in = features.len();
            let mut x = Matrix::zeros(n, p_in);
            for (i, r) in requests.iter().enumerate() {
                let row = x.row_mut(i);
                for (j, fx) in features.iter().enumerate() {
                    // Dead inputs are pinned to exactly 0.0, matching the
                    // post-transform mask in `Mlp::forward_batch`.
                    row[j] = if dead[j] { 0.0 } else { fx.scaled(&r.cells) };
                }
            }
            let mut a = x;
            let last = weights.len() - 1;
            for (l, (w, b)) in weights.iter().zip(biases).enumerate() {
                a = a.affine_nt(w, b);
                if l != last {
                    for v in a.as_mut_slice() {
                        *v = v.tanh();
                    }
                }
            }
            a.as_slice()
                .iter()
                .map(|&y| target_min + y * (target_max - target_min))
                .collect()
        }
    }
}

fn predict_f32(p: &PredictorF32, requests: &[&Request]) -> Vec<f64> {
    let be = simd::backend();
    match p {
        PredictorF32::Linear { intercept, terms } => requests
            .iter()
            .map(|r| {
                let mut y = *intercept;
                for (fx, coef) in terms {
                    y += coef * fx.scaled(&r.cells) as f32;
                }
                y as f64
            })
            .collect(),
        PredictorF32::Network {
            features,
            dead,
            weights,
            biases,
            target_min,
            target_max,
        } => requests
            .iter()
            .map(|r| {
                let mut act: Vec<f32> = features
                    .iter()
                    .enumerate()
                    .map(|(j, fx)| {
                        if dead[j] {
                            0.0
                        } else {
                            fx.scaled(&r.cells) as f32
                        }
                    })
                    .collect();
                let last = weights.len() - 1;
                for (l, ((outs, ins, w), b)) in weights.iter().zip(biases).enumerate() {
                    let mut next = Vec::with_capacity(*outs);
                    for o in 0..*outs {
                        let s = b[o] + simd::dot_f32(be, &w[o * ins..(o + 1) * ins], &act);
                        next.push(if l == last { s } else { s.tanh() });
                    }
                    act = next;
                }
                target_min + act[0] as f64 * (target_max - target_min)
            })
            .collect(),
    }
}

/// Deterministic f32-vs-f64 probe over the schema's observed training
/// domains: cycle each column through its observed values with a
/// per-column phase offset, predict the probe set both ways, and reject
/// compilation if any relative error exceeds [`F32_REL_BOUND`].
fn probe_f32(artifact: &ModelArtifact, f64p: &PredictorF64, f32p: &PredictorF32) -> Result<()> {
    let columns = &artifact.schema.columns;
    let domains: Vec<Vec<Cell>> = columns
        .iter()
        .map(|c| match c {
            ColumnSchema::Numeric { observed, .. } => {
                if observed.is_empty() {
                    vec![Cell::Num(0.0)]
                } else {
                    observed.iter().map(|&v| Cell::Num(v)).collect()
                }
            }
            ColumnSchema::Flag { .. } => vec![Cell::Flag(false), Cell::Flag(true)],
            ColumnSchema::Categorical { levels, .. } => {
                (0..levels.len() as u32).map(Cell::Code).collect()
            }
        })
        .collect();
    let n_probe = domains
        .iter()
        .map(|d| d.len())
        .max()
        .unwrap_or(1)
        .clamp(4, 64);
    let probes: Vec<Request> = (0..n_probe)
        .map(|i| Request {
            id: format!("probe-{i}"),
            cells: domains
                .iter()
                .enumerate()
                .map(|(j, d)| d[(i + j) % d.len()].clone())
                .collect(),
        })
        .collect();
    let refs: Vec<&Request> = probes.iter().collect();
    let exact = predict_f64(f64p, &refs);
    let approx = predict_f32(f32p, &refs);
    for (i, (a, b)) in exact.iter().zip(&approx).enumerate() {
        let tol = F32_REL_BOUND * a.abs().max(1.0);
        if !(a - b).abs().le(&tol) {
            return Err(Error::artifact(
                "<f32 probe>",
                format!(
                    "f32 inference deviates from f64 beyond {F32_REL_BOUND:e} on probe {i}: \
                     f64 {a} vs f32 {b} (model {})",
                    artifact.model.kind.abbrev()
                ),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::parse_request_line;
    use mlmodels::{train, ModelKind, Table};

    fn training_table(n: usize) -> Table {
        let speeds: Vec<f64> = (0..n).map(|i| 1000.0 + (i % 12) as f64 * 250.0).collect();
        let mems: Vec<f64> = (0..n)
            .map(|i| [266.0, 333.0, 400.0, 533.0][i % 4])
            .collect();
        let smt: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let bpred: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                0.01 * speeds[i] * (1.0 + 0.1 * (mems[i] / 400.0).ln())
                    + if smt[i] { 1.5 } else { 0.0 }
                    + bpred[i] as f64 * 0.3
            })
            .collect();
        let mut t = Table::new();
        t.add_numeric("speed", speeds)
            .add_numeric("mem_freq", mems)
            .add_flag("smt", smt)
            .add_categorical(
                "bpred",
                bpred,
                vec!["perfect".into(), "bimodal".into(), "gshare".into()],
            )
            .set_target(y);
        t
    }

    fn artifact(kind: ModelKind) -> ModelArtifact {
        let t = training_table(96);
        ModelArtifact::from_training(train(kind, &t, 7), &t)
    }

    fn requests(art: &ModelArtifact, n: usize) -> Vec<Request> {
        (0..n)
            .map(|i| {
                let speed = 1000.0 + (i % 17) as f64 * 175.0;
                let mem = [266.0, 333.0, 400.0, 533.0][i % 4];
                let smt = i % 2 == 0;
                let bpred = ["perfect", "bimodal", "gshare"][i % 3];
                parse_request_line(
                    &art.schema,
                    &format!(
                        "{{\"speed\":{speed},\"mem_freq\":{mem},\"smt\":{smt},\"bpred\":\"{bpred}\"}}"
                    ),
                    i as u64 + 1,
                )
                .expect("valid request")
            })
            .collect()
    }

    /// The compiled path must be byte-identical (f64) to the interpreted
    /// batch-table path, for both estimator families.
    #[test]
    fn compiled_matches_interpreted_bitwise() {
        for kind in [
            ModelKind::LrE,
            ModelKind::LrB,
            ModelKind::NnQ,
            ModelKind::NnE,
        ] {
            let art = artifact(kind);
            let reqs = requests(&art, 40);
            let refs: Vec<&Request> = reqs.iter().collect();
            let table = crate::request::batch_table(&art.schema, &refs);
            let interpreted = art.model.predict(&table);
            let compiled = compile(art).expect("compiles");
            let fast = compiled.predict_requests(&refs);
            assert_eq!(interpreted.len(), fast.len());
            for (i, (a, b)) in interpreted.iter().zip(&fast).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} request {i}: interpreted {a} vs compiled {b}",
                    kind.abbrev()
                );
            }
        }
    }

    /// f32 mode compiles (the probe passes on well-scaled models) and
    /// stays within the documented relative-error bound.
    #[test]
    fn f32_mode_is_bounded_error_against_f64() {
        for kind in [ModelKind::LrE, ModelKind::NnQ] {
            let art = artifact(kind);
            let reqs = requests(&art, 64);
            let refs: Vec<&Request> = reqs.iter().collect();
            let compiled = compile_with(art, Precision::F32).expect("f32 probe passes");
            assert_eq!(compiled.precision(), Precision::F32);
            let exact = compiled.predict_requests_f64(&refs);
            let approx = compiled.predict_requests(&refs);
            for (i, (a, b)) in exact.iter().zip(&approx).enumerate() {
                assert!(
                    (a - b).abs() <= F32_REL_BOUND * a.abs().max(1.0),
                    "{} request {i}: f64 {a} vs f32 {b}",
                    kind.abbrev()
                );
            }
        }
    }

    /// A malformed artifact (plan reading columns its schema lacks) is a
    /// typed compile-time error, not a per-request panic.
    #[test]
    fn mismatched_plan_fails_compilation_with_typed_error() {
        let mut art = artifact(ModelKind::LrE);
        art.schema.columns.truncate(1);
        let e = compile(art).expect_err("plan reads missing columns");
        assert_eq!(e.kind(), "invalid");
    }
}
