//! The reusable window-predict core shared by the one-shot replay
//! engine ([`crate::engine`]) and the long-lived daemon
//! ([`crate::daemon`]).
//!
//! One call to [`predict_window`] is the whole hot path of the serving
//! layer: probe the LRU surrogate cache, deduplicate the misses by
//! canonical key, run one matrix-form prediction sharded across scoped
//! worker threads, and fill every window slot. Row `i`'s arithmetic
//! never reads any other row, so the outcome is bit-identical for any
//! worker count — the property both the replay equivalence tests and
//! the soak harness's 1-vs-N comparison rely on.
//!
//! Keeping this a pure function of `(artifact, cache, requests)` is
//! what lets the daemon reuse it per model group while the one-shot
//! engine reuses it per admission window, with neither knowing about
//! the other's framing, deadlines, or degraded-mode policy.

use crate::cache::LruCache;
use crate::compiled::CompiledModel;
use crate::request::{batch_table, Request};
use mlmodels::TrainedModel;
use std::collections::HashMap;

/// What one window predict produced, slot-aligned with the input.
pub(crate) struct WindowOutcome {
    /// `(prediction, served_from_cache)` per request, in input order.
    pub results: Vec<(f64, bool)>,
    /// Requests answered from the cache.
    pub hits: u64,
    /// Distinct configurations actually predicted (misses after
    /// in-window dedup).
    pub predictions: u64,
    /// Prediction batches run (0 when every slot hit the cache).
    pub batches: u64,
}

/// Whether the interpreted (batch-table + weight-walking) predict path
/// was requested via `PERFPREDICT_SERVE=interpreted`. Read per call —
/// not cached — so equivalence tests and benches can flip between the
/// compiled path and its oracle in-process.
fn interpreted_oracle() -> bool {
    std::env::var("PERFPREDICT_SERVE").is_ok_and(|v| v.eq_ignore_ascii_case("interpreted"))
}

/// Shard `table`'s rows across `workers` scoped threads and predict each
/// contiguous chunk independently through the interpreted
/// [`TrainedModel::try_predict`] path. Row `i`'s arithmetic never reads
/// any other row, so the concatenated result is bit-identical to
/// `model.try_predict(&table)` for every worker count.
pub(crate) fn predict_sharded(
    model: &TrainedModel,
    table: &mlmodels::Table,
    workers: usize,
) -> fault::Result<Vec<f64>> {
    let n = table.n_rows();
    let workers = workers.min(n).max(1);
    if workers == 1 {
        return model.try_predict(table);
    }
    let chunk = n.div_ceil(workers);
    let mut out = vec![0.0; n];
    let mut first_err = None;
    std::thread::scope(|scope| {
        let mut remaining: &mut [f64] = &mut out;
        let mut start = 0;
        let mut handles = Vec::with_capacity(workers);
        while start < n {
            let len = chunk.min(n - start);
            let (slot, rest) = remaining.split_at_mut(len);
            remaining = rest;
            let rows: Vec<usize> = (start..start + len).collect();
            handles.push(scope.spawn(move || -> fault::Result<()> {
                let sub = table.select_rows(&rows);
                slot.copy_from_slice(&model.try_predict(&sub)?);
                Ok(())
            }));
            start += len;
        }
        for h in handles {
            match h.join() {
                Err(payload) => std::panic::resume_unwind(payload),
                Ok(Err(e)) if first_err.is_none() => first_err = Some(e),
                Ok(_) => {}
            }
        }
    });
    match first_err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Shard `requests` across `workers` scoped threads through the
/// compiled predictor. Each request's prediction reads only its own
/// cells (and for networks, `affine_nt` computes each output row from
/// its own input row), so the concatenated result is bit-identical to
/// one `predict_requests` call for every worker count.
fn predict_compiled_sharded(
    model: &CompiledModel,
    requests: &[&Request],
    workers: usize,
) -> Vec<f64> {
    let n = requests.len();
    let workers = workers.min(n).max(1);
    if workers == 1 {
        return model.predict_requests(requests);
    }
    let chunk = n.div_ceil(workers);
    let mut out = vec![0.0; n];
    std::thread::scope(|scope| {
        let mut remaining: &mut [f64] = &mut out;
        let mut start = 0;
        let mut handles = Vec::with_capacity(workers);
        while start < n {
            let len = chunk.min(n - start);
            let (slot, rest) = remaining.split_at_mut(len);
            remaining = rest;
            let part = &requests[start..start + len];
            handles.push(scope.spawn(move || {
                slot.copy_from_slice(&model.predict_requests(part));
            }));
            start += len;
        }
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    out
}

/// Serve one window of validated requests: cache probe, in-window
/// dedup, one sharded pass over the distinct misses through the
/// compiled predictor, cache fill. Returns one `(prediction, cached)`
/// pair per input slot.
///
/// The pre-compile interpreted path (batch table + generic weight
/// interpretation) stays selectable via `PERFPREDICT_SERVE=interpreted`
/// as the equivalence oracle; it produces bit-identical f64 output.
/// Errors can only arise on that oracle path (the compiled path proved
/// every shape it reads at compile time).
pub(crate) fn predict_window(
    model: &CompiledModel,
    cache: &mut LruCache<Vec<u64>, f64>,
    workers: usize,
    requests: &[&Request],
) -> fault::Result<WindowOutcome> {
    let _span = telemetry::span!("serve/batch", rows = requests.len());
    let mut results: Vec<(f64, bool)> = vec![(0.0, false); requests.len()];
    let mut miss_of_key: HashMap<Vec<u64>, usize> = HashMap::new();
    let mut unique: Vec<&Request> = Vec::new();
    let mut unique_keys: Vec<Vec<u64>> = Vec::new();
    let mut pending: Vec<(usize, usize)> = Vec::new(); // (window slot, unique slot)
    let mut hits = 0u64;
    for (slot, request) in requests.iter().enumerate() {
        let key = request.canonical_key();
        if let Some(hit) = cache.get(&key) {
            hits += 1;
            results[slot] = (hit, true);
            continue;
        }
        let uslot = *miss_of_key.entry(key.clone()).or_insert_with(|| {
            unique.push(request);
            unique_keys.push(key);
            unique.len() - 1
        });
        pending.push((slot, uslot));
    }
    let mut predictions = 0u64;
    let mut batches = 0u64;
    // One sharded pass over the deduplicated misses.
    if !unique.is_empty() {
        let preds = if interpreted_oracle() {
            let table = batch_table(&model.artifact.schema, &unique);
            predict_sharded(&model.artifact.model, &table, workers)?
        } else {
            predict_compiled_sharded(model, &unique, workers)
        };
        predictions = preds.len() as u64;
        batches = 1;
        telemetry::counter_add("serve/predictions", predictions);
        for (key, &p) in unique_keys.into_iter().zip(&preds) {
            cache.put(key, p);
        }
        for &(slot, uslot) in &pending {
            results[slot] = (preds[uslot], false);
        }
    }
    telemetry::counter_add("serve/requests", requests.len() as u64);
    telemetry::counter_add("serve/cache_hits", hits);
    telemetry::counter_add("serve/cache_misses", requests.len() as u64 - hits);
    Ok(WindowOutcome {
        results,
        hits,
        predictions,
        batches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::compile;
    use mlmodels::{train, ModelArtifact, ModelKind, Table};

    fn artifact() -> ModelArtifact {
        let n = 48;
        let xs: Vec<f64> = (0..n).map(|i| 100.0 + (i % 6) as f64 * 50.0).collect();
        let y: Vec<f64> = xs.iter().map(|x| 3.0 * x + 7.0).collect();
        let mut t = Table::new();
        t.add_numeric("x", xs).set_target(y);
        ModelArtifact::from_training(train(ModelKind::LrE, &t, 5), &t)
    }

    fn compiled() -> CompiledModel {
        compile(artifact()).expect("artifact compiles")
    }

    fn request(schema: &mlmodels::artifact::TableSchema, x: f64, line: u64) -> Request {
        crate::request::parse_request_line(schema, &format!("{{\"x\":{x}}}"), line)
            .expect("valid request")
    }

    #[test]
    fn window_dedups_and_fills_every_slot() {
        let model = compiled();
        let mut cache = LruCache::new(16);
        let reqs: Vec<Request> = [100.0, 150.0, 100.0, 200.0, 150.0]
            .iter()
            .enumerate()
            .map(|(i, &x)| request(&model.artifact.schema, x, i as u64 + 1))
            .collect();
        let refs: Vec<&Request> = reqs.iter().collect();
        let out = predict_window(&model, &mut cache, 2, &refs).expect("window predicts");
        assert_eq!(out.results.len(), 5);
        assert_eq!(out.predictions, 3, "three distinct configs");
        assert_eq!(out.batches, 1);
        assert_eq!(out.hits, 0);
        // Duplicate slots share the deduplicated prediction bit-for-bit.
        assert_eq!(out.results[0].0.to_bits(), out.results[2].0.to_bits());
        assert_eq!(out.results[1].0.to_bits(), out.results[4].0.to_bits());
        // A second pass over the same window is all cache hits.
        let again = predict_window(&model, &mut cache, 2, &refs).expect("window predicts");
        assert_eq!(again.hits, 5);
        assert_eq!(again.batches, 0);
        assert!(again.results.iter().all(|&(_, cached)| cached));
    }

    #[test]
    fn outcome_is_identical_across_worker_counts() {
        let model = compiled();
        let reqs: Vec<Request> = (0..40)
            .map(|i| request(&model.artifact.schema, 100.0 + (i % 9) as f64 * 25.0, i + 1))
            .collect();
        let refs: Vec<&Request> = reqs.iter().collect();
        let mut base_cache = LruCache::new(64);
        let base = predict_window(&model, &mut base_cache, 1, &refs).expect("window predicts");
        for workers in [2, 3, 8] {
            let mut cache = LruCache::new(64);
            let out = predict_window(&model, &mut cache, workers, &refs).expect("window predicts");
            for (slot, (a, b)) in base.results.iter().zip(&out.results).enumerate() {
                assert_eq!(
                    a.0.to_bits(),
                    b.0.to_bits(),
                    "slot {slot}, {workers} workers"
                );
                assert_eq!(a.1, b.1, "slot {slot} cached flag");
            }
        }
    }

    /// Regression (predict-path edge cases): `-0.0` and `0.0` are the
    /// same configuration. Pre-fix, the raw `-0.0` bit pattern leaked
    /// into the cache key and the pair cost two predictions and two
    /// cache entries; canonicalizing the cell at validation makes them
    /// one in-window dedup hit and one shared cache entry end to end.
    #[test]
    fn negative_zero_and_zero_share_one_prediction_and_cache_entry() {
        let model = compiled();
        let mut cache = LruCache::new(16);
        let reqs = [
            crate::request::parse_request_line(&model.artifact.schema, "{\"x\":-0.0}", 1),
            crate::request::parse_request_line(&model.artifact.schema, "{\"x\":0.0}", 2),
        ]
        .map(|r| r.expect("valid request"));
        let refs: Vec<&Request> = reqs.iter().collect();
        let out = predict_window(&model, &mut cache, 1, &refs).expect("window predicts");
        assert_eq!(out.predictions, 1, "one distinct configuration");
        assert_eq!(out.results[0].0.to_bits(), out.results[1].0.to_bits());
        assert_eq!(cache.len(), 1, "one shared cache entry");
        // And a -0.0 replay is a pure cache hit.
        let again = predict_window(&model, &mut cache, 1, &refs[..1]).expect("window predicts");
        assert_eq!(again.hits, 1);
    }

    /// The interpreted path stays available as the equivalence oracle
    /// and is bit-identical to the compiled default.
    #[test]
    fn interpreted_oracle_env_is_bit_identical() {
        let model = compiled();
        let reqs: Vec<Request> = (0..24)
            .map(|i| request(&model.artifact.schema, 100.0 + (i % 7) as f64 * 37.5, i + 1))
            .collect();
        let refs: Vec<&Request> = reqs.iter().collect();
        let mut c1 = LruCache::new(64);
        let fast = predict_window(&model, &mut c1, 2, &refs).expect("compiled path");
        // Safe pre-2024-edition; racing readers at worst see the oracle
        // path, which is the whole point: it is bit-identical.
        std::env::set_var("PERFPREDICT_SERVE", "interpreted");
        let mut c2 = LruCache::new(64);
        let slow = predict_window(&model, &mut c2, 2, &refs);
        std::env::remove_var("PERFPREDICT_SERVE");
        let slow = slow.expect("interpreted path");
        for (slot, (a, b)) in fast.results.iter().zip(&slow.results).enumerate() {
            assert_eq!(a.0.to_bits(), b.0.to_bits(), "slot {slot}");
        }
    }
}
