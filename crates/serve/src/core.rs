//! The reusable window-predict core shared by the one-shot replay
//! engine ([`crate::engine`]) and the long-lived daemon
//! ([`crate::daemon`]).
//!
//! One call to [`predict_window`] is the whole hot path of the serving
//! layer: probe the LRU surrogate cache, deduplicate the misses by
//! canonical key, run one matrix-form prediction sharded across scoped
//! worker threads, and fill every window slot. Row `i`'s arithmetic
//! never reads any other row, so the outcome is bit-identical for any
//! worker count — the property both the replay equivalence tests and
//! the soak harness's 1-vs-N comparison rely on.
//!
//! Keeping this a pure function of `(artifact, cache, requests)` is
//! what lets the daemon reuse it per model group while the one-shot
//! engine reuses it per admission window, with neither knowing about
//! the other's framing, deadlines, or degraded-mode policy.

use crate::cache::LruCache;
use crate::request::{batch_table, Request};
use mlmodels::{ModelArtifact, TrainedModel};
use std::collections::HashMap;

/// What one window predict produced, slot-aligned with the input.
pub(crate) struct WindowOutcome {
    /// `(prediction, served_from_cache)` per request, in input order.
    pub results: Vec<(f64, bool)>,
    /// Requests answered from the cache.
    pub hits: u64,
    /// Distinct configurations actually predicted (misses after
    /// in-window dedup).
    pub predictions: u64,
    /// Prediction batches run (0 when every slot hit the cache).
    pub batches: u64,
}

/// Shard `table`'s rows across `workers` scoped threads and predict each
/// contiguous chunk independently. Row `i`'s arithmetic never reads any
/// other row, so the concatenated result is bit-identical to
/// `model.predict(&table)` for every worker count.
pub(crate) fn predict_sharded(
    model: &TrainedModel,
    table: &mlmodels::Table,
    workers: usize,
) -> Vec<f64> {
    let n = table.n_rows();
    let workers = workers.min(n).max(1);
    if workers == 1 {
        return model.predict(table);
    }
    let chunk = n.div_ceil(workers);
    let mut out = vec![0.0; n];
    std::thread::scope(|scope| {
        let mut remaining: &mut [f64] = &mut out;
        let mut start = 0;
        let mut handles = Vec::with_capacity(workers);
        while start < n {
            let len = chunk.min(n - start);
            let (slot, rest) = remaining.split_at_mut(len);
            remaining = rest;
            let rows: Vec<usize> = (start..start + len).collect();
            handles.push(scope.spawn(move || {
                let sub = table.select_rows(&rows);
                slot.copy_from_slice(&model.predict(&sub));
            }));
            start += len;
        }
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    out
}

/// Serve one window of validated requests: cache probe, in-window
/// dedup, one sharded matrix-form pass over the distinct misses, cache
/// fill. Returns one `(prediction, cached)` pair per input slot.
pub(crate) fn predict_window(
    artifact: &ModelArtifact,
    cache: &mut LruCache<Vec<u64>, f64>,
    workers: usize,
    requests: &[&Request],
) -> WindowOutcome {
    let _span = telemetry::span!("serve/batch", rows = requests.len());
    let mut results: Vec<(f64, bool)> = vec![(0.0, false); requests.len()];
    let mut miss_of_key: HashMap<Vec<u64>, usize> = HashMap::new();
    let mut unique: Vec<&Request> = Vec::new();
    let mut unique_keys: Vec<Vec<u64>> = Vec::new();
    let mut pending: Vec<(usize, usize)> = Vec::new(); // (window slot, unique slot)
    let mut hits = 0u64;
    for (slot, request) in requests.iter().enumerate() {
        let key = request.canonical_key();
        if let Some(hit) = cache.get(&key) {
            hits += 1;
            results[slot] = (hit, true);
            continue;
        }
        let uslot = *miss_of_key.entry(key.clone()).or_insert_with(|| {
            unique.push(request);
            unique_keys.push(key);
            unique.len() - 1
        });
        pending.push((slot, uslot));
    }
    let mut predictions = 0u64;
    let mut batches = 0u64;
    // One matrix-form pass over the deduplicated misses.
    if !unique.is_empty() {
        let table = batch_table(&artifact.schema, &unique);
        let preds = predict_sharded(&artifact.model, &table, workers);
        predictions = preds.len() as u64;
        batches = 1;
        telemetry::counter_add("serve/predictions", predictions);
        for (key, &p) in unique_keys.into_iter().zip(&preds) {
            cache.put(key, p);
        }
        for &(slot, uslot) in &pending {
            results[slot] = (preds[uslot], false);
        }
    }
    telemetry::counter_add("serve/requests", requests.len() as u64);
    telemetry::counter_add("serve/cache_hits", hits);
    telemetry::counter_add("serve/cache_misses", requests.len() as u64 - hits);
    WindowOutcome {
        results,
        hits,
        predictions,
        batches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlmodels::{train, ModelKind, Table};

    fn artifact() -> ModelArtifact {
        let n = 48;
        let xs: Vec<f64> = (0..n).map(|i| 100.0 + (i % 6) as f64 * 50.0).collect();
        let y: Vec<f64> = xs.iter().map(|x| 3.0 * x + 7.0).collect();
        let mut t = Table::new();
        t.add_numeric("x", xs).set_target(y);
        ModelArtifact::from_training(train(ModelKind::LrE, &t, 5), &t)
    }

    fn request(schema: &mlmodels::artifact::TableSchema, x: f64, line: u64) -> Request {
        crate::request::parse_request_line(schema, &format!("{{\"x\":{x}}}"), line)
            .expect("valid request")
    }

    #[test]
    fn window_dedups_and_fills_every_slot() {
        let art = artifact();
        let mut cache = LruCache::new(16);
        let reqs: Vec<Request> = [100.0, 150.0, 100.0, 200.0, 150.0]
            .iter()
            .enumerate()
            .map(|(i, &x)| request(&art.schema, x, i as u64 + 1))
            .collect();
        let refs: Vec<&Request> = reqs.iter().collect();
        let out = predict_window(&art, &mut cache, 2, &refs);
        assert_eq!(out.results.len(), 5);
        assert_eq!(out.predictions, 3, "three distinct configs");
        assert_eq!(out.batches, 1);
        assert_eq!(out.hits, 0);
        // Duplicate slots share the deduplicated prediction bit-for-bit.
        assert_eq!(out.results[0].0.to_bits(), out.results[2].0.to_bits());
        assert_eq!(out.results[1].0.to_bits(), out.results[4].0.to_bits());
        // A second pass over the same window is all cache hits.
        let again = predict_window(&art, &mut cache, 2, &refs);
        assert_eq!(again.hits, 5);
        assert_eq!(again.batches, 0);
        assert!(again.results.iter().all(|&(_, cached)| cached));
    }

    #[test]
    fn outcome_is_identical_across_worker_counts() {
        let art = artifact();
        let reqs: Vec<Request> = (0..40)
            .map(|i| request(&art.schema, 100.0 + (i % 9) as f64 * 25.0, i + 1))
            .collect();
        let refs: Vec<&Request> = reqs.iter().collect();
        let mut base_cache = LruCache::new(64);
        let base = predict_window(&art, &mut base_cache, 1, &refs);
        for workers in [2, 3, 8] {
            let mut cache = LruCache::new(64);
            let out = predict_window(&art, &mut cache, workers, &refs);
            for (slot, (a, b)) in base.results.iter().zip(&out.results).enumerate() {
                assert_eq!(
                    a.0.to_bits(),
                    b.0.to_bits(),
                    "slot {slot}, {workers} workers"
                );
                assert_eq!(a.1, b.1, "slot {slot} cached flag");
            }
        }
    }
}
