//! JSONL request parsing and schema validation.
//!
//! A request line is one JSON object mapping column names to values, with
//! an optional `"id"` field echoed back in the response:
//!
//! ```text
//! {"id":"q17","speed":1800,"smt":true,"bpred":"gshare","mem_freq":400}
//! ```
//!
//! Validation is strict and typed: every schema column must be present
//! with the right type (categorical levels must be in the training
//! vocabulary), and unknown fields are rejected — a typo'd column name
//! silently defaulting would be a wrong prediction served with a straight
//! face. All failures are [`fault::Error::InvalidInput`] naming the line
//! and field, so a bad replay file exits with code 2 instead of panicking
//! inside the preprocessor.

use fault::{Error, Result};
use mlmodels::artifact::{ColumnSchema, TableSchema};
use mlmodels::Table;
use telemetry::json::{self, Value};

/// One validated configuration cell, typed like its training column.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Numeric value (finite).
    Num(f64),
    /// Flag value.
    Flag(bool),
    /// Categorical level code (index into the schema's level list).
    Code(u32),
}

/// A validated request: cells in schema column order, plus the id echoed
/// in the response.
#[derive(Debug, Clone)]
pub struct Request {
    /// Response id: the request's `"id"` field, or the 1-based line
    /// number rendered as a string when absent.
    pub id: String,
    /// One cell per schema column, in schema order.
    pub cells: Vec<Cell>,
}

impl Request {
    /// Canonical cache key: one `u64` per cell, in schema order. Numeric
    /// cells use the f64 bit pattern with `-0.0` folded into `0.0`, so
    /// arithmetically identical configs share a key.
    pub(crate) fn canonical_key(&self) -> Vec<u64> {
        self.cells
            .iter()
            .map(|c| match *c {
                Cell::Num(x) => (if x == 0.0 { 0.0f64 } else { x }).to_bits(),
                Cell::Flag(b) => b as u64,
                Cell::Code(code) => code as u64,
            })
            .collect()
    }
}

fn invalid(line_no: u64, detail: impl std::fmt::Display) -> Error {
    Error::invalid(format!("request line {line_no}: {detail}"))
}

/// Parse and validate one JSONL request line against the schema.
/// `line_no` is 1-based and used both for error messages and as the
/// default id.
pub fn parse_request_line(schema: &TableSchema, line: &str, line_no: u64) -> Result<Request> {
    let value = json::parse(line).map_err(|e| invalid(line_no, format!("malformed JSON: {e}")))?;
    let Value::Obj(fields) = &value else {
        return Err(invalid(line_no, "request must be a JSON object"));
    };
    request_from_fields(schema, fields, line_no)
}

/// Validate an already-parsed field map against the schema. The daemon
/// calls this directly after stripping its envelope keys (`op`, `model`,
/// `deadline_ms`) from the frame, so schema validation stays identical
/// between one-shot replay and daemon mode; [`parse_request_line`]
/// delegates here. `line_no` is the 1-based frame number, used for error
/// messages and the default id.
pub(crate) fn request_from_fields(
    schema: &TableSchema,
    fields: &std::collections::BTreeMap<String, Value>,
    line_no: u64,
) -> Result<Request> {
    for key in fields.keys() {
        if key != "id" && schema.column(key).is_none() {
            return Err(invalid(
                line_no,
                format!("unknown field '{key}' (not a schema column)"),
            ));
        }
    }
    let id = match fields.get("id") {
        None => line_no.to_string(),
        Some(Value::Str(s)) => s.clone(),
        Some(Value::Num(x)) => json::number(*x),
        Some(_) => return Err(invalid(line_no, "'id' must be a string or number")),
    };
    let mut cells = Vec::with_capacity(schema.columns.len());
    for col in &schema.columns {
        let name = col.name();
        let v = fields
            .get(name)
            .ok_or_else(|| invalid(line_no, format!("missing field '{name}'")))?;
        let cell = match col {
            ColumnSchema::Numeric { .. } => match v.as_f64() {
                // Canonicalize -0.0 at the boundary so every stored
                // cell (and anything derived from it — cache keys,
                // design rows, compiled-predictor inputs) sees one
                // representation per arithmetic value. NaN and the
                // infinities fail the is_finite gate with a typed
                // error, so they can never reach the cache or dedup.
                Some(x) if x.is_finite() => Cell::Num(if x == 0.0 { 0.0 } else { x }),
                _ => {
                    return Err(invalid(
                        line_no,
                        format!("field '{name}' must be a finite number"),
                    ))
                }
            },
            ColumnSchema::Flag { .. } => match v {
                Value::Bool(b) => Cell::Flag(*b),
                _ => {
                    return Err(invalid(
                        line_no,
                        format!("field '{name}' must be true or false"),
                    ))
                }
            },
            ColumnSchema::Categorical { levels, .. } => {
                let s = v.as_str().ok_or_else(|| {
                    invalid(line_no, format!("field '{name}' must be a level name"))
                })?;
                let code = levels.iter().position(|l| l == s).ok_or_else(|| {
                    invalid(
                        line_no,
                        format!(
                            "field '{name}': unknown level '{s}' (training levels: {})",
                            levels.join(", ")
                        ),
                    )
                })?;
                // Level index comes from the artifact schema, which is
                // external input: convert checked so a pathological
                // schema cannot wrap the code.
                Cell::Code(u32::try_from(code).map_err(|_| {
                    invalid(
                        line_no,
                        format!("field '{name}': level index {code} exceeds u32 range"),
                    )
                })?)
            }
        };
        cells.push(cell);
    }
    Ok(Request { id, cells })
}

/// Assemble a prediction [`Table`] from validated requests, in schema
/// column order — the order the artifact's preprocessor addresses columns
/// by. The target is a placeholder (predictions never read it).
pub(crate) fn batch_table(schema: &TableSchema, requests: &[&Request]) -> Table {
    let n = requests.len();
    let mut table = Table::new();
    for (j, col) in schema.columns.iter().enumerate() {
        match col {
            ColumnSchema::Numeric { name, .. } => {
                let vals = requests
                    .iter()
                    .map(|r| match r.cells[j] {
                        Cell::Num(x) => x,
                        ref other => unreachable!("validated numeric cell, got {other:?}"),
                    })
                    .collect();
                table.add_numeric(name.clone(), vals);
            }
            ColumnSchema::Flag { name } => {
                let vals = requests
                    .iter()
                    .map(|r| match r.cells[j] {
                        Cell::Flag(b) => b,
                        ref other => unreachable!("validated flag cell, got {other:?}"),
                    })
                    .collect();
                table.add_flag(name.clone(), vals);
            }
            ColumnSchema::Categorical { name, levels } => {
                let codes = requests
                    .iter()
                    .map(|r| match r.cells[j] {
                        Cell::Code(c) => c,
                        ref other => unreachable!("validated categorical cell, got {other:?}"),
                    })
                    .collect();
                table.add_categorical(name.clone(), codes, levels.clone());
            }
        }
    }
    table.set_target(vec![0.0; n]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema {
            columns: vec![
                ColumnSchema::Numeric {
                    name: "speed".into(),
                    observed: vec![1000.0, 1800.0],
                },
                ColumnSchema::Flag { name: "smt".into() },
                ColumnSchema::Categorical {
                    name: "bpred".into(),
                    levels: vec!["perfect".into(), "gshare".into()],
                },
            ],
        }
    }

    #[test]
    fn valid_line_parses_in_schema_order() {
        let r = parse_request_line(
            &schema(),
            r#"{"bpred":"gshare","id":"q1","smt":true,"speed":1800}"#,
            1,
        )
        .expect("valid");
        assert_eq!(r.id, "q1");
        assert_eq!(
            r.cells,
            vec![Cell::Num(1800.0), Cell::Flag(true), Cell::Code(1)]
        );
    }

    #[test]
    fn missing_id_defaults_to_line_number() {
        let r = parse_request_line(
            &schema(),
            r#"{"bpred":"perfect","smt":false,"speed":1000}"#,
            42,
        )
        .expect("valid");
        assert_eq!(r.id, "42");
    }

    #[test]
    fn bad_requests_are_typed_invalid_input() {
        let s = schema();
        let cases = [
            ("not json", "malformed"),
            (r#"{"smt":true,"speed":1800}"#, "missing field 'bpred'"),
            (
                r#"{"bpred":"gshare","smt":true,"speed":1800,"typo":1}"#,
                "unknown field 'typo'",
            ),
            (
                r#"{"bpred":"gshare","smt":"yes","speed":1800}"#,
                "must be true or false",
            ),
            (
                r#"{"bpred":"neural","smt":true,"speed":1800}"#,
                "unknown level 'neural'",
            ),
            (
                r#"{"bpred":"gshare","smt":true,"speed":"fast"}"#,
                "finite number",
            ),
        ];
        for (line, want) in cases {
            let err = parse_request_line(&s, line, 7).expect_err(line);
            assert_eq!(err.kind(), "invalid", "{line}");
            let msg = err.to_string();
            assert!(
                msg.contains("line 7") && msg.contains(want),
                "{line}: {msg}"
            );
        }
    }

    #[test]
    fn canonical_key_folds_negative_zero_and_distinguishes_configs() {
        let s = schema();
        let a = parse_request_line(&s, r#"{"bpred":"perfect","smt":false,"speed":0}"#, 1).unwrap();
        let b =
            parse_request_line(&s, r#"{"bpred":"perfect","smt":false,"speed":-0.0}"#, 2).unwrap();
        let c = parse_request_line(&s, r#"{"bpred":"perfect","smt":true,"speed":0}"#, 3).unwrap();
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_ne!(a.canonical_key(), c.canonical_key());
    }

    /// Regression (cache-key canonicalization): `-0.0` is rewritten to
    /// `0.0` *in the stored cell* at validation time, so every consumer
    /// of the cells — cache keys, batch tables, compiled predictors —
    /// sees one representation per arithmetic value.
    #[test]
    fn negative_zero_is_canonicalized_in_the_cell_itself() {
        let s = schema();
        let r =
            parse_request_line(&s, r#"{"bpred":"perfect","smt":false,"speed":-0.0}"#, 1).unwrap();
        match r.cells[0] {
            Cell::Num(x) => assert_eq!(x.to_bits(), 0.0f64.to_bits(), "stored cell must be +0.0"),
            ref other => panic!("expected numeric cell, got {other:?}"),
        }
    }

    /// Regression (NaN rejection): non-finite numerics — including
    /// overflow-to-infinity literals like 1e999 — are typed
    /// `InvalidInput` at validation, so NaN can never poison the cache
    /// key space or the in-window dedup map.
    #[test]
    fn non_finite_numerics_are_rejected_at_validation() {
        let s = schema();
        for line in [
            r#"{"bpred":"perfect","smt":false,"speed":1e999}"#,
            r#"{"bpred":"perfect","smt":false,"speed":-1e999}"#,
        ] {
            let err = parse_request_line(&s, line, 5).expect_err(line);
            assert_eq!(err.kind(), "invalid", "{line}");
            assert!(err.to_string().contains("finite number"), "{line}: {err}");
        }
        // And via the daemon's pre-parsed field-map entry point too.
        let mut fields = std::collections::BTreeMap::new();
        fields.insert("speed".to_string(), Value::Num(f64::NAN));
        fields.insert("smt".to_string(), Value::Bool(false));
        fields.insert("bpred".to_string(), Value::Str("perfect".into()));
        let err = request_from_fields(&s, &fields, 9).expect_err("NaN cell");
        assert_eq!(err.kind(), "invalid");
        assert!(err.to_string().contains("finite number"), "{err}");
    }

    #[test]
    fn batch_table_reconstructs_training_shape() {
        let s = schema();
        let r1 =
            parse_request_line(&s, r#"{"bpred":"gshare","smt":true,"speed":1800}"#, 1).unwrap();
        let r2 =
            parse_request_line(&s, r#"{"bpred":"perfect","smt":false,"speed":1000}"#, 2).unwrap();
        let t = batch_table(&s, &[&r1, &r2]);
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.names(), ["speed", "smt", "bpred"]);
        t.validate();
    }
}
