//! `serve` — the batched prediction service over exported model artifacts.
//!
//! The paper's pay-off (§4.2) is that a surrogate trained on 1–5 % of a
//! design space answers for the rest of it; this crate is where those
//! answers are actually served. It replays JSONL configuration requests
//! against a [`mlmodels::ModelArtifact`] with the throughput posture of a
//! real inference tier:
//!
//! * [`request`] — parse JSONL requests and validate each configuration
//!   against the artifact's [`mlmodels::TableSchema`] (typed
//!   `InvalidInput` errors naming the offending line and field, never a
//!   panic deep in the preprocessor).
//! * [`cache`] — a bounded LRU surrogate cache keyed on canonicalized
//!   configuration vectors; design-space replays are heavily repetitive,
//!   so hot configs skip the model entirely.
//! * [`engine`] — the batched engine: a bounded admission queue applies
//!   backpressure to the reader, cache misses are deduplicated and
//!   predicted in matrix form, and a scoped worker pool shards each
//!   batch by row index so output is bit-identical whether one thread
//!   runs or eight do. Responses come back in request order.
//! * [`workload`] — a seeded request generator that samples the schema's
//!   observed value domains, for smoke tests and benchmarks.
//!
//! Telemetry: every batch is a `serve/batch` span, and the engine
//! maintains `serve/requests`, `serve/cache_hits`, `serve/cache_misses`,
//! `serve/predictions`, and queue-depth / latency gauges alongside the
//! [`engine::ServeStats`] it returns.

pub(crate) mod admission;
pub mod cache;
pub mod compiled;
pub(crate) mod core;
pub mod daemon;
pub mod engine;
pub mod registry;
pub mod request;
pub mod workload;

pub use admission::AdmissionQueue;
pub use cache::LruCache;
pub use compiled::{compile_with, CompiledModel, Precision, F32_REL_BOUND};
pub use daemon::{Daemon, DaemonConfig, DaemonStats};
pub use engine::{serve_jsonl, Engine, ServeConfig, ServeStats};
pub use registry::{Registry, RegistryConfig};
pub use request::{parse_request_line, Request};
pub use workload::generate_requests;
