//! Bounded LRU surrogate cache.
//!
//! Design-space replays are heavily repetitive — the same few hundred
//! candidate configurations come back again and again as outer tooling
//! explores around optima — so the serving engine fronts the model with
//! an LRU map from canonicalized configuration vectors to predictions.
//!
//! The implementation is the classic hash-map-plus-intrusive-list: a
//! `HashMap` from key to slot index, and slots threaded on a doubly
//! linked list (indices, not pointers) ordered by recency. All
//! operations are O(1); eviction pops the list tail. Capacity 0 is a
//! legal degenerate cache that stores nothing.

use std::collections::HashMap;

/// Sentinel for "no neighbour" in the intrusive list.
const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used cache.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// A cache holding at most `capacity` entries.
    ///
    /// Eviction semantics, by capacity:
    ///
    /// * `capacity == 0` — **the cache is disabled**: `put` is a no-op
    ///   and `get` always misses. Never a panic, never unbounded
    ///   growth; the serving layer maps `--cache-cap 0` onto this to
    ///   force every request through the model.
    /// * `capacity == 1` — a single-slot cache: each `put` of a new key
    ///   evicts the previous resident (degenerate but valid LRU).
    /// * otherwise — the least-recently-*used* entry is evicted when a
    ///   `put` of a new key finds the cache full; both `get` hits and
    ///   `put` overwrites refresh recency.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slots: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let &idx = self.map.get(key)?;
        self.detach(idx);
        self.attach_front(idx);
        Some(self.slots[idx].value.clone())
    }

    /// Insert (or refresh) `key → value`, evicting the least recently
    /// used entry if the cache is full.
    pub(crate) fn put(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            self.detach(idx);
            self.attach_front(idx);
            return;
        }
        let idx = if self.slots.len() < self.capacity {
            self.slots.push(Slot {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        } else {
            // Reuse the LRU slot.
            let idx = self.tail;
            self.detach(idx);
            self.map.remove(&self.slots[idx].key);
            self.slots[idx].key = key.clone();
            self.slots[idx].value = value;
            idx
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn attach_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_bounded_eviction() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        assert!(c.get(&1).is_none());
        c.put(1, "one");
        c.put(2, "two");
        assert_eq!(c.get(&1), Some("one"));
        c.put(3, "three"); // evicts 2 (LRU after the get refreshed 1)
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some("one"));
        assert_eq!(c.get(&3), Some("three"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn put_refreshes_recency_and_overwrites() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        c.put(1, 11); // 1 is now MRU with a new value
        c.put(3, 30); // evicts 2
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&3), Some(30));
    }

    #[test]
    fn zero_capacity_means_disabled_not_panic_or_growth() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        assert_eq!(c.capacity(), 0);
        assert_eq!(c.get(&1), None, "get on a disabled cache misses");
        for i in 0..100 {
            c.put(i, i * 10);
            assert!(c.is_empty(), "put #{i} must be a no-op");
            assert_eq!(c.len(), 0);
        }
        assert_eq!(c.get(&1), None, "nothing was ever stored");
        // Re-putting the same key still stores nothing (the overwrite
        // path must not bypass the capacity guard).
        c.put(7, 70);
        c.put(7, 71);
        assert_eq!(c.get(&7), None);
    }

    #[test]
    fn capacity_one_is_a_single_slot_with_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        assert_eq!(c.get(&1), None);
        c.put(1, 10);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.len(), 1);
        c.put(2, 20); // evicts 1, the only resident
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some(20));
        assert_eq!(c.len(), 1, "len never exceeds capacity 1");
        c.put(2, 21); // overwrite in place, no eviction
        assert_eq!(c.get(&2), Some(21));
        c.put(3, 30);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&3), Some(30));
    }

    #[test]
    fn matches_reference_model_on_random_trace() {
        // Differential test against a naive Vec-based LRU model.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let cap = 8;
        let mut real: LruCache<u64, u64> = LruCache::new(cap);
        let mut model: Vec<(u64, u64)> = Vec::new(); // front = MRU
        for step in 0..5000u64 {
            let key = rng.random_range(0..24u64);
            if rng.random::<bool>() {
                let want = model
                    .iter()
                    .position(|&(k, _)| k == key)
                    .map(|i| model.remove(i))
                    .inspect(|e| model.insert(0, *e))
                    .map(|(_, v)| v);
                assert_eq!(real.get(&key), want, "step {step} get {key}");
            } else {
                if let Some(i) = model.iter().position(|&(k, _)| k == key) {
                    model.remove(i);
                }
                model.insert(0, (key, step));
                model.truncate(cap);
                real.put(key, step);
            }
            assert_eq!(real.len(), model.len(), "step {step}");
        }
    }
}
