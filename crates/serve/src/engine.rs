//! The batched inference engine.
//!
//! Requests flow through four stages:
//!
//! 1. **Admission** — a bounded queue (capacity [`ServeConfig::queue_cap`])
//!    pulls parsed requests from the reader. When the queue is full the
//!    engine stops reading until a window drains: backpressure reaches
//!    the producer as an unread pipe instead of unbounded memory.
//! 2. **Cache probe** — each admitted window of up to
//!    [`ServeConfig::window`] requests is checked against the LRU
//!    surrogate cache ([`crate::cache`]); hits never touch the model.
//! 3. **Batch predict** — cache misses are *deduplicated by canonical
//!    key* (a window full of the same config costs one forward pass),
//!    assembled into one prediction [`Table`], and run through the model
//!    in matrix form, sharded across a scoped worker pool.
//! 4. **Ordered response** — predictions are written back by request
//!    index, so output order equals input order and is byte-identical
//!    for any worker count: sharding is by row range, every row's
//!    arithmetic is independent of its batch neighbours, and the f64 →
//!    JSON rendering is the shortest round-trip form.
//!
//! The engine never retrains anything — a replay of 10⁴ requests against
//! a cached-heavy workload is pure lookups plus a handful of forward
//! passes, which is the economic argument of the paper made operational.

use crate::cache::LruCache;
use crate::compiled::{compile_with, CompiledModel, Precision};
use crate::core::predict_window;
use crate::request::{parse_request_line, Request};
use fault::{Error, Result};
use mlmodels::ModelArtifact;
use std::io::{BufRead, Write};
use std::time::Instant;
use telemetry::json::{self, JsonObject};
use telemetry::Histogram;

/// Engine tuning knobs. Defaults fit the CI smoke workload; the CLI maps
/// `--window/--queue/--workers/--cache` onto them.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission-window size: requests predicted per batch.
    pub window: usize,
    /// Admission-queue capacity; the reader stalls when it is full.
    pub queue_cap: usize,
    /// Worker threads for batch prediction (1 = in-line).
    pub workers: usize,
    /// LRU cache capacity in distinct configurations.
    pub cache_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            window: 256,
            queue_cap: 1024,
            workers: std::thread::available_parallelism().map_or(1, usize::from),
            cache_cap: 4096,
        }
    }
}

impl ServeConfig {
    fn validated(&self) -> Result<()> {
        if self.window == 0 {
            return Err(Error::invalid("serve window must be at least 1"));
        }
        if self.queue_cap < self.window {
            return Err(Error::invalid(format!(
                "serve queue capacity {} is smaller than the window {}",
                self.queue_cap, self.window
            )));
        }
        if self.workers == 0 {
            return Err(Error::invalid("serve worker count must be at least 1"));
        }
        Ok(())
    }
}

/// Counters and latency summary for one replay.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Requests served.
    pub requests: u64,
    /// Requests answered from the LRU cache.
    pub cache_hits: u64,
    /// Requests that missed the cache.
    pub cache_misses: u64,
    /// Distinct configurations actually predicted (misses after
    /// in-window dedup).
    pub predictions: u64,
    /// Prediction batches run.
    pub batches: u64,
    /// Highest admission-queue depth observed (the queue-depth
    /// high-water mark the soak gate reads).
    pub max_queue_depth: u64,
    /// Requests load-shed at admission with a typed `Overloaded`
    /// response. Always 0 for the one-shot replay engine, whose
    /// backpressure stalls the reader instead of shedding.
    pub shed: u64,
    /// Admitted requests whose deadline expired before the predict path
    /// reached them; each got a typed `DeadlineExceeded` response and
    /// no (late) prediction — the fail-closed contract.
    pub deadline_misses: u64,
    /// Cache misses rejected while the daemon was in degraded
    /// (cache-hits-only) mode, each with a typed error response.
    pub degraded_rejects: u64,
    /// Median request latency (admission → response), milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile request latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Worst single request latency, milliseconds.
    pub max_ms: f64,
    /// End-to-end replay throughput, requests per second.
    pub requests_per_sec: f64,
}

impl ServeStats {
    /// Render as a single JSON object (the CLI's `serve` summary line,
    /// and the artifact the soak gate and `perf-report` both read).
    /// Existing fields keep their exact names and rendering; the
    /// daemon-era counters (`shed`, `deadline_misses`,
    /// `degraded_rejects`) are appended after `max_queue_depth`.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .uint("requests", self.requests)
            .uint("cache_hits", self.cache_hits)
            .uint("cache_misses", self.cache_misses)
            .uint("predictions", self.predictions)
            .uint("batches", self.batches)
            .uint("max_queue_depth", self.max_queue_depth)
            .uint("shed", self.shed)
            .uint("deadline_misses", self.deadline_misses)
            .uint("degraded_rejects", self.degraded_rejects)
            .num("p50_ms", self.p50_ms)
            .num("p95_ms", self.p95_ms)
            .num("p99_ms", self.p99_ms)
            .num("max_ms", self.max_ms)
            .num("requests_per_sec", self.requests_per_sec)
            .finish()
    }
}

struct Admitted {
    index: u64,
    request: Request,
    admitted_at: Instant,
}

/// The batched prediction engine: a compiled artifact, its cache, and
/// the replay loop.
pub struct Engine {
    model: CompiledModel,
    config: ServeConfig,
    cache: LruCache<Vec<u64>, f64>,
}

impl Engine {
    /// Build an engine over a loaded artifact, compiling it into its
    /// topology-specialized f64 predictor.
    pub fn new(artifact: ModelArtifact, config: ServeConfig) -> Result<Engine> {
        Self::with_precision(artifact, config, Precision::F64)
    }

    /// Build an engine serving at the given precision. [`Precision::F32`]
    /// is verified against the f64 path at compile time and rejected
    /// with a typed error if it exceeds the documented error bound.
    pub fn with_precision(
        artifact: ModelArtifact,
        config: ServeConfig,
        precision: Precision,
    ) -> Result<Engine> {
        config.validated()?;
        let model = compile_with(artifact, precision)?;
        let cache = LruCache::new(config.cache_cap);
        Ok(Engine {
            model,
            config,
            cache,
        })
    }

    /// The artifact being served.
    pub fn artifact(&self) -> &ModelArtifact {
        &self.model.artifact
    }

    /// Serve one window of admitted requests, appending ordered response
    /// lines to `out`. The probe/dedup/predict work is the shared
    /// [`crate::core::predict_window`]; this wrapper owns replay
    /// bookkeeping and the ordered emit.
    fn serve_window(
        &mut self,
        window: &[Admitted],
        out: &mut dyn Write,
        stats: &mut ServeStats,
        latency: &mut Histogram,
    ) -> Result<()> {
        let requests: Vec<&Request> = window.iter().map(|adm| &adm.request).collect();
        let outcome = predict_window(&self.model, &mut self.cache, self.config.workers, &requests)?;
        stats.cache_hits += outcome.hits;
        stats.cache_misses += window.len() as u64 - outcome.hits;
        stats.predictions += outcome.predictions;
        stats.batches += outcome.batches;
        // Emit responses in admission order.
        for (adm, &(prediction, cached)) in window.iter().zip(&outcome.results) {
            let line = JsonObject::new()
                .str("id", &adm.request.id)
                .raw("prediction", &json::number(prediction))
                .bool("cached", cached)
                .finish();
            out.write_all(line.as_bytes())
                .and_then(|()| out.write_all(b"\n"))
                .map_err(|e| Error::io("<serve output>", e))?;
            latency.observe_ns(adm.admitted_at.elapsed());
            stats.requests += 1;
        }
        Ok(())
    }

    /// Replay a JSONL request stream, writing one ordered JSONL response
    /// line per request. Invalid request lines abort the replay with a
    /// typed error (exit code 2 at the CLI).
    pub fn serve(&mut self, input: &mut dyn BufRead, out: &mut dyn Write) -> Result<ServeStats> {
        let _span = telemetry::span!(
            "serve/replay",
            model = self.model.artifact.model.kind.abbrev()
        );
        let started = Instant::now();
        let mut stats = ServeStats::default();
        let mut latency = Histogram::new();
        let mut queue: std::collections::VecDeque<Admitted> =
            std::collections::VecDeque::with_capacity(self.config.queue_cap);
        let mut line = String::new();
        let mut line_no = 0u64;
        let mut eof = false;
        while !eof || !queue.is_empty() {
            // Admit until the queue is full or the reader runs dry —
            // the bounded queue is what pushes back on the producer.
            while !eof && queue.len() < self.config.queue_cap {
                line.clear();
                let n = input
                    .read_line(&mut line)
                    .map_err(|e| Error::io("<serve input>", e))?;
                if n == 0 {
                    eof = true;
                    break;
                }
                line_no += 1;
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                let request = parse_request_line(&self.model.artifact.schema, trimmed, line_no)?;
                queue.push_back(Admitted {
                    index: line_no,
                    request,
                    admitted_at: Instant::now(),
                });
            }
            stats.max_queue_depth = stats.max_queue_depth.max(queue.len() as u64);
            telemetry::gauge_max("serve/queue_depth", queue.len() as f64);
            if queue.is_empty() {
                break;
            }
            let take = self.config.window.min(queue.len());
            let window: Vec<Admitted> = queue.drain(..take).collect();
            debug_assert!(window.windows(2).all(|w| w[0].index < w[1].index));
            self.serve_window(&window, out, &mut stats, &mut latency)?;
        }
        let elapsed = started.elapsed().as_secs_f64();
        // The streaming histogram replaces the old sort-the-Vec
        // percentile pass: O(1) memory for any replay length, and the
        // same bucket layout the manifest and perf-report consume.
        let ms = |ns: u64| ns as f64 / 1e6;
        stats.p50_ms = ms(latency.quantile(0.50));
        stats.p95_ms = ms(latency.quantile(0.95));
        stats.p99_ms = ms(latency.quantile(0.99));
        stats.max_ms = ms(latency.max());
        stats.requests_per_sec = if elapsed > 0.0 {
            stats.requests as f64 / elapsed
        } else {
            0.0
        };
        telemetry::gauge_set("serve/p50_ms", stats.p50_ms);
        telemetry::gauge_set("serve/p95_ms", stats.p95_ms);
        telemetry::gauge_set("serve/p99_ms", stats.p99_ms);
        telemetry::gauge_set("serve/max_ms", stats.max_ms);
        telemetry::gauge_set("serve/requests_per_sec", stats.requests_per_sec);
        telemetry::hist_merge("serve/latency_ns", &latency);
        Ok(stats)
    }
}

/// Convenience entry point: replay `input` (JSONL request text) against
/// an artifact and return `(response JSONL, stats)`.
pub fn serve_jsonl(
    artifact: ModelArtifact,
    config: ServeConfig,
    input: &str,
) -> Result<(String, ServeStats)> {
    let mut engine = Engine::new(artifact, config)?;
    let mut out = Vec::new();
    let stats = engine.serve(&mut input.as_bytes(), &mut out)?;
    let text = String::from_utf8(out).map_err(|e| {
        Error::artifact("<serve output>", format!("non-UTF-8 response buffer: {e}"))
    })?;
    Ok((text, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlmodels::{train, ModelKind, Table};

    fn artifact(kind: ModelKind) -> ModelArtifact {
        let n = 96;
        let speeds: Vec<f64> = (0..n).map(|i| 1000.0 + (i % 8) as f64 * 200.0).collect();
        let smt: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let bpred: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| 0.01 * speeds[i] + if smt[i] { 1.5 } else { 0.0 } + bpred[i] as f64)
            .collect();
        let mut t = Table::new();
        t.add_numeric("speed", speeds)
            .add_flag("smt", smt)
            .add_categorical(
                "bpred",
                bpred,
                vec!["perfect".into(), "bimodal".into(), "gshare".into()],
            )
            .set_target(y);
        ModelArtifact::from_training(train(kind, &t, 11), &t)
    }

    fn requests(n: usize, distinct: usize) -> String {
        let mut s = String::new();
        for i in 0..n {
            let d = i % distinct;
            s.push_str(&format!(
                "{{\"id\":\"q{i}\",\"speed\":{},\"smt\":{},\"bpred\":\"{}\"}}\n",
                1000 + (d % 8) * 200,
                d.is_multiple_of(2),
                ["perfect", "bimodal", "gshare"][d % 3],
            ));
        }
        s
    }

    fn cfg(workers: usize) -> ServeConfig {
        ServeConfig {
            window: 16,
            queue_cap: 64,
            workers,
            cache_cap: 256,
        }
    }

    #[test]
    fn replay_is_ordered_and_cache_heavy_workloads_hit() {
        let input = requests(500, 10);
        let (out, stats) = serve_jsonl(artifact(ModelKind::LrB), cfg(2), &input).expect("serve");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 500);
        for (i, l) in lines.iter().enumerate() {
            assert!(l.contains(&format!("\"id\":\"q{i}\"")), "line {i}: {l}");
        }
        assert_eq!(stats.requests, 500);
        assert_eq!(stats.cache_hits + stats.cache_misses, 500);
        assert!(stats.cache_hits >= 480, "10 distinct configs: {stats:?}");
        assert_eq!(stats.predictions, 10);
    }

    #[test]
    fn output_is_byte_identical_across_worker_counts() {
        let input = requests(200, 40);
        for kind in [ModelKind::LrE, ModelKind::NnQ] {
            let (one, _) = serve_jsonl(artifact(kind), cfg(1), &input).expect("1 worker");
            for workers in [2, 3, 8] {
                let (many, _) =
                    serve_jsonl(artifact(kind), cfg(workers), &input).expect("N workers");
                assert_eq!(one, many, "{} with {workers} workers", kind.abbrev());
            }
        }
    }

    #[test]
    fn predictions_match_direct_model_calls() {
        let art = artifact(ModelKind::NnS);
        let mut t = Table::new();
        t.add_numeric("speed", vec![1400.0])
            .add_flag("smt", vec![true])
            .add_categorical(
                "bpred",
                vec![2],
                vec!["perfect".into(), "bimodal".into(), "gshare".into()],
            )
            .set_target(vec![0.0]);
        let direct = art.model.predict(&t)[0];
        let input = "{\"speed\":1400,\"smt\":true,\"bpred\":\"gshare\"}\n";
        let (out, _) = serve_jsonl(art, cfg(1), input).expect("serve");
        assert!(
            out.contains(&format!("\"prediction\":{}", json::number(direct))),
            "{out}"
        );
    }

    #[test]
    fn within_window_duplicates_predict_once() {
        let art = artifact(ModelKind::LrE);
        let mut input = String::new();
        for i in 0..16 {
            input.push_str(&format!(
                "{{\"id\":\"{i}\",\"speed\":1200,\"smt\":false,\"bpred\":\"bimodal\"}}\n"
            ));
        }
        let (_, stats) = serve_jsonl(art, cfg(1), &input).expect("serve");
        assert_eq!(stats.predictions, 1, "{stats:?}");
        assert_eq!(stats.cache_misses, 16);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn invalid_request_aborts_with_typed_error() {
        let art = artifact(ModelKind::LrE);
        let input = "{\"speed\":1200,\"smt\":false,\"bpred\":\"bimodal\"}\n{\"speed\":\"bad\"}\n";
        let err = serve_jsonl(art, cfg(1), input).expect_err("invalid");
        assert_eq!(err.kind(), "invalid");
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn config_validation_rejects_degenerate_knobs() {
        let art = artifact(ModelKind::LrE);
        for bad in [
            ServeConfig {
                window: 0,
                ..cfg(1)
            },
            ServeConfig {
                queue_cap: 1,
                ..cfg(1)
            },
            ServeConfig {
                workers: 0,
                ..cfg(1)
            },
        ] {
            let err = Engine::new(art.clone(), bad).err().expect("rejected");
            assert_eq!(err.kind(), "invalid");
        }
    }

    #[test]
    fn queue_depth_is_bounded_by_capacity() {
        let input = requests(1000, 5);
        let (_, stats) = serve_jsonl(artifact(ModelKind::LrB), cfg(4), &input).expect("serve");
        assert!(
            stats.max_queue_depth <= 64,
            "queue exceeded capacity: {stats:?}"
        );
        assert!(stats.max_queue_depth > 0);
    }

    #[test]
    fn latency_summary_is_ordered_and_rendered() {
        let input = requests(300, 12);
        let (_, stats) = serve_jsonl(artifact(ModelKind::LrB), cfg(2), &input).expect("serve");
        assert!(stats.p50_ms > 0.0, "{stats:?}");
        assert!(stats.p95_ms >= stats.p50_ms, "{stats:?}");
        assert!(stats.p99_ms >= stats.p95_ms, "{stats:?}");
        assert!(stats.max_ms >= stats.p99_ms, "{stats:?}");
        let json = stats.to_json();
        for key in ["\"p50_ms\":", "\"p95_ms\":", "\"p99_ms\":", "\"max_ms\":"] {
            assert!(json.contains(key), "{json}");
        }
    }

    #[test]
    fn blank_lines_are_skipped_not_errors() {
        let art = artifact(ModelKind::LrE);
        let input = "\n{\"speed\":1200,\"smt\":false,\"bpred\":\"bimodal\"}\n\n";
        let (out, stats) = serve_jsonl(art, cfg(1), input).expect("serve");
        assert_eq!(out.lines().count(), 1);
        assert_eq!(stats.requests, 1);
    }
}
