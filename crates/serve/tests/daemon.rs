//! Fault-injected integration tests for the serve daemon.
//!
//! The unit tests in `daemon.rs` pin the request-loop semantics; these
//! tests drive the daemon through `dse::faultinject`'s adversarial
//! helpers — torn frames, garbage bytes, on-disk artifact corruption,
//! slow consumers — and pin the *termination contract*: every exit path
//! maps to its documented exit code, and every admitted frame gets
//! exactly one typed response no matter what the injector does.

use std::io::{BufRead, BufReader, Read, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dse::faultinject;
use mlmodels::{train, ModelArtifact, ModelKind, Table};
use serve::{Daemon, DaemonConfig, Registry, RegistryConfig};

fn write_artifact(dir: &std::path::Path, file: &str) -> String {
    let n = 40;
    let xs: Vec<f64> = (0..n).map(|i| 100.0 + (i % 5) as f64 * 25.0).collect();
    let y: Vec<f64> = xs.iter().map(|x| 2.0 * x + 3.0).collect();
    let mut t = Table::new();
    t.add_numeric("x", xs).set_target(y);
    let art = ModelArtifact::from_training(train(ModelKind::LrE, &t, 3), &t);
    let path = dir.join(file).to_string_lossy().into_owned();
    art.save(&path).expect("save artifact");
    path
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("perfpredict-daemon-it-{tag}"));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

fn reg_with_model(dir: &std::path::Path) -> (Registry, String) {
    let path = write_artifact(dir, "m.ppmodel");
    let mut reg = Registry::new(RegistryConfig {
        cache_cap: 64,
        load_retries: 0,
        backoff_ms: 1,
    });
    reg.load("m", &path).expect("load artifact");
    (reg, path)
}

fn cfg() -> DaemonConfig {
    DaemonConfig {
        window: 8,
        queue_cap: 64,
        workers: 2,
        deadline_ms: None,
        max_frame_bytes: 4096,
        default_model: None,
    }
}

fn run_daemon(
    config: DaemonConfig,
    registry: Registry,
    input: Vec<u8>,
) -> (fault::Result<serve::DaemonStats>, Vec<String>) {
    let mut daemon = Daemon::new(config, registry).expect("daemon config");
    let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let result = daemon.run(std::io::Cursor::new(input), Arc::clone(&out));
    let bytes = out
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .clone();
    let lines = String::from_utf8(bytes)
        .expect("response stream is UTF-8")
        .lines()
        .map(String::from)
        .collect();
    (result, lines)
}

/// Garbage frames and a torn final frame each get a typed `invalid`
/// response; the stream still ends with a clean EOF (exit code 0).
#[test]
fn injected_garbage_and_torn_tail_get_typed_responses_then_clean_eof() {
    let dir = tmpdir("garbage");
    let (reg, _) = reg_with_model(&dir);
    let text = format!(
        "{{\"id\":\"q1\",\"x\":150}}\n{}\n{{\"id\":\"q2\",\"x\":175}}\n{{\"id\":\"q3\",\"x\":200}}\n",
        faultinject::garbage_frame(7)
    );
    // Cut the final frame mid-line: the classic torn write at the tail.
    let input = faultinject::truncate_final_frame(&text, 11);
    assert!(
        !input.ends_with('\n'),
        "injector must leave a partial final line"
    );
    let (result, lines) = run_daemon(cfg(), reg, input.into_bytes());
    let stats = result.expect("injected client faults never kill the daemon");
    assert_eq!(lines.len(), 4, "one response per frame: {lines:?}");
    assert!(lines[0].contains("\"prediction\":"), "{}", lines[0]);
    assert!(lines[1].contains("\"error\":\"invalid\""), "{}", lines[1]);
    assert!(lines[2].contains("\"prediction\":"), "{}", lines[2]);
    assert!(lines[3].contains("\"error\":\"invalid\""), "{}", lines[3]);
    assert_eq!(stats.requests, 2, "two well-formed predicts served");
    assert_eq!(stats.invalid, 2, "garbage + torn tail each counted");
}

/// Corrupting the artifact on disk then reloading quarantines the sole
/// version; with nothing left to serve the daemon fails closed with the
/// documented all-quarantined exit code (8), not a hang or a panic.
#[test]
fn corrupt_reload_of_only_model_terminates_with_exit_code_8() {
    let dir = tmpdir("corrupt-reload");
    let (reg, path) = reg_with_model(&dir);
    faultinject::corrupt_artifact_bytes(&path, 24, 3).expect("corrupt artifact");
    let input = b"{\"id\":\"q1\",\"x\":150}\n{\"id\":\"c1\",\"op\":\"reload\",\"model\":\"m\"}\n";
    let (result, lines) = run_daemon(cfg(), reg, input.to_vec());
    let err = result.expect_err("all versions quarantined must be fatal");
    assert_eq!(err.kind(), "quarantined");
    assert_eq!(err.exit_code(), 8);
    assert!(
        lines.iter().any(|l| l.contains("\"prediction\":")),
        "predict admitted before the reload is still answered: {lines:?}"
    );
}

/// An over-long frame is a protocol violation: typed `invalid` error,
/// exit code 2. The daemon does not try to resynchronise mid-stream.
#[test]
fn oversized_frame_terminates_with_exit_code_2() {
    let dir = tmpdir("oversized");
    let (reg, _) = reg_with_model(&dir);
    let config = DaemonConfig {
        max_frame_bytes: 64,
        ..cfg()
    };
    let huge = format!("{{\"id\":\"q1\",\"x\":{}}}\n", "1".repeat(200));
    let (result, _) = run_daemon(config, reg, huge.into_bytes());
    let err = result.expect_err("oversized frame is a protocol violation");
    assert_eq!(err.kind(), "invalid");
    assert_eq!(err.exit_code(), 2);
}

/// A transport that cannot even be opened maps to the Io exit code (3).
#[test]
fn unbindable_socket_terminates_with_exit_code_3() {
    let dir = tmpdir("badsock");
    let (reg, _) = reg_with_model(&dir);
    let mut daemon = Daemon::new(cfg(), reg).expect("daemon config");
    let missing = dir.join("no-such-dir").join("d.sock");
    let err = daemon
        .run_socket(&missing.to_string_lossy())
        .expect_err("bind into a missing directory must fail");
    assert_eq!(err.kind(), "io");
    assert_eq!(err.exit_code(), 3);
}

/// Socket mode end to end: connect, predict, reconnect (EOF keeps the
/// daemon alive), then shut down cleanly from the second connection.
#[test]
fn socket_mode_survives_reconnect_and_shuts_down_cleanly() {
    let dir = tmpdir("sock");
    let (reg, _) = reg_with_model(&dir);
    let sock = dir.join("daemon.sock").to_string_lossy().into_owned();
    let server_sock = sock.clone();
    let server = std::thread::spawn(move || {
        let mut daemon = Daemon::new(cfg(), reg).expect("daemon config");
        daemon.run_socket(&server_sock)
    });
    let connect = || {
        for _ in 0..200 {
            if let Ok(s) = std::os::unix::net::UnixStream::connect(&sock) {
                return s;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("daemon socket never came up at {sock}");
    };

    // Connection 1: one predict, then drop the stream (EOF).
    let mut c1 = connect();
    c1.write_all(b"{\"id\":\"q1\",\"x\":150}\n")
        .expect("send q1");
    let mut r1 = BufReader::new(c1.try_clone().expect("clone c1"));
    let mut line = String::new();
    r1.read_line(&mut line).expect("read q1 response");
    assert!(
        line.contains("\"id\":\"q1\"") && line.contains("\"prediction\":"),
        "{line}"
    );
    drop(r1);
    drop(c1);

    // Connection 2: the daemon accepted a new client after EOF; a
    // shutdown frame ends the whole daemon, not just the connection.
    let mut c2 = connect();
    c2.write_all(b"{\"id\":\"q2\",\"x\":150}\n{\"id\":\"c1\",\"op\":\"shutdown\"}\n")
        .expect("send q2 + shutdown");
    let mut rest = String::new();
    BufReader::new(c2)
        .read_to_string(&mut rest)
        .expect("drain connection 2");
    assert!(rest.contains("\"id\":\"q2\""), "{rest}");
    assert!(rest.contains("\"op\":\"shutdown\""), "{rest}");

    let stats = server
        .join()
        .expect("server thread")
        .expect("shutdown frame is a clean exit");
    assert_eq!(stats.requests, 2, "stats aggregate across connections");
    assert_eq!(stats.control_ops, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A consumer that drains responses slowly backs the queue up; excess
/// frames are shed with typed `overloaded` responses — conservation
/// holds (every frame answered exactly once), nothing is dropped
/// silently, and the queue never exceeds its bound.
#[test]
fn slow_consumer_sheds_typed_overloaded_responses() {
    let dir = tmpdir("slow");
    let (reg, _) = reg_with_model(&dir);
    let config = DaemonConfig {
        window: 2,
        queue_cap: 4,
        ..cfg()
    };
    let total = 80u64;
    let mut input = String::new();
    for i in 0..total {
        input.push_str(&format!(
            "{{\"id\":\"q{i}\",\"x\":{}}}\n",
            100 + (i % 5) * 25
        ));
    }
    let mut daemon = Daemon::new(config, reg).expect("daemon config");
    let out = Arc::new(Mutex::new(faultinject::SlowWriter::new(
        Vec::new(),
        Duration::from_millis(2),
    )));
    let stats = daemon
        .run(std::io::Cursor::new(input.into_bytes()), Arc::clone(&out))
        .expect("overload is shed, never fatal");
    let bytes = out
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .inner()
        .clone();
    let lines: Vec<String> = String::from_utf8(bytes)
        .expect("response stream is UTF-8")
        .lines()
        .map(String::from)
        .collect();
    assert_eq!(
        lines.len() as u64,
        total,
        "exactly one typed response per frame"
    );
    assert!(stats.shed > 0, "slow consumer must force sheds: {stats:?}");
    let overloaded = lines
        .iter()
        .filter(|l| l.contains("\"error\":\"overloaded\""))
        .count() as u64;
    assert_eq!(
        overloaded,
        stats.shed + stats.degraded_rejects,
        "every shed surfaced as a typed response: {stats:?}"
    );
    assert_eq!(
        stats.requests + stats.shed + stats.degraded_rejects,
        total,
        "conservation: served + rejected == admitted frames: {stats:?}"
    );
    assert!(
        stats.max_queue_depth <= 4,
        "queue bound respected: {stats:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
