//! Property tests for the opt-in f32 inference mode: for **every**
//! [`ModelKind`], single-precision predictions stay within the
//! documented [`serve::F32_REL_BOUND`] relative error of the f64 path
//! across randomly drawn configurations — including values *between*
//! the training grid points, which the compile-time probe (restricted
//! to observed domains) never saw.

use proptest::prelude::*;
use serve::{compile_with, CompiledModel, Precision, Request, F32_REL_BOUND};

use mlmodels::{train, ModelArtifact, ModelKind, Table};
use std::sync::OnceLock;

fn training_table() -> Table {
    let n = 72;
    let speeds: Vec<f64> = (0..n).map(|i| 1000.0 + (i % 12) as f64 * 250.0).collect();
    let mems: Vec<f64> = (0..n)
        .map(|i| [266.0, 333.0, 400.0, 533.0][i % 4])
        .collect();
    let smt: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    let bpred: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            0.01 * speeds[i] * (1.0 + 0.1 * (mems[i] / 400.0).ln())
                + if smt[i] { 1.5 } else { 0.0 }
                + bpred[i] as f64 * 0.3
        })
        .collect();
    let mut t = Table::new();
    t.add_numeric("speed", speeds)
        .add_numeric("mem_freq", mems)
        .add_flag("smt", smt)
        .add_categorical(
            "bpred",
            bpred,
            vec!["perfect".into(), "bimodal".into(), "gshare".into()],
        )
        .set_target(y);
    t
}

/// One f32-compiled model per [`ModelKind`], trained once and shared
/// across cases (training dominates; prediction is the thing under test).
fn models() -> &'static Vec<(ModelKind, CompiledModel)> {
    static MODELS: OnceLock<Vec<(ModelKind, CompiledModel)>> = OnceLock::new();
    MODELS.get_or_init(|| {
        let t = training_table();
        ModelKind::ALL
            .iter()
            .map(|&kind| {
                let art = ModelArtifact::from_training(train(kind, &t, 13), &t);
                let compiled = compile_with(art, Precision::F32)
                    .unwrap_or_else(|e| panic!("{} fails the f32 probe: {e}", kind.abbrev()));
                (kind, compiled)
            })
            .collect()
    })
}

fn request(model: &CompiledModel, speed: f64, mem: f64, smt: bool, bpred: &str) -> Request {
    let line =
        format!("{{\"speed\":{speed},\"mem_freq\":{mem},\"smt\":{smt},\"bpred\":\"{bpred}\"}}");
    serve::parse_request_line(&model.artifact.schema, &line, 1).expect("valid request")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Off-grid configurations: numeric values drawn from continuous
    /// ranges covering (and slightly overhanging) the training domain.
    #[test]
    fn f32_mode_is_bounded_error_for_every_model_kind(
        speed in 900.0f64..3900.0,
        mem in 250.0f64..550.0,
        smt in any::<bool>(),
        bpred_ix in prop::sample::select(vec![0usize, 1, 2]),
    ) {
        let bpred = ["perfect", "bimodal", "gshare"][bpred_ix];
        for (kind, model) in models() {
            let req = request(model, speed, mem, smt, bpred);
            let refs = [&req];
            let exact = model.predict_requests_f64(&refs)[0];
            let approx = model.predict_requests(&refs)[0];
            prop_assert!(
                (exact - approx).abs() <= F32_REL_BOUND * exact.abs().max(1.0),
                "{}: speed={speed} mem={mem} smt={smt} bpred={bpred}: f64 {exact} vs f32 {approx}",
                kind.abbrev()
            );
        }
    }
}

/// The compile-time probe itself accepts every model family on this
/// well-scaled problem (the `models()` initializer would panic
/// otherwise), and each compiled model reports its precision.
#[test]
fn every_model_kind_passes_the_f32_probe() {
    for (kind, model) in models() {
        assert_eq!(
            model.precision(),
            Precision::F32,
            "{} should serve in f32",
            kind.abbrev()
        );
    }
}
