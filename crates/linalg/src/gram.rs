//! Incremental normal-equations engine for subset-selection regression.
//!
//! Stepwise/forward/backward selection repeatedly solves least-squares
//! problems that differ by a single column. Refitting from the design
//! matrix costs O(n·k²) per candidate; this module instead computes the
//! augmented Gram matrix `[1 X]ᵀ[1 X]` and moment vector `[1 X]ᵀy` once
//! per selection run ([`NormalEq`]) and evaluates every candidate
//! add/drop against a maintained Cholesky factor of the active
//! submatrix ([`ActiveCholesky`]) in O(k²) — independent of the row
//! count. Cross-validation folds reuse the same Gram: a fold's training
//! Gram is the full Gram minus the held-out rows' outer products
//! ([`NormalEq::minus_rows`]), and per-fold feature scaling is applied
//! as a congruence transform ([`NormalEq::scaled`]) without touching
//! the rows again.
//!
//! Numerical contract (enforced by tests here and by proptests in
//! `mlmodels`): for well-conditioned active sets the engine's residual
//! sums of squares and coefficients agree with a from-scratch QR or
//! Cholesky fit to ~1e-10, and ambiguous pivots (near-collinear
//! candidates) are reported as [`AddScore::Uncertain`] so callers can
//! defer to the from-scratch oracle instead of trusting a noisy
//! downdate.

use crate::matrix::Matrix;
use fault::{Error, Result};

/// Relative pivot threshold below which an added column is numerically
/// indistinguishable from a linear combination of the active set. The
/// decision is delegated to the caller's from-scratch oracle rather
/// than decided here, so the incremental path never changes which
/// candidates a selection run accepts.
const PIVOT_REL_TOL: f64 = 1e-8;

/// Precomputed sufficient statistics for least squares on `[1 X]`:
/// the augmented Gram matrix, moment vector, `yᵀy`, and row count.
/// Index 0 is the intercept column; predictor `j` lives at index `j+1`.
#[derive(Debug, Clone)]
pub struct NormalEq {
    /// `(p+1) × (p+1)` augmented Gram matrix `[1 X]ᵀ[1 X]`.
    g: Matrix,
    /// `(p+1)` moment vector `[1 X]ᵀ y`.
    c: Vec<f64>,
    /// `yᵀy`.
    yty: f64,
    /// Number of rows accumulated.
    n: usize,
}

impl NormalEq {
    /// Accumulate the sufficient statistics from a design matrix and
    /// target vector. Accumulation is row-major and index-ascending,
    /// matching `Matrix::gram`/`t_matvec` on the explicit augmented
    /// design, so both routes produce bitwise-identical statistics.
    pub fn from_design(x: &Matrix, y: &[f64]) -> NormalEq {
        let (n, p) = (x.rows(), x.cols());
        debug_assert_eq!(n, y.len(), "design rows must match target length");
        let mut g = Matrix::zeros(p + 1, p + 1);
        let mut c = vec![0.0; p + 1];
        let mut yty = 0.0;
        let mut aug = vec![0.0; p + 1];
        for (i, &yi) in y.iter().enumerate().take(n) {
            aug[0] = 1.0;
            aug[1..].copy_from_slice(x.row(i));
            for j in 0..=p {
                let gj = g.row_mut(j);
                for (k, &ak) in aug.iter().enumerate().skip(j) {
                    gj[k] += aug[j] * ak;
                }
            }
            for (cj, &aj) in c.iter_mut().zip(aug.iter()) {
                *cj += aj * yi;
            }
            yty += yi * yi;
        }
        // Mirror the upper triangle exactly, as Matrix::gram does.
        for j in 0..=p {
            for k in 0..j {
                g[(j, k)] = g[(k, j)];
            }
        }
        NormalEq { g, c, yty, n }
    }

    /// Like [`NormalEq::from_design`] but rejects non-finite inputs
    /// with [`Error::DegenerateData`], matching the validation the
    /// from-scratch solvers perform.
    pub fn try_from_design(x: &Matrix, y: &[f64]) -> Result<NormalEq> {
        if x.rows() != y.len() {
            return Err(Error::degenerate(format!(
                "design has {} rows but target has {}",
                x.rows(),
                y.len()
            )));
        }
        for (i, yi) in y.iter().enumerate() {
            if !yi.is_finite() || x.row(i).iter().any(|v| !v.is_finite()) {
                return Err(Error::degenerate(format!("non-finite value in row {i}")));
            }
        }
        Ok(NormalEq::from_design(x, y))
    }

    /// Sufficient statistics with the listed rows' contributions
    /// subtracted — the Gram/moments of the design restricted to the
    /// complement row set. `x`/`y` must be the same data the full
    /// statistics were accumulated from. Used to derive a CV fold's
    /// training Gram from the full-table Gram without re-scanning the
    /// training rows.
    pub fn minus_rows(&self, x: &Matrix, y: &[f64], drop_rows: &[usize]) -> NormalEq {
        let p = x.cols();
        debug_assert_eq!(self.g.rows(), p + 1, "design width must match statistics");
        let mut out = self.clone();
        let mut aug = vec![0.0; p + 1];
        for &i in drop_rows {
            aug[0] = 1.0;
            aug[1..].copy_from_slice(x.row(i));
            for j in 0..=p {
                let gj = out.g.row_mut(j);
                for (k, &ak) in aug.iter().enumerate() {
                    gj[k] -= aug[j] * ak;
                }
            }
            for (cj, &aj) in out.c.iter_mut().zip(aug.iter()) {
                *cj -= aj * y[i];
            }
            out.yty -= y[i] * y[i];
        }
        out.n -= drop_rows.len();
        out
    }

    /// Statistics after the affine feature map `u_j = (v_j − min_j) / range_j`
    /// (the per-fold min–max scaling preprocessing applies). The scaled
    /// augmented design is `[1 U] = [1 V]·A` with `A` unit-upper-left,
    /// so the scaled Gram is the congruence `AᵀGA` and the scaled
    /// moments are `Aᵀc` — O(p²) instead of O(n·p²).
    ///
    /// `mins[j]`/`ranges[j]` describe predictor `j`; every range must be
    /// non-zero (constant columns are dropped by preprocessing first).
    pub fn scaled(&self, mins: &[f64], ranges: &[f64]) -> NormalEq {
        let p = self.g.rows() - 1;
        debug_assert_eq!(mins.len(), p, "one min per predictor");
        debug_assert_eq!(ranges.len(), p, "one range per predictor");
        // A[0][0] = 1; A[0][j+1] = -min_j/range_j; A[j+1][j+1] = 1/range_j.
        // (AᵀGA)[a][b] expands into the four terms below; exploiting the
        // sparsity of A keeps this O(p²).
        let a0: Vec<f64> = mins
            .iter()
            .zip(ranges.iter())
            .map(|(&m, &r)| -m / r)
            .collect();
        let inv: Vec<f64> = ranges.iter().map(|&r| 1.0 / r).collect();
        let mut g = Matrix::zeros(p + 1, p + 1);
        // Row/col 0 (intercept): u-col b ↦ a0[b-1]·g00 + inv[b-1]·g0b.
        g[(0, 0)] = self.g[(0, 0)];
        for b in 1..=p {
            let v = a0[b - 1] * self.g[(0, 0)] + inv[b - 1] * self.g[(0, b)];
            g[(0, b)] = v;
            g[(b, 0)] = v;
        }
        for a in 1..=p {
            for b in a..=p {
                let v = a0[a - 1] * a0[b - 1] * self.g[(0, 0)]
                    + a0[a - 1] * inv[b - 1] * self.g[(0, b)]
                    + inv[a - 1] * a0[b - 1] * self.g[(a, 0)]
                    + inv[a - 1] * inv[b - 1] * self.g[(a, b)];
                g[(a, b)] = v;
                g[(b, a)] = v;
            }
        }
        let mut c = vec![0.0; p + 1];
        c[0] = self.c[0];
        for (j, cj) in c.iter_mut().enumerate().skip(1) {
            *cj = a0[j - 1] * self.c[0] + inv[j - 1] * self.c[j];
        }
        NormalEq {
            g,
            c,
            yty: self.yty,
            n: self.n,
        }
    }

    /// Number of rows the statistics were accumulated over.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of predictors (excluding the intercept).
    pub fn p(&self) -> usize {
        self.g.rows() - 1
    }

    /// `yᵀy` — the uncentered total sum of squares of the target.
    pub fn yty(&self) -> f64 {
        self.yty
    }

    /// Augmented Gram entry (0 = intercept, predictor `j` at `j+1`).
    pub fn gram(&self, i: usize, j: usize) -> f64 {
        self.g[(i, j)]
    }

    /// Augmented moment entry (0 = intercept, predictor `j` at `j+1`).
    pub fn moment(&self, i: usize) -> f64 {
        self.c[i]
    }
}

/// Outcome of scoring a candidate column addition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AddScore {
    /// The column extends the factor with a clearly positive pivot;
    /// `rss` is the residual sum of squares the enlarged model attains,
    /// and `z` is the new entry of the forward-substituted moment
    /// vector — `z²` is *exactly* the RSS reduction, free of the
    /// cancellation a direct `rss_small − rss_big` subtraction suffers.
    Ok {
        /// Residual sum of squares of the enlarged model.
        rss: f64,
        /// New entry of `L⁻¹c`; `z²` is the exact RSS reduction.
        z: f64,
    },
    /// The pivot is non-positive or too small relative to the column's
    /// own energy: numerically collinear with the active set. Callers
    /// should fall back to the from-scratch path to decide.
    Uncertain,
}

/// Cholesky factor of the active-set normal equations, maintained
/// incrementally as columns enter and leave the model.
///
/// Stores the lower-triangular factor `L` of `G[A,A]` (rows as growing
/// `Vec`s so add/drop are cheap), the forward-substituted moments
/// `z = L⁻¹ c[A]`, and the active predictor list. `rss = yᵀy − ‖z‖²`.
#[derive(Debug, Clone)]
pub struct ActiveCholesky<'a> {
    ne: &'a NormalEq,
    /// Active predictor indices, in insertion order.
    active: Vec<usize>,
    /// Lower-triangular factor; row `i` has `i+1` entries.
    l: Vec<Vec<f64>>,
    /// `z = L⁻¹ c[A]` (augmented: entry 0 is the intercept).
    z: Vec<f64>,
}

impl<'a> ActiveCholesky<'a> {
    /// Intercept-only factor. Fails if the statistics cover no rows.
    pub fn new(ne: &'a NormalEq) -> Result<ActiveCholesky<'a>> {
        let g00 = ne.g[(0, 0)];
        if !g00.is_finite() || g00 <= 0.0 {
            return Err(Error::degenerate("normal equations cover no rows"));
        }
        let l00 = g00.sqrt();
        Ok(ActiveCholesky {
            ne,
            active: Vec::new(),
            l: vec![vec![l00]],
            z: vec![ne.c[0] / l00],
        })
    }

    /// Active predictor indices in insertion order.
    pub fn active(&self) -> &[usize] {
        &self.active
    }

    /// Factor dimension (active predictors + intercept).
    fn dim(&self) -> usize {
        self.l.len()
    }

    /// Gram index of factor position `t` (0 = intercept).
    fn gram_idx(&self, t: usize) -> usize {
        if t == 0 {
            0
        } else {
            self.active[t - 1] + 1
        }
    }

    /// Residual sum of squares of the current active-set model,
    /// clamped at zero (the subtraction can go fractionally negative
    /// for near-exact fits).
    pub fn rss(&self) -> f64 {
        let explained: f64 = self.z.iter().map(|v| v * v).sum();
        (self.ne.yty - explained).max(0.0)
    }

    /// Solve `L w = G[A, jj]` and return `(w, d, g_jj)` where
    /// `d = G[jj,jj] − ‖w‖²` is the candidate pivot.
    fn border(&self, j: usize) -> (Vec<f64>, f64, f64) {
        let k = self.dim();
        let jj = j + 1;
        let mut w = vec![0.0; k];
        for t in 0..k {
            let mut s = self.ne.g[(self.gram_idx(t), jj)];
            for (lv, wv) in self.l[t].iter().zip(w.iter().take(t)) {
                s -= lv * wv;
            }
            w[t] = s / self.l[t][t];
        }
        let gjj = self.ne.g[(jj, jj)];
        let wnorm2: f64 = w.iter().map(|v| v * v).sum();
        (w, gjj - wnorm2, gjj)
    }

    /// Score adding predictor `j` without modifying the factor. O(k²).
    pub fn score_add(&self, j: usize) -> AddScore {
        debug_assert!(!self.active.contains(&j), "candidate already active");
        let (w, d, gjj) = self.border(j);
        if !d.is_finite() || d <= PIVOT_REL_TOL * gjj.max(f64::MIN_POSITIVE) {
            return AddScore::Uncertain;
        }
        let wz: f64 = w.iter().zip(self.z.iter()).map(|(a, b)| a * b).sum();
        let z_new = (self.ne.c[j + 1] - wz) / d.sqrt();
        let rss = (self.rss() - z_new * z_new).max(0.0);
        AddScore::Ok { rss, z: z_new }
    }

    /// Append predictor `j` to the active set, extending the factor by
    /// one bordered row. Fails (leaving the factor untouched) if the
    /// pivot is not strictly positive.
    pub fn push(&mut self, j: usize) -> Result<()> {
        let (mut w, d, _) = self.border(j);
        if !d.is_finite() || d <= 0.0 {
            return Err(Error::singular(format!(
                "incremental add of column {j}: pivot {d:.3e}"
            )));
        }
        let ld = d.sqrt();
        let wz: f64 = w.iter().zip(self.z.iter()).map(|(a, b)| a * b).sum();
        self.z.push((self.ne.c[j + 1] - wz) / ld);
        w.push(ld);
        self.l.push(w);
        self.active.push(j);
        Ok(())
    }

    /// Remove the predictor at `pos` (index into [`ActiveCholesky::active`]).
    /// Deletes the factor row/column and repairs the trailing block with
    /// a rank-one Cholesky update; if the update loses positive
    /// definiteness to rounding it falls back to a fresh factorization
    /// of the reduced Gram. `z` is recomputed by forward substitution.
    pub fn remove(&mut self, pos: usize) -> Result<()> {
        debug_assert!(pos < self.active.len(), "remove position out of range");
        let r = pos + 1; // factor row of the departing predictor
        let k = self.dim();
        // Departing column below the diagonal: the rank-one correction.
        let mut v: Vec<f64> = (r + 1..k).map(|i| self.l[i][r]).collect();
        let mut l = self.l.clone();
        l.remove(r);
        for row in l.iter_mut().skip(r) {
            row.remove(r);
        }
        // cholupdate: trailing block B satisfies B_new B_newᵀ = B Bᵀ + v vᵀ.
        let m = v.len();
        let mut ok = true;
        'update: for t in 0..m {
            let lt = l[r + t][r + t];
            let rad = (lt * lt + v[t] * v[t]).sqrt();
            if !rad.is_finite() || rad <= 0.0 || lt == 0.0 {
                ok = false;
                break 'update;
            }
            let (cos, sin) = (rad / lt, v[t] / lt);
            l[r + t][r + t] = rad;
            for u in t + 1..m {
                l[r + u][r + t] = (l[r + u][r + t] + sin * v[u]) / cos;
                v[u] = cos * v[u] - sin * l[r + u][r + t];
            }
            if !l[r + t][r + t].is_finite() || l[r + t][r + t] <= 0.0 {
                ok = false;
                break 'update;
            }
        }
        let mut next_active = self.active.clone();
        next_active.remove(pos);
        if !ok {
            // Rounding destroyed the update; refactor the reduced Gram.
            match Self::factor_from_gram(self.ne, &next_active) {
                Some(fresh) => l = fresh,
                None => {
                    return Err(Error::singular(format!(
                        "downdate of column {} left a non-SPD system",
                        self.active[pos]
                    )))
                }
            }
        }
        self.active = next_active;
        self.l = l;
        self.recompute_z();
        Ok(())
    }

    /// Score dropping the predictor at `pos` without committing: the
    /// RSS of the reduced model, or `None` when the downdate (and the
    /// fresh-factorization fallback) cannot produce an SPD factor.
    pub fn score_drop(&self, pos: usize) -> Option<f64> {
        let mut trial = self.clone();
        trial.remove(pos).ok().map(|()| trial.rss())
    }

    /// Fresh Cholesky of `G[A,A]` for the given active set. `None` when
    /// a pivot is non-positive or non-finite.
    fn factor_from_gram(ne: &NormalEq, active: &[usize]) -> Option<Vec<Vec<f64>>> {
        let idx = |t: usize| if t == 0 { 0 } else { active[t - 1] + 1 };
        let k = active.len() + 1;
        let mut l: Vec<Vec<f64>> = Vec::with_capacity(k);
        for i in 0..k {
            let mut row = vec![0.0; i + 1];
            for j in 0..i {
                let mut s = ne.g[(idx(i), idx(j))];
                for t in 0..j {
                    s -= row[t] * l[j][t];
                }
                row[j] = s / l[j][j];
            }
            let mut d = ne.g[(idx(i), idx(i))];
            for rt in row.iter().take(i) {
                d -= rt * rt;
            }
            if !d.is_finite() || d <= 0.0 {
                return None;
            }
            row[i] = d.sqrt();
            l.push(row);
        }
        Some(l)
    }

    /// Recompute `z = L⁻¹ c[A]` by forward substitution. O(k²).
    fn recompute_z(&mut self) {
        let k = self.dim();
        let mut z = vec![0.0; k];
        for t in 0..k {
            let mut s = self.ne.c[self.gram_idx(t)];
            for (lv, zv) in self.l[t].iter().zip(z.iter().take(t)) {
                s -= lv * zv;
            }
            z[t] = s / self.l[t][t];
        }
        self.z = z;
    }

    /// Coefficients of the current model by back substitution
    /// `Lᵀ β = z`: `[intercept, β_active...]` in active-set order.
    pub fn beta(&self) -> Vec<f64> {
        let k = self.dim();
        let mut beta = vec![0.0; k];
        for t in (0..k).rev() {
            let mut s = self.z[t];
            for (u, bu) in beta.iter().enumerate().skip(t + 1) {
                s -= self.l[u][t] * bu;
            }
            beta[t] = s / self.l[t][t];
        }
        beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::try_lstsq;

    fn toy() -> (Matrix, Vec<f64>) {
        // 12 rows, 4 predictors, exact-ish linear law + deterministic jitter.
        let n = 12;
        let x = Matrix::from_fn(n, 4, |i, j| {
            ((i * 7 + j * 3) % 11) as f64 / 11.0 + 0.1 * j as f64
        });
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let r = x.row(i);
                1.5 + 2.0 * r[0] - 3.0 * r[1] + 0.5 * r[3] + 0.01 * ((i * 5 % 7) as f64 - 3.0)
            })
            .collect();
        (x, y)
    }

    fn scratch_fit(x: &Matrix, y: &[f64], active: &[usize]) -> (Vec<f64>, f64) {
        let design = {
            let mut d = Matrix::zeros(x.rows(), active.len() + 1);
            for i in 0..x.rows() {
                d[(i, 0)] = 1.0;
                for (t, &j) in active.iter().enumerate() {
                    d[(i, t + 1)] = x[(i, j)];
                }
            }
            d
        };
        let (beta, _) = try_lstsq(&design, y).expect("toy system is well conditioned");
        let mut rss = 0.0;
        for (i, yi) in y.iter().enumerate() {
            let pred: f64 = design
                .row(i)
                .iter()
                .zip(beta.iter())
                .map(|(a, b)| a * b)
                .sum();
            rss += (yi - pred) * (yi - pred);
        }
        (beta, rss)
    }

    #[test]
    fn incremental_add_matches_scratch() {
        let (x, y) = toy();
        let ne = NormalEq::from_design(&x, &y);
        let mut ac = ActiveCholesky::new(&ne).unwrap();
        for (step, &j) in [0usize, 1, 3].iter().enumerate() {
            match ac.score_add(j) {
                AddScore::Ok { rss, .. } => {
                    ac.push(j).unwrap();
                    let (beta_ref, rss_ref) = scratch_fit(&x, &y, ac.active());
                    assert!(
                        (rss - rss_ref).abs() <= 1e-10 * (1.0 + rss_ref),
                        "step {step}: rss {rss} vs {rss_ref}"
                    );
                    let beta = ac.beta();
                    for (b, br) in beta.iter().zip(beta_ref.iter()) {
                        assert!((b - br).abs() <= 1e-9 * (1.0 + br.abs()), "{b} vs {br}");
                    }
                }
                AddScore::Uncertain => panic!("well-conditioned add scored uncertain"),
            }
        }
    }

    #[test]
    fn removal_downdates_match_scratch() {
        let (x, y) = toy();
        let ne = NormalEq::from_design(&x, &y);
        let mut ac = ActiveCholesky::new(&ne).unwrap();
        for j in [0usize, 1, 2, 3] {
            ac.push(j).unwrap();
        }
        ac.remove(1).unwrap(); // drop predictor 1 → active [0, 2, 3]
        assert_eq!(ac.active(), &[0, 2, 3]);
        let (beta_ref, rss_ref) = scratch_fit(&x, &y, &[0, 2, 3]);
        assert!((ac.rss() - rss_ref).abs() <= 1e-10 * (1.0 + rss_ref));
        for (b, br) in ac.beta().iter().zip(beta_ref.iter()) {
            assert!((b - br).abs() <= 1e-9 * (1.0 + br.abs()));
        }
    }

    #[test]
    fn duplicate_column_scores_uncertain() {
        let (x, y) = toy();
        // Predictor 4 duplicates predictor 0 exactly.
        let xx = Matrix::from_fn(
            x.rows(),
            5,
            |i, j| if j < 4 { x[(i, j)] } else { x[(i, 0)] },
        );
        let ne = NormalEq::from_design(&xx, &y);
        let mut ac = ActiveCholesky::new(&ne).unwrap();
        ac.push(0).unwrap();
        assert_eq!(ac.score_add(4), AddScore::Uncertain);
    }

    #[test]
    fn minus_rows_matches_direct_subset() {
        let (x, y) = toy();
        let full = NormalEq::from_design(&x, &y);
        let drop: Vec<usize> = vec![1, 4, 9];
        let keep: Vec<usize> = (0..x.rows()).filter(|i| !drop.contains(i)).collect();
        let sub = full.minus_rows(&x, &y, &drop);
        let xk = x.select_rows(&keep);
        let yk: Vec<f64> = keep.iter().map(|&i| y[i]).collect();
        let direct = NormalEq::from_design(&xk, &yk);
        assert_eq!(sub.n(), direct.n());
        for i in 0..=x.cols() {
            for j in 0..=x.cols() {
                assert!(
                    (sub.gram(i, j) - direct.gram(i, j)).abs()
                        <= 1e-9 * (1.0 + direct.gram(i, j).abs())
                );
            }
            assert!((sub.moment(i) - direct.moment(i)).abs() <= 1e-9);
        }
        assert!((sub.yty() - direct.yty()).abs() <= 1e-9 * (1.0 + direct.yty().abs()));
    }

    #[test]
    fn scaled_matches_scaling_the_rows() {
        let (x, y) = toy();
        let mins = vec![0.05, -0.1, 0.2, 0.0];
        let ranges = vec![1.1, 0.9, 2.0, 0.5];
        let scaled = NormalEq::from_design(&x, &y).scaled(&mins, &ranges);
        let xs = Matrix::from_fn(x.rows(), x.cols(), |i, j| (x[(i, j)] - mins[j]) / ranges[j]);
        let direct = NormalEq::from_design(&xs, &y);
        for i in 0..=x.cols() {
            for j in 0..=x.cols() {
                assert!(
                    (scaled.gram(i, j) - direct.gram(i, j)).abs()
                        <= 1e-9 * (1.0 + direct.gram(i, j).abs()),
                    "G[{i}][{j}]"
                );
            }
            assert!(
                (scaled.moment(i) - direct.moment(i)).abs()
                    <= 1e-9 * (1.0 + direct.moment(i).abs())
            );
        }
    }

    #[test]
    fn try_from_design_rejects_non_finite() {
        let (x, mut y) = toy();
        y[3] = f64::NAN;
        assert!(matches!(
            NormalEq::try_from_design(&x, &y),
            Err(Error::DegenerateData { .. })
        ));
    }
}
