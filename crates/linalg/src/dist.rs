//! Seeded sampling utilities.
//!
//! Every stochastic component of the reproduction (synthetic traces, SPEC
//! announcement generators, random design-space sampling, neural-network
//! weight initialization) draws through these helpers from an explicitly
//! seeded [`rand::rngs::StdRng`], so each experiment is replayable from a
//! single `u64` seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Create a deterministic RNG from a seed. Thin wrapper to keep the
/// `SeedableRng` import out of every call site.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive an independent child seed from a parent seed and a stream label.
///
/// SplitMix64-style mixing: benchmarks, model seeds, and per-config trace
/// streams each get their own statistically independent stream without the
/// caller having to track RNG state.
pub fn child_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Standard normal sample (Box–Muller, the non-cached variant).
pub(crate) fn sample_std_normal(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0) by sampling u1 from (0,1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
pub fn sample_normal(rng: &mut impl Rng, mean: f64, sd: f64) -> f64 {
    assert!(sd >= 0.0, "sample_normal: negative standard deviation");
    mean + sd * sample_std_normal(rng)
}

/// Log-normal sample parameterized by the *underlying* normal's mean/sd.
pub fn sample_log_normal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    sample_normal(rng, mu, sigma).exp()
}

/// Sample an index from unnormalized non-negative weights.
pub fn sample_weighted(rng: &mut impl Rng, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "sample_weighted: empty weights");
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && weights.iter().all(|&w| w >= 0.0),
        "sample_weighted: weights must be non-negative with positive sum"
    );
    let mut t = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Zipf-distributed rank in `0..n` with exponent `s`.
///
/// Drives the memory-reference locality model: a small number of hot
/// addresses absorb most references, the defining property of cache-friendly
/// program behaviour.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities, len = n.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precompute the CDF for `n` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf: n must be positive");
        assert!(s > 0.0, "Zipf: exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `0..n` (rank 0 is the hottest).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u = rng.random::<f64>();
        // Binary search the CDF.
        // The CDF is finite by construction (normalised partial sums of
        // positive weights); total_cmp keeps the search total regardless.
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution has no ranks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Fisher–Yates shuffle of indices `0..n`, returning the permutation.
pub fn permutation(rng: &mut impl Rng, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Sample `k` distinct indices from `0..n` (partial Fisher–Yates).
pub fn sample_indices(rng: &mut impl Rng, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "sample_indices: k={k} > n={n}");
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, std_dev};

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn child_seeds_differ_by_stream() {
        let s = 1234;
        let c1 = child_seed(s, 0);
        let c2 = child_seed(s, 1);
        assert_ne!(c1, c2);
        assert_eq!(c1, child_seed(s, 0));
    }

    #[test]
    fn normal_moments() {
        let mut rng = seeded_rng(7);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| sample_normal(&mut rng, 3.0, 2.0))
            .collect();
        assert!((mean(&xs) - 3.0).abs() < 0.05);
        assert!((std_dev(&xs) - 2.0).abs() < 0.05);
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = seeded_rng(8);
        for _ in 0..1000 {
            assert!(sample_log_normal(&mut rng, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = seeded_rng(9);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_weighted(&mut rng, &[1.0, 2.0, 7.0])] += 1;
        }
        let total = 30_000.0;
        assert!((counts[0] as f64 / total - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / total - 0.2).abs() < 0.012);
        assert!((counts[2] as f64 / total - 0.7).abs() < 0.015);
    }

    #[test]
    fn zipf_rank0_is_hottest() {
        let mut rng = seeded_rng(10);
        let z = Zipf::new(100, 1.0);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[99] * 5);
    }

    #[test]
    fn permutation_is_bijection() {
        let mut rng = seeded_rng(11);
        let p = permutation(&mut rng, 200);
        let mut seen = [false; 200];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sample_indices_distinct_and_sized() {
        let mut rng = seeded_rng(12);
        let s = sample_indices(&mut rng, 1000, 10);
        assert_eq!(s.len(), 10);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(sorted.iter().all(|&i| i < 1000));
    }
}
