//! Descriptive statistics used by the evaluation harness.
//!
//! The paper reports, for every data set, the *range* (best/worst ratio),
//! the *variation* (coefficient-of-variation-like spread), mean percentage
//! errors, and standard deviations of percentage errors. These helpers
//! centralize those definitions so tables, figures, and tests all agree.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divide by n); 0.0 for fewer than 1 element.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample variance (divide by n-1); 0.0 for fewer than 2 elements.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Geometric mean of strictly positive values — the SPEC rating aggregator.
///
/// Computed in log space to avoid overflow on long products.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geometric_mean: empty input");
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geometric_mean: all values must be positive"
    );
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// The paper's "range": ratio of the largest to the smallest value
/// (e.g. "mcf has a range of 6.38").
pub fn range_ratio(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "range_ratio: empty input");
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    assert!(lo > 0.0, "range_ratio: values must be positive");
    hi / lo
}

/// The paper's "variation": standard deviation of values normalized by the
/// mean (coefficient of variation), matching the scale of the reported
/// per-benchmark/per-family variation numbers (0.08–0.71).
pub fn variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    assert!(m != 0.0, "variation: zero mean");
    std_dev(xs) / m.abs()
}

/// Mean absolute percentage error `100·|ŷ−y|/y`, the paper's §4.2 error
/// definition. Returns (mean, std-dev) over the records.
pub fn mape(predicted: &[f64], actual: &[f64]) -> (f64, f64) {
    assert_eq!(predicted.len(), actual.len(), "mape: length mismatch");
    assert!(!actual.is_empty(), "mape: empty input");
    let errs: Vec<f64> = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| {
            assert!(*a != 0.0, "mape: zero actual value");
            100.0 * (p - a).abs() / a.abs()
        })
        .collect();
    (mean(&errs), std_dev(&errs))
}

/// Pearson correlation coefficient.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: series length mismatch");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// p-th percentile (0..=100) using linear interpolation on sorted copies.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile: empty input");
    assert!((0.0..=100.0).contains(&p), "percentile: p out of range");
    // total_cmp sorts NaNs to the top end rather than panicking; callers
    // that must exclude NaN filter before calling.
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Min and max of a non-empty slice.
pub fn min_max(xs: &[f64]) -> (f64, f64) {
    assert!(!xs.is_empty(), "min_max: empty input");
    xs.iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_matches_log_definition() {
        let xs = [1.0, 2.0, 4.0];
        assert!((geometric_mean(&xs) - 2.0).abs() < 1e-12);
        let ys = [10.0, 1000.0];
        assert!((geometric_mean(&ys) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn range_ratio_and_variation() {
        let xs = [1.0, 2.0, 6.38];
        assert!((range_ratio(&xs) - 6.38).abs() < 1e-12);
        let flat = [3.0, 3.0, 3.0];
        assert_eq!(variation(&flat), 0.0);
    }

    #[test]
    fn mape_exact_and_off_by_ten_percent() {
        let actual = [100.0, 200.0];
        let (m, s) = mape(&actual, &actual);
        assert_eq!((m, s), (0.0, 0.0));
        let pred = [110.0, 180.0];
        let (m, _) = mape(&pred, &actual);
        assert!((m - 10.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &zs) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_nonpositive() {
        geometric_mean(&[1.0, 0.0]);
    }
}
