//! Least-squares solvers.
//!
//! Ordinary least squares is solved either through the normal equations with
//! a Cholesky factorization (fast; fine for the well-scaled 0–1 design
//! matrices this project produces) or through a Householder QR factorization
//! (slower but numerically robust). Three entry points trade strictness for
//! convenience:
//!
//! * [`try_lstsq`] — Cholesky then QR; a rank-deficient system is reported
//!   as [`Error::SingularSystem`] and non-finite input as
//!   [`Error::DegenerateData`]. This is what selection drivers use to *skip*
//!   a collinear candidate column instead of absorbing a blurred fit.
//! * [`lstsq_ridge`] — [`try_lstsq`] plus a ridge-stabilized fallback for
//!   callers that want *some* usable fit on collinear predictors (the
//!   paper's Enter method, which regresses on all predictors regardless of
//!   redundancy). Still returns `Err` on non-finite input or when even
//!   heavy shrinkage cannot stabilize the system.
//! * [`lstsq`] — the original infallible-looking signature, now a thin
//!   wrapper over [`lstsq_ridge`] that panics on the (degenerate-input)
//!   error paths. Kept for tests and exploratory callers; pipeline code
//!   uses the fallible forms.

use fault::{Error, Result};

use crate::matrix::{dot, Matrix};

/// Which factorization ultimately produced a least-squares solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LstsqMethod {
    /// Cholesky on the normal equations.
    Cholesky,
    /// Householder QR on the design matrix.
    Qr,
    /// Cholesky on ridge-regularized normal equations (collinear input).
    Ridge,
}

/// Cholesky factorization of a symmetric positive-definite matrix.
///
/// Returns the lower-triangular factor `L` with `L Lᵀ = A`, or `None` if a
/// non-positive pivot is met (matrix not positive definite to working
/// precision).
pub(crate) fn cholesky(a: &Matrix) -> Option<Matrix> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "cholesky: matrix must be square");
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= 0.0 || !d.is_finite() {
            return None;
        }
        let dj = d.sqrt();
        l[(j, j)] = dj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / dj;
        }
    }
    Some(l)
}

/// Solve `A x = b` for symmetric positive-definite `A` via Cholesky.
pub(crate) fn solve_cholesky(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let l = cholesky(a)?;
    Some(cholesky_solve_with(&l, b))
}

/// Solve using a precomputed Cholesky factor (forward then back
/// substitution).
pub(crate) fn cholesky_solve_with(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    debug_assert_eq!(b.len(), n);
    // Forward: L y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[(i, k)] * y[k];
        }
        y[i] = s / l[(i, i)];
    }
    // Back: Lᵀ x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in (i + 1)..n {
            s -= l[(k, i)] * x[k];
        }
        x[i] = s / l[(i, i)];
    }
    x
}

/// Invert a symmetric positive-definite matrix via its Cholesky factor.
///
/// Used to obtain `(XᵀX)⁻¹` for regression coefficient standard errors.
pub fn spd_inverse(a: &Matrix) -> Option<Matrix> {
    let l = cholesky(a)?;
    let n = a.rows();
    let mut inv = Matrix::zeros(n, n);
    let mut e = vec![0.0; n];
    for j in 0..n {
        e[j] = 1.0;
        let col = cholesky_solve_with(&l, &e);
        for i in 0..n {
            inv[(i, j)] = col[i];
        }
        e[j] = 0.0;
    }
    Some(inv)
}

/// Householder QR least squares: minimizes `‖A x − b‖₂` for `A` with
/// `rows ≥ cols`. Returns `None` when `A` is rank-deficient to working
/// precision (a zero R diagonal entry).
pub fn solve_qr(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let m = a.rows();
    let n = a.cols();
    assert!(m >= n, "solve_qr: need rows >= cols ({m} < {n})");
    assert_eq!(b.len(), m, "solve_qr: rhs length must match rows");
    // Work on copies; r becomes R in-place, qtb becomes Qᵀb.
    let mut r = a.clone();
    let mut qtb = b.to_vec();
    let mut v = vec![0.0; m];
    for k in 0..n {
        // Householder vector for column k below the diagonal.
        let mut norm = 0.0;
        for i in k..m {
            norm += r[(i, k)] * r[(i, k)];
        }
        let norm = norm.sqrt();
        if norm < 1e-13 {
            return None;
        }
        let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
        let mut vnorm2 = 0.0;
        for i in k..m {
            v[i] = r[(i, k)];
            if i == k {
                v[i] -= alpha;
            }
            vnorm2 += v[i] * v[i];
        }
        if vnorm2 < 1e-26 {
            continue; // column already triangular
        }
        // Apply H = I - 2 v vᵀ / (vᵀv) to remaining columns of R and to qtb.
        for j in k..n {
            let mut s = 0.0;
            for i in k..m {
                s += v[i] * r[(i, j)];
            }
            let s = 2.0 * s / vnorm2;
            for i in k..m {
                r[(i, j)] -= s * v[i];
            }
        }
        let mut s = 0.0;
        for i in k..m {
            s += v[i] * qtb[i];
        }
        let s = 2.0 * s / vnorm2;
        for i in k..m {
            qtb[i] -= s * v[i];
        }
    }
    // Back substitution on the upper-triangular R (top n rows).
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = qtb[i];
        for j in (i + 1)..n {
            s -= r[(i, j)] * x[j];
        }
        let d = r[(i, i)];
        if d.abs() < 1e-12 {
            return None;
        }
        x[i] = s / d;
    }
    Some(x)
}

fn check_finite_inputs(x: &Matrix, y: &[f64]) -> Result<()> {
    for i in 0..x.rows() {
        for &v in x.row(i) {
            if !v.is_finite() {
                return Err(Error::degenerate(format!(
                    "design matrix contains a non-finite value in row {i}"
                )));
            }
        }
    }
    if let Some(i) = y.iter().position(|v| !v.is_finite()) {
        return Err(Error::degenerate(format!(
            "response vector contains a non-finite value at index {i}"
        )));
    }
    Ok(())
}

/// Strict least squares: Cholesky normal equations falling back to
/// Householder QR, with no regularization.
///
/// Errors with [`Error::DegenerateData`] on non-finite input and
/// [`Error::SingularSystem`] when the design is rank-deficient to working
/// precision — the signal a stepwise driver uses to skip a collinear
/// candidate column.
pub fn try_lstsq(x: &Matrix, y: &[f64]) -> Result<(Vec<f64>, LstsqMethod)> {
    check_finite_inputs(x, y)?;
    let gram = x.gram();
    let xty = x.t_matvec(y);
    if let Some(beta) = solve_cholesky(&gram, &xty) {
        if beta.iter().all(|b| b.is_finite()) {
            return Ok((beta, LstsqMethod::Cholesky));
        }
    }
    if x.rows() >= x.cols() {
        if let Some(beta) = solve_qr(x, y) {
            if beta.iter().all(|b| b.is_finite()) {
                return Ok((beta, LstsqMethod::Qr));
            }
        }
    }
    Err(Error::singular(format!(
        "lstsq {}x{}: Cholesky and QR both failed (rank-deficient design)",
        x.rows(),
        x.cols()
    )))
}

/// Robust least squares: [`try_lstsq`], then a ridge-stabilized solve for
/// collinear designs. Returns the coefficients and the method that
/// succeeded.
///
/// Errors with [`Error::DegenerateData`] on non-finite input and
/// [`Error::SingularSystem`] if even shrinkage six orders of magnitude
/// above the Gram diagonal scale cannot stabilize the system.
pub fn lstsq_ridge(x: &Matrix, y: &[f64]) -> Result<(Vec<f64>, LstsqMethod)> {
    match try_lstsq(x, y) {
        Ok(solved) => return Ok(solved),
        Err(Error::SingularSystem { .. }) => {}
        Err(other) => return Err(other),
    }
    // Ridge fallback: shrinkage proportional to the Gram diagonal scale.
    let gram = x.gram();
    let xty = x.t_matvec(y);
    let p = gram.rows();
    let scale = (0..p).map(|i| gram[(i, i)]).fold(0.0f64, f64::max).max(1.0);
    let mut g = gram;
    let mut lambda = 1e-8 * scale;
    while lambda < scale * 1e6 {
        for i in 0..p {
            g[(i, i)] += lambda;
        }
        if let Some(beta) = solve_cholesky(&g, &xty) {
            if beta.iter().all(|b| b.is_finite()) {
                return Ok((beta, LstsqMethod::Ridge));
            }
        }
        lambda *= 10.0;
    }
    Err(Error::singular(format!(
        "lstsq {}x{}: ridge fallback failed to stabilize the normal equations",
        x.rows(),
        x.cols()
    )))
}

/// Infallible-signature least squares, kept for tests and exploratory
/// callers: [`lstsq_ridge`] that panics on its error paths (non-finite
/// input, or a system no amount of shrinkage stabilizes). Pipeline code
/// uses [`try_lstsq`] / [`lstsq_ridge`] instead.
pub fn lstsq(x: &Matrix, y: &[f64]) -> (Vec<f64>, LstsqMethod) {
    match lstsq_ridge(x, y) {
        Ok(solved) => solved,
        Err(e) => panic!("lstsq: {e}"),
    }
}

/// Residual sum of squares `‖y − X β‖²`.
pub fn rss(x: &Matrix, y: &[f64], beta: &[f64]) -> f64 {
    (0..x.rows())
        .map(|i| {
            let e = y[i] - dot(x.row(i), beta);
            e * e
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn cholesky_roundtrip() {
        let a = Matrix::from_rows(&[
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.5],
            vec![0.6, 1.5, 3.8],
        ]);
        let l = cholesky(&a).expect("SPD");
        let back = l.matmul(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn solve_cholesky_exact() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let x = solve_cholesky(&a, &[1.0, 2.0]).unwrap();
        // Solution of [[4,1],[1,3]] x = [1,2] is [1/11, 7/11].
        assert_close(&x, &[1.0 / 11.0, 7.0 / 11.0], 1e-12);
    }

    #[test]
    fn qr_recovers_exact_coefficients() {
        // y = 2 + 3a - b, noiseless.
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![1.0, (i as f64) * 0.3, ((i * i) % 7) as f64])
            .collect();
        let y: Vec<f64> = xs.iter().map(|r| 2.0 + 3.0 * r[1] - r[2]).collect();
        let x = Matrix::from_rows(&xs);
        let beta = solve_qr(&x, &y).unwrap();
        assert_close(&beta, &[2.0, 3.0, -1.0], 1e-9);
    }

    #[test]
    fn lstsq_handles_collinear_columns() {
        // Second and third columns identical -> rank deficient.
        let xs: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let v = i as f64;
                vec![1.0, v, v]
            })
            .collect();
        let y: Vec<f64> = xs.iter().map(|r| 1.0 + 2.0 * r[1]).collect();
        let x = Matrix::from_rows(&xs);
        let (beta, method) = lstsq(&x, &y);
        assert_eq!(method, LstsqMethod::Ridge);
        // Predictions must still be accurate even if betas are split.
        let pred = x.matvec(&beta);
        for (p, t) in pred.iter().zip(&y) {
            assert!((p - t).abs() < 1e-3);
        }
    }

    #[test]
    fn try_lstsq_reports_singular_instead_of_blurring() {
        // Identical second and third columns: strict solve must refuse.
        let xs: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let v = i as f64;
                vec![1.0, v, v]
            })
            .collect();
        let y: Vec<f64> = xs.iter().map(|r| 1.0 + 2.0 * r[1]).collect();
        let x = Matrix::from_rows(&xs);
        match try_lstsq(&x, &y) {
            Err(fault::Error::SingularSystem { context }) => {
                assert!(context.contains("30x3"), "{context}");
            }
            other => panic!("expected SingularSystem, got {other:?}"),
        }
    }

    #[test]
    fn try_lstsq_rejects_non_finite_input() {
        let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, f64::NAN], vec![1.0, 2.0]]);
        let y = vec![0.0, 1.0, 2.0];
        assert!(matches!(
            try_lstsq(&x, &y),
            Err(fault::Error::DegenerateData { .. })
        ));
        let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]);
        let y = vec![0.0, f64::INFINITY, 2.0];
        assert!(matches!(
            lstsq_ridge(&x, &y),
            Err(fault::Error::DegenerateData { .. })
        ));
    }

    #[test]
    fn spd_inverse_matches_identity() {
        let a = Matrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 2.0]]);
        let inv = spd_inverse(&a).unwrap();
        let prod = a.matmul(&inv);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lstsq_overdetermined_noisy() {
        // With symmetric noise the estimate should stay near truth.
        let mut xs = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = (i % 17) as f64 / 17.0;
            let b = (i % 5) as f64 / 5.0;
            xs.push(vec![1.0, a, b]);
            let noise = if i % 2 == 0 { 0.01 } else { -0.01 };
            y.push(5.0 - 2.0 * a + 0.5 * b + noise);
        }
        let x = Matrix::from_rows(&xs);
        let (beta, _) = lstsq(&x, &y);
        assert!((beta[0] - 5.0).abs() < 0.05);
        assert!((beta[1] + 2.0).abs() < 0.1);
        assert!((beta[2] - 0.5).abs() < 0.1);
    }

    #[test]
    fn rss_zero_for_exact_fit() {
        let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]);
        let beta = [1.0, 2.0];
        let y: Vec<f64> = (0..3).map(|i| 1.0 + 2.0 * i as f64).collect();
        assert!(rss(&x, &y, &beta) < 1e-24);
    }
}
