//! Dense linear algebra and statistics kernels for `perfpredict`.
//!
//! Everything the ML layer needs is implemented here from scratch:
//!
//! * [`Matrix`] / vector helpers — row-major dense storage with the handful
//!   of operations ordinary least squares and backpropagation require
//!   (multiply, transpose, Gram products).
//! * [`solve`] — Cholesky and Householder-QR least-squares solvers with a
//!   ridge fallback for rank-deficient normal equations.
//! * [`special`] — log-gamma, regularized incomplete beta, and the F/t/normal
//!   distribution functions that drive the stepwise-regression partial-F
//!   tests.
//! * [`stats`] — descriptive statistics (mean, variance, geometric mean,
//!   correlation, percentiles) used throughout the evaluation harness.
//! * [`dist`] — seeded samplers (normal, log-normal, categorical, Zipf)
//!   backing the synthetic workload and SPEC-announcement generators.
//!
//! The crate is deliberately dependency-light (only `rand` for the PRNG and
//! `serde` for dataset persistence); no external BLAS or ML crates are used.

pub mod dist;
pub mod gram;
pub mod matrix;
pub mod solve;
pub mod special;
pub mod stats;

pub use matrix::Matrix;
pub use solve::{lstsq, lstsq_ridge, solve_qr, try_lstsq, LstsqMethod};
