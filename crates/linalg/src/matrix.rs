//! Row-major dense matrix with the operations regression and
//! backpropagation need.
//!
//! The type is intentionally small: no views, no expression templates, just
//! contiguous `Vec<f64>` storage, bounds-checked accessors, and cache-friendly
//! `i-k-j` multiplication loops (the perf-book idiom for naive GEMM).

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Output rows per tile in the parallel matrix kernels. Each tile is an
/// independent unit of work; 64 rows keeps the per-tile working set inside
/// L2 for the design-matrix widths this workspace sees.
const TILE_ROWS: usize = 64;

/// Multiply–add count below which the tiled kernels stay serial: thread
/// spawn costs more than the arithmetic saves on small operands.
const PAR_MIN_FLOPS: usize = 1 << 16;

/// Dense row-major matrix of `f64`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero-filled `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector. `data.len()` must equal
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} != {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Build from nested rows (primarily for tests and doc examples).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Matrix::from_rows: ragged input");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Build by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` out into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other` using the cache-friendly i-k-j loop
    /// order (streams through rows of both operands). Large products are
    /// split into independent row tiles evaluated on rayon workers; each
    /// output element accumulates in the same k-ascending order either
    /// way, so the result is bit-identical to the serial loop.
    ///
    /// The inner row update dispatches through [`simd::axpy`], whose AVX2
    /// backend vectorizes across output columns while keeping every
    /// element's mul-then-add order identical to the scalar oracle
    /// (`PERFPREDICT_KERNEL=scalar`). The backend is resolved once here,
    /// on the calling thread, so a `simd::with_backend` override survives
    /// the rayon fan-out.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions differ ({}x{} * {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let be = simd::backend();
        let flops = self.rows * self.cols * other.cols;
        row_tiled(self.rows, other.cols, flops, move |r0, buf| {
            let out_cols = other.cols;
            for (ti, i) in (r0..).zip(0..buf.len() / out_cols) {
                let a_row = self.row(ti);
                let o_row = &mut buf[i * out_cols..(i + 1) * out_cols];
                for (k, &a_ik) in a_row.iter().enumerate() {
                    if a_ik == 0.0 {
                        continue;
                    }
                    simd::axpy(be, a_ik, other.row(k), o_row);
                }
            }
        })
    }

    /// `selfᵀ * other` without materializing the transpose: both operands
    /// are streamed row by row, accumulating rank-one contributions in
    /// row-index-ascending order — the exact order a per-sample gradient
    /// loop accumulates, which keeps batched backprop bit-identical to the
    /// scalar oracle. Tiled over *output* rows for parallelism.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn: row counts differ ({}x{} vs {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let be = simd::backend();
        let flops = self.rows * self.cols * other.cols;
        row_tiled(self.cols, other.cols, flops, move |r0, buf| {
            let out_cols = other.cols;
            let tile_rows = buf.len() / out_cols;
            for i in 0..self.rows {
                let a_row = self.row(i);
                let b_row = other.row(i);
                for t in 0..tile_rows {
                    let a_io = a_row[r0 + t];
                    let o_row = &mut buf[t * out_cols..(t + 1) * out_cols];
                    simd::axpy(be, a_io, b_row, o_row);
                }
            }
        })
    }

    /// Batched affine layer map: `out[i][o] = bias[o] + Σ_k self[i][k] *
    /// w[o][k]`, with the sum folded *starting from the bias* in
    /// k-ascending order — the same floating-point grouping as the scalar
    /// per-sample forward pass (`s = b; s += w·a`), so batching a network
    /// forward through this kernel changes nothing in the low bits. `w` is
    /// `outputs x inputs`, matching layer weight storage.
    pub fn affine_nt(&self, w: &Matrix, bias: &[f64]) -> Matrix {
        assert_eq!(
            self.cols, w.cols,
            "affine_nt: input widths differ ({}x{} vs {}x{})",
            self.rows, self.cols, w.rows, w.cols
        );
        assert_eq!(w.rows, bias.len(), "affine_nt: bias length mismatch");
        let be = simd::backend();
        let flops = self.rows * self.cols * w.rows;
        if be == simd::Backend::Scalar {
            // The original per-output scalar loop, verbatim — the
            // bit-exactness oracle for the SIMD path below.
            return row_tiled(self.rows, w.rows, flops, |r0, buf| {
                let out_cols = w.rows;
                for (ti, i) in (r0..).zip(0..buf.len() / out_cols) {
                    let a_row = self.row(ti);
                    let o_row = &mut buf[i * out_cols..(i + 1) * out_cols];
                    for (o, out) in o_row.iter_mut().enumerate() {
                        let mut s = bias[o];
                        for (&a, &wv) in a_row.iter().zip(w.row(o)) {
                            s += wv * a;
                        }
                        *out = s;
                    }
                }
            });
        }
        // SIMD arm: seed each output row with the bias, then fold the
        // k-ascending rank-one updates through the vectorized axpy over a
        // once-per-call transposed weight matrix. Element `o` still
        // computes `bias[o] + Σ_k a[k] * w[o][k]` with the sum grouped
        // bias-first in k-ascending order; `a * w` commutes with
        // identical rounding, so the result is bit-identical to the
        // scalar oracle above.
        let wt = w.transpose();
        row_tiled(self.rows, w.rows, flops, move |r0, buf| {
            let out_cols = w.rows;
            for (ti, i) in (r0..).zip(0..buf.len() / out_cols) {
                let a_row = self.row(ti);
                let o_row = &mut buf[i * out_cols..(i + 1) * out_cols];
                o_row.copy_from_slice(bias);
                for (k, &a_ik) in a_row.iter().enumerate() {
                    simd::axpy(be, a_ik, wt.row(k), o_row);
                }
            }
        })
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec: dimension mismatch");
        let be = simd::backend();
        (0..self.rows)
            .map(|i| simd::dot(be, self.row(i), v))
            .collect()
    }

    /// Gram matrix `selfᵀ * self` (symmetric; only the upper triangle is
    /// computed then mirrored). This is the hot kernel of OLS fitting.
    pub fn gram(&self) -> Matrix {
        let p = self.cols;
        let mut g = Matrix::zeros(p, p);
        for row in 0..self.rows {
            let r = self.row(row);
            for j in 0..p {
                let rj = r[j];
                if rj == 0.0 {
                    continue;
                }
                for k in j..p {
                    g[(j, k)] += rj * r[k];
                }
            }
        }
        for j in 0..p {
            for k in 0..j {
                g[(j, k)] = g[(k, j)];
            }
        }
        g
    }

    /// `selfᵀ * v` — the right-hand side of the normal equations.
    pub(crate) fn t_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len(), "t_matvec: dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += a * vi;
            }
        }
        out
    }

    /// New matrix keeping only the listed columns, in the given order.
    pub fn select_cols(&self, cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, cols.len());
        for i in 0..self.rows {
            let src = self.row(i);
            let dst = out.row_mut(i);
            for (d, &c) in dst.iter_mut().zip(cols) {
                *d = src[c];
            }
        }
        out
    }

    /// New matrix keeping only the listed rows, in the given order.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), self.cols);
        for (dst_i, &src_i) in rows.iter().enumerate() {
            out.row_mut(dst_i).copy_from_slice(self.row(src_i));
        }
        out
    }

    /// Horizontally append a column.
    pub fn hstack_col(&self, col: &[f64]) -> Matrix {
        assert_eq!(col.len(), self.rows, "hstack_col: row count mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + 1);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out[(i, self.cols)] = col[i];
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// Element-wise scale in place.
    pub fn scale_mut(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(10) {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 10 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Evaluate a matrix kernel over independent tiles of output rows.
///
/// `fill(r0, buf)` must write output rows `r0 .. r0 + buf.len() / out_cols`
/// into the zero-initialized row-major `buf`. Small jobs (under
/// [`PAR_MIN_FLOPS`] multiply–adds) run as one serial tile; large ones fan
/// out one tile per [`TILE_ROWS`] rows across rayon workers and stitch the
/// buffers back in order. Tiling never changes any output element's
/// accumulation order, only which thread computes it.
fn row_tiled(
    out_rows: usize,
    out_cols: usize,
    flops: usize,
    fill: impl Fn(usize, &mut [f64]) + Sync,
) -> Matrix {
    if out_rows == 0 || out_cols == 0 {
        return Matrix::zeros(out_rows, out_cols);
    }
    if flops < PAR_MIN_FLOPS || out_rows <= TILE_ROWS {
        let mut data = vec![0.0; out_rows * out_cols];
        fill(0, &mut data);
        return Matrix::from_vec(out_rows, out_cols, data);
    }
    let n_tiles = out_rows.div_ceil(TILE_ROWS);
    let tiles: Vec<Vec<f64>> = (0..n_tiles)
        .into_par_iter()
        .map(|t| {
            let r0 = t * TILE_ROWS;
            let r1 = ((t + 1) * TILE_ROWS).min(out_rows);
            let mut buf = vec![0.0; (r1 - r0) * out_cols];
            fill(r0, &mut buf);
            buf
        })
        .collect();
    let mut data = Vec::with_capacity(out_rows * out_cols);
    for tile in tiles {
        data.extend_from_slice(&tile);
    }
    Matrix::from_vec(out_rows, out_cols, data)
}

/// Dot product of two equal-length slices, summed left to right.
///
/// Dispatches through [`simd::dot`]; every backend reduces the products
/// in the same sequential order, so the result is bit-identical to the
/// scalar `sum()` chain.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    simd::dot(simd::backend(), a, b)
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `out += s * a`, the axpy kernel. Dispatches through [`simd::axpy`];
/// each element sees one mul then one add in both backends, so the
/// result is bit-identical regardless of backend.
#[inline]
pub fn axpy(s: f64, a: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), out.len());
    simd::axpy(simd::backend(), s, a, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(
            c,
            Matrix::from_rows(&[vec![58.0, 64.0], vec![139.0, 154.0]])
        );
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_fn(6, 4, |i, j| ((i * j) as f64).sin() + 0.5);
        let g1 = a.gram();
        let g2 = a.transpose().matmul(&a);
        for i in 0..4 {
            for j in 0..4 {
                assert!((g1[(i, j)] - g2[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn t_matvec_matches_transpose_matvec() {
        let a = Matrix::from_fn(5, 3, |i, j| (i + 2 * j) as f64);
        let v = vec![1.0, -2.0, 0.5, 3.0, -1.0];
        assert_eq!(a.t_matvec(&v), a.transpose().matvec(&v));
    }

    #[test]
    fn select_cols_and_rows() {
        let a = Matrix::from_fn(3, 4, |i, j| (10 * i + j) as f64);
        let s = a.select_cols(&[3, 1]);
        assert_eq!(s.row(0), &[3.0, 1.0]);
        assert_eq!(s.row(2), &[23.0, 21.0]);
        let r = a.select_rows(&[2, 0]);
        assert_eq!(r.row(0), a.row(2));
        assert_eq!(r.row(1), a.row(0));
    }

    #[test]
    fn hstack_col_appends() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let b = a.hstack_col(&[9.0, 8.0]);
        assert_eq!(b.row(0), &[1.0, 9.0]);
        assert_eq!(b.row(1), &[2.0, 8.0]);
    }

    #[test]
    fn axpy_and_norms() {
        let mut out = vec![1.0, 2.0, 3.0];
        axpy(2.0, &[10.0, 20.0, 30.0], &mut out);
        assert_eq!(out, vec![21.0, 42.0, 63.0]);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn scale_mut_scales_all_elements() {
        let mut m = Matrix::from_rows(&[vec![1.0, -2.0], vec![3.0, -4.0]]);
        m.scale_mut(-0.5);
        assert_eq!(m.row(0), &[-0.5, 1.0]);
        assert_eq!(m.row(1), &[-1.5, 2.0]);
    }

    #[test]
    fn from_fn_evaluates_positionally() {
        let m = Matrix::from_fn(2, 3, |i, j| (10 * i + j) as f64);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    /// Serial reference for `matmul` with the identical ikj accumulation
    /// order, used to pin the tiled kernels bit-for-bit.
    fn matmul_serial(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for (k, &a_ik) in a.row(i).iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                for j in 0..b.cols() {
                    out[(i, j)] += a_ik * b[(k, j)];
                }
            }
        }
        out
    }

    #[test]
    fn tiled_matmul_is_bit_identical_to_serial() {
        // 200x80 * 80x70 = 1.12M flops: crosses PAR_MIN_FLOPS and
        // TILE_ROWS, so the rayon path actually runs.
        let a = Matrix::from_fn(200, 80, |i, j| ((i * 31 + j * 7) as f64).sin());
        let b = Matrix::from_fn(80, 70, |i, j| ((i * 13 + j * 3) as f64).cos());
        let fast = a.matmul(&b);
        let slow = matmul_serial(&a, &b);
        assert_eq!(fast.as_slice(), slow.as_slice());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose_bitwise() {
        let a = Matrix::from_fn(150, 90, |i, j| ((i * 17 + j * 5) as f64).sin());
        let b = Matrix::from_fn(150, 60, |i, j| ((i * 11 + j * 2) as f64).cos());
        let fast = a.matmul_tn(&b);
        // Row-ascending rank-one reference: the order a per-sample
        // gradient loop uses.
        let mut slow = Matrix::zeros(90, 60);
        for i in 0..150 {
            for o in 0..90 {
                let a_io = a[(i, o)];
                for j in 0..60 {
                    slow[(o, j)] += a_io * b[(i, j)];
                }
            }
        }
        assert_eq!(fast.as_slice(), slow.as_slice());
        // And numerically it is selfᵀ·other.
        let direct = a.transpose().matmul(&b);
        for i in 0..90 {
            for j in 0..60 {
                assert!((fast[(i, j)] - direct[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn affine_nt_matches_scalar_forward_bitwise() {
        let x = Matrix::from_fn(130, 40, |i, j| ((i * 3 + j * 19) as f64).sin());
        let w = Matrix::from_fn(25, 40, |i, j| ((i * 7 + j) as f64).cos() * 0.3);
        let bias: Vec<f64> = (0..25).map(|o| (o as f64) * 0.01 - 0.1).collect();
        let fast = x.affine_nt(&w, &bias);
        for i in 0..130 {
            for o in 0..25 {
                // The scalar network forward: start at the bias, add
                // weight·activation terms in input order.
                let mut s = bias[o];
                for k in 0..40 {
                    s += w[(o, k)] * x[(i, k)];
                }
                assert!(
                    fast[(i, o)].to_bits() == s.to_bits(),
                    "({i},{o}): {} vs {s}",
                    fast[(i, o)]
                );
            }
        }
    }

    #[test]
    fn new_kernels_handle_empty_operands() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(0, 3);
        assert_eq!(a.matmul_tn(&b).rows(), 5);
        assert_eq!(a.matmul_tn(&b).cols(), 3);
        let w = Matrix::zeros(4, 5);
        let out = a.affine_nt(&w, &[0.0; 4]);
        assert_eq!((out.rows(), out.cols()), (0, 4));
    }
}
