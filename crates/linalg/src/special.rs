//! Statistical special functions.
//!
//! Stepwise regression needs tail probabilities of the F distribution
//! (partial-F tests with "F-to-enter"/"F-to-remove" thresholds expressed as
//! p-values, the way SPSS Clementine exposes them). The F CDF reduces to the
//! regularized incomplete beta function, which in turn needs log-gamma. All
//! are implemented here with the classic Lanczos / Lentz algorithms.

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
///
/// Accurate to ~1e-13 over the positive reals, which is far more than the
/// hypothesis tests here require.
pub(crate) fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g=7, n=9 from Numerical Recipes / Godfrey.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula for small/negative arguments.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction of Lentz's algorithm with the standard symmetry split.
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "inc_beta: shape parameters must be positive"
    );
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued-fraction core of the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of the F distribution with `(d1, d2)` degrees of freedom.
pub fn f_cdf(f: f64, d1: f64, d2: f64) -> f64 {
    if f <= 0.0 {
        return 0.0;
    }
    inc_beta(d1 / 2.0, d2 / 2.0, d1 * f / (d1 * f + d2))
}

/// Upper-tail probability `P(F > f)` — the p-value of a partial-F test.
pub fn f_sf(f: f64, d1: f64, d2: f64) -> f64 {
    (1.0 - f_cdf(f, d1, d2)).clamp(0.0, 1.0)
}

/// CDF of Student's t distribution with `df` degrees of freedom.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    let p = 0.5 * inc_beta(df / 2.0, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-sided p-value of a t statistic.
pub fn t_sf_two_sided(t: f64, df: f64) -> f64 {
    (2.0 * (1.0 - t_cdf(t.abs(), df))).clamp(0.0, 1.0)
}

/// Standard normal CDF via the complementary error function.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function (Numerical Recipes rational Chebyshev fit,
/// |error| < 1.2e-7 everywhere — plenty for sampling diagnostics).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let g = ln_gamma((n + 1) as f64).exp();
            assert!((g - f).abs() / f < 1e-10, "Γ({}) = {g}, want {f}", n + 1);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        let g = ln_gamma(0.5).exp();
        assert!((g - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn inc_beta_boundaries() {
        assert_eq!(inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(inc_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn inc_beta_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (0.7, 0.9, 0.55), (10.0, 3.0, 0.8)] {
            let lhs = inc_beta(a, b, x);
            let rhs = 1.0 - inc_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-12, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn inc_beta_uniform_case() {
        // I_x(1,1) = x.
        for i in 1..10 {
            let x = i as f64 / 10.0;
            assert!((inc_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn f_cdf_known_quantiles() {
        // F(1,10): 95th percentile ≈ 4.9646.
        assert!((f_cdf(4.9646, 1.0, 10.0) - 0.95).abs() < 1e-3);
        // F(5,20): 95th percentile ≈ 2.7109.
        assert!((f_cdf(2.7109, 5.0, 20.0) - 0.95).abs() < 1e-3);
    }

    #[test]
    fn f_sf_complements_cdf() {
        let p = f_cdf(2.5, 3.0, 12.0);
        assert!((f_sf(2.5, 3.0, 12.0) - (1.0 - p)).abs() < 1e-15);
    }

    #[test]
    fn t_cdf_symmetry_and_known_values() {
        assert!((t_cdf(0.0, 7.0) - 0.5).abs() < 1e-12);
        // t(10): 97.5th percentile ≈ 2.2281.
        assert!((t_cdf(2.2281, 10.0) - 0.975).abs() < 1e-3);
        // Symmetry.
        let a = t_cdf(-1.3, 5.0);
        let b = 1.0 - t_cdf(1.3, 5.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn t_squared_is_f() {
        // If T ~ t(df), T² ~ F(1, df): P(|T|>t) == P(F > t²).
        let t = 1.7;
        let df = 9.0;
        let p_t = t_sf_two_sided(t, df);
        let p_f = f_sf(t * t, 1.0, df);
        assert!((p_t - p_f).abs() < 1e-10);
    }

    #[test]
    fn norm_cdf_known_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((norm_cdf(1.959964) - 0.975).abs() < 1e-5);
        assert!((norm_cdf(-1.959964) - 0.025).abs() < 1e-5);
    }
}
