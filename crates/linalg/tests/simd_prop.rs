//! Property tests pinning the SIMD kernel backend bit-identical to the
//! scalar oracle across shapes that exercise the remainder lanes:
//! dimensions that are not multiples of the 4-wide f64 vector, empty
//! matrices, and 1×1. Each case evaluates the same kernel under
//! `simd::with_backend` for both backends and compares raw f64 bits.
//!
//! On machines without AVX2 the override downgrades to scalar and the
//! comparisons are trivially true — the tests stay portable.

use linalg::matrix::{dot, Matrix};
use proptest::prelude::*;
use simd::{with_backend, Backend};

/// Shapes chosen to straddle the 4-lane vector width: 0, 1, lane-1,
/// lane, lane+1, and a couple of multi-vector sizes with remainders.
fn dim() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![0usize, 1, 2, 3, 4, 5, 7, 8, 9, 13])
}

/// Enough elements for any shape `dim()` can produce (13 * 13 = 169).
fn pool() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, 169usize)
}

fn shaped(rows: usize, cols: usize, pool: &[f64]) -> Matrix {
    Matrix::from_vec(rows, cols, pool[..rows * cols].to_vec())
}

fn assert_bits_eq(a: &Matrix, b: &Matrix, kernel: &str) {
    assert_eq!(a.rows(), b.rows(), "{kernel} rows");
    assert_eq!(a.cols(), b.cols(), "{kernel} cols");
    for i in 0..a.rows() {
        for (j, (x, y)) in a.row(i).iter().zip(b.row(i)).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{kernel} ({i}, {j}): scalar {x} vs simd {y}"
            );
        }
    }
}

proptest! {
    #[test]
    fn matmul_simd_bit_identical_to_scalar(
        m in dim(), k in dim(), n in dim(), da in pool(), db in pool(),
    ) {
        let a = shaped(m, k, &da);
        let b = shaped(k, n, &db);
        let s = with_backend(Backend::Scalar, || a.matmul(&b));
        let v = with_backend(Backend::Avx2, || a.matmul(&b));
        assert_bits_eq(&s, &v, "matmul");
    }

    #[test]
    fn matmul_tn_simd_bit_identical_to_scalar(
        k in dim(), m in dim(), n in dim(), da in pool(), db in pool(),
    ) {
        let at = shaped(k, m, &da);
        let b = shaped(k, n, &db);
        let s = with_backend(Backend::Scalar, || at.matmul_tn(&b));
        let v = with_backend(Backend::Avx2, || at.matmul_tn(&b));
        assert_bits_eq(&s, &v, "matmul_tn");
    }

    #[test]
    fn affine_nt_simd_bit_identical_to_scalar(
        m in dim(), k in dim(), o in dim(), da in pool(), dw in pool(), dbias in pool(),
    ) {
        let a = shaped(m, k, &da);
        let w = shaped(o, k, &dw);
        let bias = &dbias[..o];
        let s = with_backend(Backend::Scalar, || a.affine_nt(&w, bias));
        let v = with_backend(Backend::Avx2, || a.affine_nt(&w, bias));
        assert_bits_eq(&s, &v, "affine_nt");
    }

    #[test]
    fn matvec_and_dot_simd_bit_identical_to_scalar(
        m in dim(), k in dim(), da in pool(), dv in pool(),
    ) {
        let a = shaped(m, k, &da);
        let v = &dv[..k];
        let s = with_backend(Backend::Scalar, || a.matvec(v));
        let x = with_backend(Backend::Avx2, || a.matvec(v));
        prop_assert_eq!(s.len(), x.len());
        for (i, (p, q)) in s.iter().zip(&x).enumerate() {
            prop_assert_eq!(p.to_bits(), q.to_bits(), "matvec row {}", i);
        }
        if m > 0 {
            let row = a.row(0);
            let ds = with_backend(Backend::Scalar, || dot(row, v));
            let dx = with_backend(Backend::Avx2, || dot(row, v));
            prop_assert_eq!(ds.to_bits(), dx.to_bits(), "dot");
        }
    }

    /// Zeros in the left operand take the skip branch in matmul; sprinkle
    /// them explicitly so the sparsity short-circuit is exercised under
    /// both backends (it must behave identically, including for rows that
    /// become entirely zero).
    #[test]
    fn matmul_zero_skip_identical_under_simd(
        m in dim(), k in dim(), n in dim(),
        da in pool(), db in pool(),
        zero_every in 1usize..4,
    ) {
        let mut a = shaped(m, k, &da);
        let b = shaped(k, n, &db);
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                if (i + j) % zero_every == 0 {
                    a[(i, j)] = 0.0;
                }
            }
        }
        let s = with_backend(Backend::Scalar, || a.matmul(&b));
        let v = with_backend(Backend::Avx2, || a.matmul(&b));
        assert_bits_eq(&s, &v, "matmul(zero-skip)");
    }
}

#[test]
fn one_by_one_and_empty_shapes_bit_identical() {
    for (m, k, n) in [(1, 1, 1), (0, 0, 0), (1, 0, 1), (0, 3, 2), (3, 1, 1)] {
        let a = Matrix::from_fn(m, k, |i, j| (i as f64 + 1.3) * (j as f64 - 0.7));
        let b = Matrix::from_fn(k, n, |i, j| (i as f64 - 2.1) * (j as f64 + 0.4));
        let s = with_backend(Backend::Scalar, || a.matmul(&b));
        let v = with_backend(Backend::Avx2, || a.matmul(&b));
        assert_eq!(s, v, "matmul {m}x{k}x{n}");
    }
}
