//! Property-based tests for the linalg crate.

use linalg::matrix::{dot, Matrix};
use linalg::solve::{lstsq, lstsq_ridge, rss, solve_qr, try_lstsq};
use linalg::special::{f_cdf, inc_beta, t_cdf};
use linalg::stats::{geometric_mean, mean, percentile, range_ratio};
use proptest::prelude::*;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn transpose_is_involution(m in small_matrix(4, 6)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associates_with_identity(m in small_matrix(5, 5)) {
        let i = Matrix::identity(5);
        let left = i.matmul(&m);
        let right = m.matmul(&i);
        for r in 0..5 {
            for c in 0..5 {
                prop_assert!((left[(r, c)] - m[(r, c)]).abs() < 1e-12);
                prop_assert!((right[(r, c)] - m[(r, c)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal(m in small_matrix(8, 4)) {
        let g = m.gram();
        for i in 0..4 {
            prop_assert!(g[(i, i)] >= -1e-12);
            for j in 0..4 {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dot_is_commutative(a in prop::collection::vec(-100.0f64..100.0, 16),
                          b in prop::collection::vec(-100.0f64..100.0, 16)) {
        prop_assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-9);
    }

    /// The least-squares residual must not exceed the residual of any other
    /// candidate coefficient vector (optimality of the fit).
    #[test]
    fn lstsq_is_optimal(
        data in prop::collection::vec(-5.0f64..5.0, 12 * 3),
        y in prop::collection::vec(-5.0f64..5.0, 12),
        perturb in prop::collection::vec(-1.0f64..1.0, 3),
    ) {
        let x = Matrix::from_vec(12, 3, data);
        let (beta, _) = lstsq(&x, &y);
        let base = rss(&x, &y, &beta);
        let other: Vec<f64> = beta.iter().zip(&perturb).map(|(b, p)| b + p).collect();
        prop_assert!(base <= rss(&x, &y, &other) + 1e-6);
    }

    /// QR and the lstsq front door agree on well-conditioned problems.
    #[test]
    fn qr_and_lstsq_agree(seed_vals in prop::collection::vec(0.1f64..3.0, 10)) {
        let rows: Vec<Vec<f64>> = seed_vals
            .iter()
            .enumerate()
            .map(|(i, &v)| vec![1.0, v, (i as f64 + 1.0).ln()])
            .collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = rows.iter().map(|r| 1.0 + 2.0 * r[1] - 0.3 * r[2]).collect();
        if let Some(q) = solve_qr(&x, &y) {
            let (b, _) = lstsq(&x, &y);
            let pred_q = x.matvec(&q);
            let pred_b = x.matvec(&b);
            for (p, t) in pred_q.iter().zip(&pred_b) {
                prop_assert!((p - t).abs() < 1e-6);
            }
        }
    }

    /// On exactly rank-deficient designs (a column is a multiple of
    /// another), the strict solver either reports `SingularSystem` or
    /// returns fully finite coefficients — never silent NaN/Inf.
    #[test]
    fn try_lstsq_never_silently_non_finite(
        col in prop::collection::vec(-5.0f64..5.0, 12),
        scale in -3.0f64..3.0,
        y in prop::collection::vec(-5.0f64..5.0, 12),
    ) {
        let rows: Vec<Vec<f64>> = col.iter().map(|&v| vec![1.0, v, scale * v]).collect();
        let x = Matrix::from_rows(&rows);
        match try_lstsq(&x, &y) {
            Ok((beta, _)) => prop_assert!(beta.iter().all(|b| b.is_finite())),
            Err(e) => prop_assert_eq!(e.kind(), "singular"),
        }
    }

    /// The ridge-fallback tier must always produce finite coefficients on
    /// ill-conditioned (near-duplicate column) designs — that is its job.
    #[test]
    fn lstsq_ridge_recovers_ill_conditioned(
        col in prop::collection::vec(-5.0f64..5.0, 14),
        eps in 0.0f64..1e-10,
        y in prop::collection::vec(-5.0f64..5.0, 14),
    ) {
        let rows: Vec<Vec<f64>> = col
            .iter()
            .enumerate()
            .map(|(i, &v)| vec![1.0, v, v + eps * i as f64])
            .collect();
        let x = Matrix::from_rows(&rows);
        match lstsq_ridge(&x, &y) {
            Ok((beta, _)) => prop_assert!(beta.iter().all(|b| b.is_finite())),
            Err(e) => prop_assert_eq!(e.kind(), "singular"),
        }
    }

    /// Non-finite inputs are always a typed `DegenerateData`, regardless
    /// of where the poison sits.
    #[test]
    fn try_lstsq_rejects_poisoned_input(
        data in prop::collection::vec(-5.0f64..5.0, 10 * 2),
        y in prop::collection::vec(-5.0f64..5.0, 10),
        bad_row in 0usize..10,
        bad_col in 0usize..2,
        poison_design in any::<bool>(),
    ) {
        let mut data = data;
        let mut y = y;
        if poison_design {
            data[bad_row * 2 + bad_col] = f64::NAN;
        } else {
            y[bad_row] = f64::INFINITY;
        }
        let x = Matrix::from_vec(10, 2, data);
        let e = try_lstsq(&x, &y).expect_err("poisoned input must be rejected");
        prop_assert_eq!(e.kind(), "degenerate");
    }

    #[test]
    fn inc_beta_monotone_in_x(a in 0.2f64..10.0, b in 0.2f64..10.0,
                              x1 in 0.01f64..0.98) {
        let x2 = (x1 + 0.01).min(0.99);
        prop_assert!(inc_beta(a, b, x1) <= inc_beta(a, b, x2) + 1e-12);
    }

    #[test]
    fn f_cdf_in_unit_interval(f in 0.0f64..50.0, d1 in 1.0f64..30.0, d2 in 1.0f64..30.0) {
        let p = f_cdf(f, d1, d2);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn t_cdf_monotone(df in 1.0f64..40.0, t in -5.0f64..5.0) {
        prop_assert!(t_cdf(t, df) <= t_cdf(t + 0.1, df) + 1e-12);
    }

    #[test]
    fn geometric_mean_between_min_and_max(xs in prop::collection::vec(0.01f64..100.0, 1..20)) {
        let g = geometric_mean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(g >= lo - 1e-9 && g <= hi + 1e-9);
    }

    #[test]
    fn geometric_le_arithmetic(xs in prop::collection::vec(0.01f64..100.0, 1..20)) {
        prop_assert!(geometric_mean(&xs) <= mean(&xs) + 1e-9);
    }

    #[test]
    fn range_ratio_at_least_one(xs in prop::collection::vec(0.01f64..100.0, 1..20)) {
        prop_assert!(range_ratio(&xs) >= 1.0 - 1e-12);
    }

    #[test]
    fn percentile_monotone(xs in prop::collection::vec(-50.0f64..50.0, 2..30),
                           p in 0.0f64..90.0) {
        prop_assert!(percentile(&xs, p) <= percentile(&xs, p + 10.0) + 1e-12);
    }
}
