//! Predictor-importance analysis (§4.4).
//!
//! The paper reports two importance measures: for neural networks, a
//! sensitivity score in [0, 1] ("0 denoting that the field has no effect on
//! the prediction and 1.0 denoting that the field completely determines the
//! prediction"); for linear regression, the standardized beta
//! coefficients. Both are reproduced here:
//!
//! * NN sensitivity: sweep each input across its training range at every
//!   data point (others held fixed), record the mean output swing, and
//!   normalize by the largest swing.
//! * LR importance: |standardized beta| per active predictor, with encoded
//!   features mapped back to their source columns.

use crate::model::{Estimator, TrainedModel};
use crate::table::Table;
use serde::{Deserialize, Serialize};

/// Importance of one source predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Importance {
    /// Predictor (source column) name.
    pub name: String,
    /// Relative importance score.
    pub score: f64,
}

/// Number of grid points per input sweep.
const SWEEP_POINTS: usize = 7;
/// Number of data rows sampled as sweep bases.
const SWEEP_BASES: usize = 32;

/// Compute per-predictor importance for a trained model, sorted descending.
///
/// Scores are grouped by *source column* (one-hot indicator columns of the
/// same categorical field merge into one entry) and normalized so the top
/// predictor scores 1.0 for networks, matching the paper's convention;
/// linear models report |standardized beta| unnormalized, as §4.4 does.
pub fn importance(model: &TrainedModel, table: &Table) -> Vec<Importance> {
    let feats = model.prep.features();
    let mut by_source: std::collections::BTreeMap<usize, f64> = Default::default();

    match &model.estimator {
        Estimator::Linear(fit) => {
            for (k, &col) in fit.active.iter().enumerate() {
                let src = feats[col].source_column;
                let entry = by_source.entry(src).or_insert(0.0);
                *entry = entry.max(fit.std_betas[k].abs());
            }
        }
        Estimator::Network(net) => {
            let x = model.prep.transform(table);
            let n = x.rows();
            let stride = (n / SWEEP_BASES).max(1);
            for (j, _f) in feats.iter().enumerate() {
                if net.input_is_dead(j) {
                    by_source.entry(feats[j].source_column).or_insert(0.0);
                    continue;
                }
                // Swing of the output as input j sweeps its scaled range.
                let mut total_swing = 0.0;
                let mut bases = 0usize;
                let mut i = 0;
                while i < n && bases < SWEEP_BASES {
                    let mut row = x.row(i).to_vec();
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    for g in 0..SWEEP_POINTS {
                        row[j] = g as f64 / (SWEEP_POINTS - 1) as f64;
                        let p = net.forward(&row);
                        lo = lo.min(p);
                        hi = hi.max(p);
                    }
                    total_swing += hi - lo;
                    bases += 1;
                    i += stride;
                }
                let swing = total_swing / bases.max(1) as f64;
                let entry = by_source.entry(feats[j].source_column).or_insert(0.0);
                *entry = entry.max(swing);
            }
            // Normalize to [0, 1] by the dominant swing.
            let top = by_source.values().cloned().fold(0.0f64, f64::max);
            if top > 0.0 {
                for v in by_source.values_mut() {
                    *v /= top;
                }
            }
        }
    }

    let names = table.names();
    let mut out: Vec<Importance> = by_source
        .into_iter()
        .map(|(src, score)| Importance {
            name: names[src].clone(),
            score,
        })
        .collect();
    // total_cmp: a NaN score (degenerate weight column) sorts last
    // instead of panicking mid-report.
    out.sort_by(|a, b| b.score.total_cmp(&a.score));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{train, ModelKind};

    /// x0 dominates y; x1 minor; x2 irrelevant.
    fn table(n: usize) -> Table {
        let a: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| ((i * 5) % 11) as f64).collect();
        let c: Vec<f64> = (0..n).map(|i| ((i * 3) % 7) as f64).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| 100.0 + 10.0 * a[i] + 1.0 * b[i] + 0.0 * c[i])
            .collect();
        let mut t = Table::new();
        t.add_numeric("dominant", a)
            .add_numeric("minor", b)
            .add_numeric("irrelevant", c)
            .set_target(y);
        t
    }

    #[test]
    fn linear_importance_ranks_dominant_first() {
        let t = table(90);
        let m = train(ModelKind::LrE, &t, 1);
        let imp = importance(&m, &t);
        assert_eq!(imp[0].name, "dominant");
        assert!(imp[0].score > 2.0 * imp[1].score);
    }

    #[test]
    fn network_importance_ranks_dominant_first_and_normalizes() {
        let t = table(120);
        let m = train(ModelKind::NnQ, &t, 2);
        let imp = importance(&m, &t);
        assert_eq!(imp[0].name, "dominant");
        assert!(
            (imp[0].score - 1.0).abs() < 1e-12,
            "top score normalized to 1"
        );
        let irr = imp.iter().find(|i| i.name == "irrelevant").unwrap();
        assert!(irr.score < 0.5, "irrelevant score {}", irr.score);
    }

    #[test]
    fn one_hot_features_merge_into_source_column() {
        let mut t = table(60);
        let codes: Vec<u32> = (0..60).map(|i| (i % 3) as u32).collect();
        t.add_categorical("bpred", codes, vec!["a".into(), "b".into(), "c".into()]);
        let m = train(ModelKind::NnQ, &t, 3);
        let imp = importance(&m, &t);
        let n_bpred = imp.iter().filter(|i| i.name.starts_with("bpred")).count();
        assert_eq!(n_bpred, 1, "indicator columns must merge: {imp:?}");
    }

    #[test]
    fn importances_are_sorted_descending() {
        let t = table(90);
        let m = train(ModelKind::LrB, &t, 4);
        let imp = importance(&m, &t);
        for w in imp.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
