//! Error estimation by repeated 50 % cross-validation — the §3.3 protocol.
//!
//! "Clementine randomly divides the training data into two equal sets,
//! using half of the data to train the model and the other half to
//! simulate. … we have generated five random sets of 50 % of the training
//! data, and calculated the error the model achieves on these data subsets
//! using cross-validation. We have taken the average predictive error on
//! these data sets, as well as the maximum of the error. … in general
//! maximum gives a closer estimate."

use crate::model::{train, ModelKind};
use crate::table::Table;
use linalg::dist::{child_seed, permutation, seeded_rng};
use linalg::stats::mape;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Number of random splits (the paper uses five).
pub const N_SPLITS: usize = 5;

/// Estimated predictive error from the five-split protocol.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ErrorEstimate {
    /// Mean of the five per-split mean-percentage errors.
    pub mean: f64,
    /// Maximum of the five — the estimate the paper reports and the
    /// *select* method uses.
    pub max: f64,
}

/// Run the §3.3 estimation for one model kind on a training table.
///
/// Each split trains on a random half and measures the mean percentage
/// error on the complementary half. Splits run in parallel.
pub fn estimate_error(kind: ModelKind, table: &Table, seed: u64) -> ErrorEstimate {
    let _span = telemetry::span!("estimate", model = kind.abbrev());
    let n = table.n_rows();
    assert!(n >= 8, "need at least 8 rows for 50% cross-validation");
    let errors: Vec<f64> = (0..N_SPLITS)
        .into_par_iter()
        .map(|s| {
            let _span = telemetry::span!("fold", model = kind.abbrev(), split = s);
            let split_seed = child_seed(seed, 0xCE + s as u64);
            let mut rng = seeded_rng(split_seed);
            let perm = permutation(&mut rng, n);
            let half = n / 2;
            let train_rows = &perm[..half];
            let test_rows = &perm[half..];
            let tr = table.select_rows(train_rows);
            let te = table.select_rows(test_rows);
            let model = train(kind, &tr, child_seed(split_seed, 1));
            let preds = model.predict(&te);
            let (m, _) = mape(&preds, te.target());
            m
        })
        .collect();
    let mean = linalg::stats::mean(&errors);
    let max = errors.iter().cloned().fold(0.0f64, f64::max);
    ErrorEstimate { mean, max }
}

/// Estimate every candidate's error and return `(kind, estimate)` pairs,
/// candidates in parallel.
pub fn estimate_all(
    kinds: &[ModelKind],
    table: &Table,
    seed: u64,
) -> Vec<(ModelKind, ErrorEstimate)> {
    kinds
        .par_iter()
        .map(|&k| {
            (
                k,
                estimate_error(
                    k,
                    table,
                    child_seed(seed, k.abbrev().len() as u64 * 31 + k as u64),
                ),
            )
        })
        .collect()
}

/// The paper's *select* method: the candidate with the smallest maximum
/// estimated error.
pub fn select_best(estimates: &[(ModelKind, ErrorEstimate)]) -> ModelKind {
    assert!(!estimates.is_empty(), "select_best: no candidates");
    estimates
        .iter()
        .min_by(|a, b| a.1.max.partial_cmp(&b.1.max).expect("NaN error estimate"))
        .expect("nonempty")
        .0
}

/// Generalized k-fold cross-validation (an extension of the paper's fixed
/// 2-fold×5-repeat protocol): partition the rows into `k` folds, train on
/// k−1, test on the held-out fold, and average the mean percentage errors.
pub fn kfold_error(kind: ModelKind, table: &Table, k: usize, seed: u64) -> f64 {
    let n = table.n_rows();
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(n >= 2 * k, "need at least 2 rows per fold");
    let mut rng = seeded_rng(child_seed(seed, 0xF0_1D));
    let perm = permutation(&mut rng, n);
    let errors: Vec<f64> = (0..k)
        .into_par_iter()
        .map(|fold| {
            let _span = telemetry::span!("fold", model = kind.abbrev(), fold = fold, k = k);
            let test_rows: Vec<usize> = perm
                .iter()
                .enumerate()
                .filter(|(i, _)| i % k == fold)
                .map(|(_, &r)| r)
                .collect();
            let train_rows: Vec<usize> = perm
                .iter()
                .enumerate()
                .filter(|(i, _)| i % k != fold)
                .map(|(_, &r)| r)
                .collect();
            let tr = table.select_rows(&train_rows);
            let te = table.select_rows(&test_rows);
            let model = train(kind, &tr, child_seed(seed, fold as u64));
            let (m, _) = mape(&model.predict(&te), te.target());
            m
        })
        .collect();
    linalg::stats::mean(&errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> Table {
        let xs: Vec<f64> = (0..n).map(|i| (i % 23) as f64).collect();
        let zs: Vec<f64> = (0..n).map(|i| ((i * 7) % 19) as f64).collect();
        let y: Vec<f64> = xs
            .iter()
            .zip(&zs)
            .map(|(x, z)| 50.0 + 3.0 * x - z)
            .collect();
        let mut t = Table::new();
        t.add_numeric("x", xs).add_numeric("z", zs).set_target(y);
        t
    }

    #[test]
    fn linear_data_gives_tiny_estimated_error_for_lr() {
        let t = table(100);
        let est = estimate_error(ModelKind::LrE, &t, 1);
        assert!(est.mean < 0.5, "mean {}", est.mean);
        assert!(est.max < 1.0, "max {}", est.max);
        assert!(est.max >= est.mean);
    }

    #[test]
    fn estimates_are_deterministic() {
        let t = table(80);
        let a = estimate_error(ModelKind::LrB, &t, 9);
        let b = estimate_error(ModelKind::LrB, &t, 9);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.max, b.max);
    }

    #[test]
    fn select_best_picks_lowest_max() {
        let ests = vec![
            (
                ModelKind::LrE,
                ErrorEstimate {
                    mean: 2.0,
                    max: 4.0,
                },
            ),
            (
                ModelKind::NnE,
                ErrorEstimate {
                    mean: 2.5,
                    max: 3.0,
                },
            ),
            (
                ModelKind::NnS,
                ErrorEstimate {
                    mean: 1.0,
                    max: 5.0,
                },
            ),
        ];
        assert_eq!(select_best(&ests), ModelKind::NnE);
    }

    #[test]
    fn kfold_error_is_small_on_linear_data() {
        let t = table(90);
        let err = kfold_error(ModelKind::LrE, &t, 5, 7);
        assert!(err < 0.5, "5-fold LR error on linear data: {err}");
    }

    #[test]
    fn kfold_is_deterministic() {
        let t = table(60);
        assert_eq!(
            kfold_error(ModelKind::LrB, &t, 3, 1),
            kfold_error(ModelKind::LrB, &t, 3, 1)
        );
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn kfold_rejects_k1() {
        let t = table(60);
        let _ = kfold_error(ModelKind::LrE, &t, 1, 0);
    }

    #[test]
    fn select_prefers_lr_on_linear_data() {
        let t = table(100);
        let ests = estimate_all(&[ModelKind::LrE, ModelKind::NnS], &t, 3);
        assert_eq!(select_best(&ests), ModelKind::LrE);
    }
}
