//! Error estimation by repeated 50 % cross-validation — the §3.3 protocol.
//!
//! "Clementine randomly divides the training data into two equal sets,
//! using half of the data to train the model and the other half to
//! simulate. … we have generated five random sets of 50 % of the training
//! data, and calculated the error the model achieves on these data subsets
//! using cross-validation. We have taken the average predictive error on
//! these data sets, as well as the maximum of the error. … in general
//! maximum gives a closer estimate."

use crate::gramcache::LrGramCache;
use crate::model::{try_train_cached, ModelKind};
use crate::table::Table;
use fault::{Error, Result};
use linalg::dist::{child_seed, permutation, seeded_rng};
use linalg::stats::mape;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Number of random splits (the paper uses five).
pub(crate) const N_SPLITS: usize = 5;

/// Estimated predictive error from the five-split protocol.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ErrorEstimate {
    /// Mean of the five per-split mean-percentage errors.
    pub mean: f64,
    /// Maximum of the five — the estimate the paper reports and the
    /// *select* method uses.
    pub max: f64,
}

/// A candidate model dropped from a selection set, with the reason — the
/// §3.3 *select* method degrades gracefully instead of poisoning the run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dropped {
    /// The candidate that failed.
    pub kind: ModelKind,
    /// Error kind tag (`diverged`, `degenerate`, `singular`, …).
    pub reason: String,
    /// Full error message.
    pub detail: String,
}

/// Run the §3.3 estimation for one model kind on a training table.
///
/// Infallible-signature wrapper over [`try_estimate_error`]; panics on
/// its error paths. Pipeline code uses the fallible form.
pub fn estimate_error(kind: ModelKind, table: &Table, seed: u64) -> ErrorEstimate {
    match try_estimate_error(kind, table, seed) {
        Ok(est) => est,
        Err(e) => panic!("estimate_error {}: {e}", kind.abbrev()),
    }
}

/// Fallible §3.3 estimation: each split trains on a random half and
/// measures the mean percentage error on the complementary half, splits
/// in parallel. A failed split fit (diverged, singular, degenerate) fails
/// the whole estimate — the candidate is then dropped by
/// [`estimate_all_fallible`] with the reason recorded.
pub fn try_estimate_error(kind: ModelKind, table: &Table, seed: u64) -> Result<ErrorEstimate> {
    let _span = telemetry::span!("estimate", model = kind.abbrev());
    let n = table.n_rows();
    if n < 8 {
        return Err(Error::degenerate(format!(
            "need at least 8 rows for 50% cross-validation, got {n}"
        )));
    }
    // One unscaled full-table Gram shared by every split: each fold's
    // statistics are derived by held-out-row subtraction + rescaling
    // instead of re-accumulating from the fold's rows.
    let cache = if kind.is_linear() {
        LrGramCache::new(table)
    } else {
        None
    };
    let errors: Vec<Result<f64>> = (0..N_SPLITS)
        .into_par_iter()
        .map(|s| {
            let _span = telemetry::span!("fold", model = kind.abbrev(), split = s);
            let split_seed = child_seed(seed, 0xCE + s as u64);
            let mut rng = seeded_rng(split_seed);
            let perm = permutation(&mut rng, n);
            let half = n / 2;
            let train_rows = &perm[..half];
            let test_rows = &perm[half..];
            let tr = table.select_rows(train_rows);
            let te = table.select_rows(test_rows);
            let t_fit = telemetry::enabled().then(std::time::Instant::now);
            let model = try_train_cached(
                kind,
                &tr,
                child_seed(split_seed, 1),
                cache.as_ref(),
                test_rows,
            )?;
            if let Some(t) = t_fit {
                telemetry::hist_observe_ns("train/fold_fit_ns", t.elapsed());
            }
            let preds = model.predict(&te);
            let (m, _) = mape(&preds, te.target());
            Ok(m)
        })
        .collect();
    let errors = errors.into_iter().collect::<Result<Vec<f64>>>()?;
    let mean = linalg::stats::mean(&errors);
    let max = errors.iter().cloned().fold(0.0f64, f64::max);
    if !max.is_finite() {
        return Err(Error::degenerate(format!(
            "{}: cross-validation produced a non-finite error estimate",
            kind.abbrev()
        )));
    }
    Ok(ErrorEstimate { mean, max })
}

/// Estimate every candidate's error and return `(kind, estimate)` pairs,
/// candidates in parallel.
///
/// Panics if any candidate fails; [`estimate_all_fallible`] records
/// failures instead.
pub fn estimate_all(
    kinds: &[ModelKind],
    table: &Table,
    seed: u64,
) -> Vec<(ModelKind, ErrorEstimate)> {
    kinds
        .par_iter()
        .map(|&k| {
            (
                k,
                estimate_error(
                    k,
                    table,
                    child_seed(seed, k.abbrev().len() as u64 * 31 + k as u64),
                ),
            )
        })
        .collect()
}

/// Estimate every candidate, degrading gracefully: a candidate whose
/// estimation fails is moved to the dropped list with its reason
/// (telemetry point `select/drop_model`) instead of failing the run —
/// mirroring how the paper's select falls back to the next-best model.
pub fn estimate_all_fallible(
    kinds: &[ModelKind],
    table: &Table,
    seed: u64,
) -> (Vec<(ModelKind, ErrorEstimate)>, Vec<Dropped>) {
    let results: Vec<(ModelKind, Result<ErrorEstimate>)> = kinds
        .par_iter()
        .map(|&k| {
            (
                k,
                try_estimate_error(
                    k,
                    table,
                    child_seed(seed, k.abbrev().len() as u64 * 31 + k as u64),
                ),
            )
        })
        .collect();
    let mut estimates = Vec::new();
    let mut dropped = Vec::new();
    for (kind, r) in results {
        match r {
            Ok(est) => estimates.push((kind, est)),
            Err(e) => {
                telemetry::point!(
                    "select/drop_model",
                    model = kind.abbrev(),
                    reason = e.kind()
                );
                dropped.push(Dropped {
                    kind,
                    reason: e.kind().to_string(),
                    detail: e.to_string(),
                });
            }
        }
    }
    (estimates, dropped)
}

/// The paper's *select* method: the candidate with the smallest maximum
/// estimated error.
///
/// Panicking wrapper over [`try_select_best`].
pub fn select_best(estimates: &[(ModelKind, ErrorEstimate)]) -> ModelKind {
    match try_select_best(estimates) {
        Ok(kind) => kind,
        Err(e) => panic!("select_best: {e}"),
    }
}

/// Fallible *select*: candidates with non-finite max estimates are
/// ignored; if none remain, [`Error::NoViableModel`] lists every
/// candidate with why it was unusable.
pub fn try_select_best(estimates: &[(ModelKind, ErrorEstimate)]) -> Result<ModelKind> {
    let viable = estimates
        .iter()
        .filter(|(_, est)| est.max.is_finite())
        .min_by(|a, b| a.1.max.total_cmp(&b.1.max));
    match viable {
        Some((kind, _)) => Ok(*kind),
        None => Err(Error::NoViableModel {
            reasons: estimates
                .iter()
                .map(|(k, est)| {
                    (
                        k.abbrev().to_string(),
                        format!("non-finite max error estimate ({})", est.max),
                    )
                })
                .collect(),
        }),
    }
}

/// Generalized k-fold cross-validation (an extension of the paper's fixed
/// 2-fold×5-repeat protocol): partition the rows into `k` folds, train on
/// k−1, test on the held-out fold, and average the mean percentage errors.
///
/// Infallible-signature wrapper over [`try_kfold_error`]; panics on its
/// error paths (invalid `k`, too few rows, failed fold fits). Pipeline
/// code uses the fallible form.
pub fn kfold_error(kind: ModelKind, table: &Table, k: usize, seed: u64) -> f64 {
    match try_kfold_error(kind, table, k, seed) {
        Ok(err) => err,
        Err(e) => panic!("kfold_error {}: {e}", kind.abbrev()),
    }
}

/// Fallible k-fold cross-validation. Precondition violations surface as
/// [`Error::InvalidInput`] instead of panicking; a failed fold fit
/// propagates its typed error. Linear folds score candidates against the
/// shared full-table Gram ([`LrGramCache`]) — each fold holds out only
/// `n/k` rows, so deriving its statistics by subtraction is ~k× cheaper
/// than re-accumulating them.
pub fn try_kfold_error(kind: ModelKind, table: &Table, k: usize, seed: u64) -> Result<f64> {
    let n = table.n_rows();
    if k < 2 {
        return Err(Error::invalid(format!("k-fold needs k >= 2, got {k}")));
    }
    if n < 2 * k {
        return Err(Error::invalid(format!(
            "k-fold needs at least 2 rows per fold: {n} rows for k = {k}"
        )));
    }
    let cache = if kind.is_linear() {
        LrGramCache::new(table)
    } else {
        None
    };
    let mut rng = seeded_rng(child_seed(seed, 0xF0_1D));
    let perm = permutation(&mut rng, n);
    let errors: Vec<Result<f64>> = (0..k)
        .into_par_iter()
        .map(|fold| {
            let _span = telemetry::span!("fold", model = kind.abbrev(), fold = fold, k = k);
            let test_rows: Vec<usize> = perm
                .iter()
                .enumerate()
                .filter(|(i, _)| i % k == fold)
                .map(|(_, &r)| r)
                .collect();
            let train_rows: Vec<usize> = perm
                .iter()
                .enumerate()
                .filter(|(i, _)| i % k != fold)
                .map(|(_, &r)| r)
                .collect();
            let tr = table.select_rows(&train_rows);
            let te = table.select_rows(&test_rows);
            let t_fit = telemetry::enabled().then(std::time::Instant::now);
            let model = try_train_cached(
                kind,
                &tr,
                child_seed(seed, fold as u64),
                cache.as_ref(),
                &test_rows,
            )?;
            if let Some(t) = t_fit {
                telemetry::hist_observe_ns("train/fold_fit_ns", t.elapsed());
            }
            let (m, _) = mape(&model.predict(&te), te.target());
            Ok(m)
        })
        .collect();
    let errors = errors.into_iter().collect::<Result<Vec<f64>>>()?;
    Ok(linalg::stats::mean(&errors))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> Table {
        let xs: Vec<f64> = (0..n).map(|i| (i % 23) as f64).collect();
        let zs: Vec<f64> = (0..n).map(|i| ((i * 7) % 19) as f64).collect();
        let y: Vec<f64> = xs
            .iter()
            .zip(&zs)
            .map(|(x, z)| 50.0 + 3.0 * x - z)
            .collect();
        let mut t = Table::new();
        t.add_numeric("x", xs).add_numeric("z", zs).set_target(y);
        t
    }

    #[test]
    fn linear_data_gives_tiny_estimated_error_for_lr() {
        let t = table(100);
        let est = estimate_error(ModelKind::LrE, &t, 1);
        assert!(est.mean < 0.5, "mean {}", est.mean);
        assert!(est.max < 1.0, "max {}", est.max);
        assert!(est.max >= est.mean);
    }

    #[test]
    fn estimates_are_deterministic() {
        let t = table(80);
        let a = estimate_error(ModelKind::LrB, &t, 9);
        let b = estimate_error(ModelKind::LrB, &t, 9);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.max, b.max);
    }

    #[test]
    fn select_best_picks_lowest_max() {
        let ests = vec![
            (
                ModelKind::LrE,
                ErrorEstimate {
                    mean: 2.0,
                    max: 4.0,
                },
            ),
            (
                ModelKind::NnE,
                ErrorEstimate {
                    mean: 2.5,
                    max: 3.0,
                },
            ),
            (
                ModelKind::NnS,
                ErrorEstimate {
                    mean: 1.0,
                    max: 5.0,
                },
            ),
        ];
        assert_eq!(select_best(&ests), ModelKind::NnE);
    }

    #[test]
    fn estimate_all_fallible_records_dropped_candidates() {
        // 6 rows cannot support 50% cross-validation: every candidate is
        // dropped with a recorded reason instead of panicking.
        let t = table(6);
        let (ests, dropped) = estimate_all_fallible(&[ModelKind::LrE, ModelKind::NnS], &t, 1);
        assert!(ests.is_empty());
        assert_eq!(dropped.len(), 2);
        for d in &dropped {
            assert_eq!(d.reason, "degenerate");
            assert!(d.detail.contains("8 rows"), "{}", d.detail);
        }
    }

    #[test]
    fn try_select_best_skips_non_finite_and_reports_no_viable() {
        let nan_est = ErrorEstimate {
            mean: f64::NAN,
            max: f64::NAN,
        };
        let good = ErrorEstimate {
            mean: 2.0,
            max: 3.0,
        };
        let picked =
            try_select_best(&[(ModelKind::LrE, nan_est), (ModelKind::NnE, good)]).expect("viable");
        assert_eq!(picked, ModelKind::NnE);
        match try_select_best(&[(ModelKind::LrE, nan_est)]) {
            Err(fault::Error::NoViableModel { reasons }) => {
                assert_eq!(reasons.len(), 1);
                assert_eq!(reasons[0].0, "LR-E");
            }
            other => panic!("expected NoViableModel, got {other:?}"),
        }
    }

    #[test]
    fn kfold_error_is_small_on_linear_data() {
        let t = table(90);
        let err = kfold_error(ModelKind::LrE, &t, 5, 7);
        assert!(err < 0.5, "5-fold LR error on linear data: {err}");
    }

    #[test]
    fn kfold_is_deterministic() {
        let t = table(60);
        assert_eq!(
            kfold_error(ModelKind::LrB, &t, 3, 1),
            kfold_error(ModelKind::LrB, &t, 3, 1)
        );
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn kfold_rejects_k1() {
        let t = table(60);
        let _ = kfold_error(ModelKind::LrE, &t, 1, 0);
    }

    #[test]
    fn try_kfold_reports_invalid_input_instead_of_panicking() {
        let t = table(60);
        match try_kfold_error(ModelKind::LrE, &t, 1, 0) {
            Err(fault::Error::InvalidInput { detail }) => {
                assert!(detail.contains("k >= 2"), "{detail}");
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }
        let tiny = table(7);
        match try_kfold_error(ModelKind::LrE, &tiny, 4, 0) {
            Err(fault::Error::InvalidInput { detail }) => {
                assert!(detail.contains("2 rows per fold"), "{detail}");
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }
    }

    /// The shared-Gram fold statistics must not change what CV measures:
    /// every fold model equals one trained directly on the fold's rows.
    #[test]
    fn cached_folds_match_direct_training() {
        use crate::model::try_train;
        use linalg::dist::{child_seed, permutation, seeded_rng};
        let t = table(80);
        for kind in [ModelKind::LrS, ModelKind::LrF, ModelKind::LrB] {
            let seed = 11;
            let est = try_estimate_error(kind, &t, seed).expect("estimate");
            // Re-run the split protocol without the cache.
            let n = t.n_rows();
            let mut errors = Vec::new();
            for s in 0..N_SPLITS {
                let split_seed = child_seed(seed, 0xCE + s as u64);
                let mut rng = seeded_rng(split_seed);
                let perm = permutation(&mut rng, n);
                let half = n / 2;
                let tr = t.select_rows(&perm[..half]);
                let te = t.select_rows(&perm[half..]);
                let model = try_train(kind, &tr, child_seed(split_seed, 1)).expect("direct train");
                let (m, _) = mape(&model.predict(&te), te.target());
                errors.push(m);
            }
            let direct_max = errors.iter().cloned().fold(0.0f64, f64::max);
            assert!(
                (est.max - direct_max).abs() <= 1e-9 * (1.0 + direct_max),
                "{}: cached {} vs direct {direct_max}",
                kind.abbrev(),
                est.max
            );
        }
    }

    #[test]
    fn select_prefers_lr_on_linear_data() {
        let t = table(100);
        let ests = estimate_all(&[ModelKind::LrE, ModelKind::NnS], &t, 3);
        assert_eq!(select_best(&ests), ModelKind::LrE);
    }
}
