//! Versioned, self-describing model artifacts.
//!
//! The paper's economics only work if a trained surrogate outlives the
//! process that trained it: §4.2 predicts 95–99 % of a 4608-point design
//! space from a 1–5 % sample, so the expensive part is training once —
//! every later query should be a cheap artifact load plus a forward pass.
//! This module is the persistence half of that bargain: a
//! [`ModelArtifact`] captures a [`TrainedModel`] (linear fits with their
//! selected-term metadata, or the full MLP topology and weights) together
//! with the [`TableSchema`] of the table it was trained on, so a serving
//! process can validate incoming configurations without ever seeing the
//! training data.
//!
//! ## On-disk format (`.ppmodel`)
//!
//! Two newline-terminated JSON lines, mirroring the checkpoint idiom:
//!
//! ```text
//! {"type":"perfpredict-model","format_version":1,"kind":"NN-E",
//!  "payload_bytes":N,"checksum":"fnv1a64:<16 hex digits>"}
//! <payload: one JSON object of exactly N bytes>
//! ```
//!
//! The header is self-describing (readable with `head -1`), the checksum
//! is FNV-1a 64 over the payload bytes, and `payload_bytes` makes
//! truncation detectable without parsing. Every corruption mode —
//! truncated payload, flipped byte, future `format_version`, malformed
//! structure — surfaces as a typed [`Error::Artifact`] (exit code 4,
//! like its checkpoint sibling), never a panic.
//!
//! Floating-point values are written with Rust's shortest round-trip
//! `Display` and parsed back with `str::parse::<f64>`, so a load →
//! predict is bit-identical to the in-memory model (pinned by proptests
//! in `tests/artifact_roundtrip.rs`). Non-finite values are rejected at
//! save time — they have no JSON representation and no place in a
//! servable model.

use crate::linreg::LinearFit;
use crate::model::{Estimator, ModelKind, TrainedModel};
use crate::nn::{Layer, Mlp};
use crate::prep::{Encoding, FeatureInfo, FeaturePlan, Preprocessor};
use crate::table::{Column, Table};
use fault::{Error, Result};
use telemetry::json::{self, JsonObject, Value};

/// Current artifact format version. Readers accept this version only;
/// anything newer is a typed error telling the operator to upgrade.
pub(crate) const FORMAT_VERSION: u64 = 1;

/// Cap on the per-column observed-value list stored in a
/// [`TableSchema`] — enough for every lattice the paper sweeps, bounded
/// for free-form numeric columns.
pub(crate) const DOMAIN_CAP: usize = 64;

/// FNV-1a 64-bit hash — the artifact checksum. Not cryptographic; it
/// exists to catch torn writes and bit rot, same as the checkpoint
/// layer's truncation tolerance catches killed processes.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Schema of one predictor column, as seen at training time.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSchema {
    /// Numeric column, with up to [`DOMAIN_CAP`] distinct observed
    /// values (sorted) for workload generation and diagnostics.
    Numeric {
        /// Column name.
        name: String,
        /// Sorted distinct values observed in training (capped).
        observed: Vec<f64>,
    },
    /// Boolean flag column.
    Flag {
        /// Column name.
        name: String,
    },
    /// Categorical column with its full level vocabulary; request
    /// validation maps level names back to the training codes.
    Categorical {
        /// Column name.
        name: String,
        /// Level names, indexed by code — the training table's list.
        levels: Vec<String>,
    },
}

impl ColumnSchema {
    /// The column name.
    pub fn name(&self) -> &str {
        match self {
            ColumnSchema::Numeric { name, .. }
            | ColumnSchema::Flag { name }
            | ColumnSchema::Categorical { name, .. } => name,
        }
    }
}

/// The predictor schema of a training table: column names, types, and
/// categorical vocabularies, in training order. Prediction-time tables
/// must reproduce this structure exactly — the fitted preprocessor
/// addresses columns by index.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Columns in training order.
    pub columns: Vec<ColumnSchema>,
}

impl TableSchema {
    /// Capture the schema of a training table.
    pub(crate) fn of(table: &Table) -> TableSchema {
        let columns = table
            .names()
            .iter()
            .zip(table.columns())
            .map(|(name, col)| match col {
                Column::Numeric(v) => {
                    let mut observed: Vec<f64> = v.clone();
                    observed.sort_by(f64::total_cmp);
                    observed.dedup();
                    observed.truncate(DOMAIN_CAP);
                    ColumnSchema::Numeric {
                        name: name.clone(),
                        observed,
                    }
                }
                Column::Flag(_) => ColumnSchema::Flag { name: name.clone() },
                Column::Categorical { levels, .. } => ColumnSchema::Categorical {
                    name: name.clone(),
                    levels: levels.clone(),
                },
            })
            .collect();
        TableSchema { columns }
    }

    /// Column schema by name.
    pub fn column(&self, name: &str) -> Option<&ColumnSchema> {
        self.columns.iter().find(|c| c.name() == name)
    }
}

/// A trained model plus the schema needed to validate and encode raw
/// configurations at prediction time — the unit of model serving.
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    /// The trained model (preprocessor + estimator).
    pub model: TrainedModel,
    /// Schema of the training table.
    pub schema: TableSchema,
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Render a finite f64, or a typed error naming where the bad value sits.
fn num(label: &str, x: f64, what: &str) -> Result<String> {
    if x.is_finite() {
        Ok(json::number(x))
    } else {
        Err(Error::artifact(
            label,
            format!("non-finite value in {what}: {x}"),
        ))
    }
}

fn num_array(label: &str, xs: &[f64], what: &str) -> Result<String> {
    let mut parts = Vec::with_capacity(xs.len());
    for x in xs {
        parts.push(num(label, *x, what)?);
    }
    Ok(format!("[{}]", parts.join(",")))
}

fn str_array(xs: &[String]) -> String {
    let parts: Vec<String> = xs
        .iter()
        .map(|s| format!("\"{}\"", json::escape(s)))
        .collect();
    format!("[{}]", parts.join(","))
}

fn uint_array(xs: &[usize]) -> String {
    let parts: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", parts.join(","))
}

fn bool_array(xs: &[bool]) -> String {
    let parts: Vec<&str> = xs
        .iter()
        .map(|&x| if x { "true" } else { "false" })
        .collect();
    format!("[{}]", parts.join(","))
}

fn encode_schema(label: &str, schema: &TableSchema) -> Result<String> {
    let mut cols = Vec::with_capacity(schema.columns.len());
    for c in &schema.columns {
        let obj = match c {
            ColumnSchema::Numeric { name, observed } => JsonObject::new()
                .str("name", name)
                .str("type", "numeric")
                .raw(
                    "observed",
                    &num_array(label, observed, "schema observed values")?,
                ),
            ColumnSchema::Flag { name } => JsonObject::new().str("name", name).str("type", "flag"),
            ColumnSchema::Categorical { name, levels } => JsonObject::new()
                .str("name", name)
                .str("type", "categorical")
                .raw("levels", &str_array(levels)),
        };
        cols.push(obj.finish());
    }
    Ok(format!("[{}]", cols.join(",")))
}

fn encode_prep(label: &str, prep: &Preprocessor) -> Result<String> {
    let features: Vec<String> = {
        let mut out = Vec::with_capacity(prep.features.len());
        for f in &prep.features {
            out.push(
                JsonObject::new()
                    .str("name", &f.name)
                    .uint("source_column", f.source_column as u64)
                    .raw("min", &num(label, f.min, "feature min")?)
                    .raw("max", &num(label, f.max, "feature max")?)
                    .finish(),
            );
        }
        out
    };
    let plan: Vec<String> = prep
        .plan
        .iter()
        .map(|p| match *p {
            FeaturePlan::Numeric { col } => JsonObject::new()
                .str("op", "numeric")
                .uint("col", col as u64)
                .finish(),
            FeaturePlan::Flag { col } => JsonObject::new()
                .str("op", "flag")
                .uint("col", col as u64)
                .finish(),
            FeaturePlan::Code { col } => JsonObject::new()
                .str("op", "code")
                .uint("col", col as u64)
                .finish(),
            FeaturePlan::Indicator { col, level } => JsonObject::new()
                .str("op", "indicator")
                .uint("col", col as u64)
                .uint("level", level as u64)
                .finish(),
        })
        .collect();
    Ok(JsonObject::new()
        .str(
            "encoding",
            match prep.encoding {
                Encoding::NumericCoded => "numeric_coded",
                Encoding::OneHot => "one_hot",
            },
        )
        .raw("features", &format!("[{}]", features.join(",")))
        .raw("plan", &format!("[{}]", plan.join(",")))
        .raw("dropped", &str_array(&prep.dropped))
        .raw("target_min", &num(label, prep.target_min, "target_min")?)
        .raw("target_max", &num(label, prep.target_max, "target_max")?)
        .finish())
}

fn encode_estimator(label: &str, est: &Estimator) -> Result<String> {
    match est {
        Estimator::Linear(fit) => Ok(JsonObject::new()
            .str("type", "linear")
            .raw("active", &uint_array(&fit.active))
            .raw("intercept", &num(label, fit.intercept, "intercept")?)
            .raw("coefs", &num_array(label, &fit.coefs, "coefficients")?)
            .raw("rss", &num(label, fit.rss, "rss")?)
            .raw("tss", &num(label, fit.tss, "tss")?)
            .uint("n", fit.n as u64)
            .raw("std_betas", &num_array(label, &fit.std_betas, "std_betas")?)
            .raw("p_values", &num_array(label, &fit.p_values, "p_values")?)
            .finish()),
        Estimator::Network(net) => {
            let mut layers = Vec::with_capacity(net.layers.len());
            for (li, layer) in net.layers.iter().enumerate() {
                let mut rows = Vec::with_capacity(layer.w.len());
                for ws in &layer.w {
                    rows.push(num_array(label, ws, &format!("layer {li} weights"))?);
                }
                layers.push(
                    JsonObject::new()
                        .raw("w", &format!("[{}]", rows.join(",")))
                        .raw(
                            "b",
                            &num_array(label, &layer.b, &format!("layer {li} biases"))?,
                        )
                        .finish(),
                );
            }
            Ok(JsonObject::new()
                .str("type", "network")
                .raw("dead_inputs", &bool_array(&net.dead_inputs))
                .raw("layers", &format!("[{}]", layers.join(",")))
                .finish())
        }
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

fn bad(label: &str, detail: impl Into<String>) -> Error {
    Error::artifact(label, detail)
}

fn get<'a>(label: &str, v: &'a Value, key: &str) -> Result<&'a Value> {
    v.get(key)
        .ok_or_else(|| bad(label, format!("payload missing field '{key}'")))
}

fn get_str<'a>(label: &str, v: &'a Value, key: &str) -> Result<&'a str> {
    get(label, v, key)?
        .as_str()
        .ok_or_else(|| bad(label, format!("field '{key}' is not a string")))
}

fn get_f64(label: &str, v: &Value, key: &str) -> Result<f64> {
    get(label, v, key)?
        .as_f64()
        .ok_or_else(|| bad(label, format!("field '{key}' is not a finite number")))
}

fn get_usize(label: &str, v: &Value, key: &str) -> Result<usize> {
    get(label, v, key)?
        .as_u64()
        .and_then(|x| usize::try_from(x).ok())
        .ok_or_else(|| {
            bad(
                label,
                format!("field '{key}' is not a non-negative integer in range"),
            )
        })
}

fn get_arr<'a>(label: &str, v: &'a Value, key: &str) -> Result<&'a [Value]> {
    match get(label, v, key)? {
        Value::Arr(items) => Ok(items),
        _ => Err(bad(label, format!("field '{key}' is not an array"))),
    }
}

fn f64_vec(label: &str, items: &[Value], what: &str) -> Result<Vec<f64>> {
    items
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| bad(label, format!("non-numeric entry in {what}")))
        })
        .collect()
}

fn usize_vec(label: &str, items: &[Value], what: &str) -> Result<Vec<usize>> {
    items
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|x| usize::try_from(x).ok())
                .ok_or_else(|| bad(label, format!("non-integer entry in {what}")))
        })
        .collect()
}

fn string_vec(label: &str, items: &[Value], what: &str) -> Result<Vec<String>> {
    items
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| bad(label, format!("non-string entry in {what}")))
        })
        .collect()
}

fn bool_vec(label: &str, items: &[Value], what: &str) -> Result<Vec<bool>> {
    items
        .iter()
        .map(|v| match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(bad(label, format!("non-boolean entry in {what}"))),
        })
        .collect()
}

fn decode_schema(label: &str, v: &Value) -> Result<TableSchema> {
    let cols = get_arr(label, v, "columns")?;
    let mut columns = Vec::with_capacity(cols.len());
    for c in cols {
        let name = get_str(label, c, "name")?.to_string();
        let col = match get_str(label, c, "type")? {
            "numeric" => ColumnSchema::Numeric {
                name,
                observed: f64_vec(label, get_arr(label, c, "observed")?, "observed values")?,
            },
            "flag" => ColumnSchema::Flag { name },
            "categorical" => ColumnSchema::Categorical {
                name,
                levels: string_vec(label, get_arr(label, c, "levels")?, "levels")?,
            },
            other => return Err(bad(label, format!("unknown column type '{other}'"))),
        };
        columns.push(col);
    }
    Ok(TableSchema { columns })
}

fn decode_prep(label: &str, v: &Value) -> Result<Preprocessor> {
    let encoding = match get_str(label, v, "encoding")? {
        "numeric_coded" => Encoding::NumericCoded,
        "one_hot" => Encoding::OneHot,
        other => return Err(bad(label, format!("unknown encoding '{other}'"))),
    };
    let mut features = Vec::new();
    for f in get_arr(label, v, "features")? {
        features.push(FeatureInfo {
            name: get_str(label, f, "name")?.to_string(),
            source_column: get_usize(label, f, "source_column")?,
            min: get_f64(label, f, "min")?,
            max: get_f64(label, f, "max")?,
        });
    }
    let mut plan = Vec::new();
    for p in get_arr(label, v, "plan")? {
        let col = get_usize(label, p, "col")?;
        plan.push(match get_str(label, p, "op")? {
            "numeric" => FeaturePlan::Numeric { col },
            "flag" => FeaturePlan::Flag { col },
            "code" => FeaturePlan::Code { col },
            "indicator" => FeaturePlan::Indicator {
                col,
                level: get_usize(label, p, "level")? as u32,
            },
            other => return Err(bad(label, format!("unknown plan op '{other}'"))),
        });
    }
    if plan.len() != features.len() {
        return Err(bad(
            label,
            format!(
                "plan/feature length mismatch: {} plan steps vs {} features",
                plan.len(),
                features.len()
            ),
        ));
    }
    Ok(Preprocessor {
        encoding,
        features,
        plan,
        dropped: string_vec(label, get_arr(label, v, "dropped")?, "dropped columns")?,
        target_min: get_f64(label, v, "target_min")?,
        target_max: get_f64(label, v, "target_max")?,
    })
}

fn decode_estimator(label: &str, v: &Value) -> Result<Estimator> {
    match get_str(label, v, "type")? {
        "linear" => {
            let coefs = f64_vec(label, get_arr(label, v, "coefs")?, "coefs")?;
            let active = usize_vec(label, get_arr(label, v, "active")?, "active")?;
            if coefs.len() != active.len() {
                return Err(bad(
                    label,
                    format!(
                        "linear fit has {} coefficients for {} active terms",
                        coefs.len(),
                        active.len()
                    ),
                ));
            }
            Ok(Estimator::Linear(LinearFit {
                active,
                intercept: get_f64(label, v, "intercept")?,
                coefs,
                rss: get_f64(label, v, "rss")?,
                tss: get_f64(label, v, "tss")?,
                n: get_usize(label, v, "n")?,
                std_betas: f64_vec(label, get_arr(label, v, "std_betas")?, "std_betas")?,
                p_values: f64_vec(label, get_arr(label, v, "p_values")?, "p_values")?,
            }))
        }
        "network" => {
            let dead_inputs = bool_vec(label, get_arr(label, v, "dead_inputs")?, "dead_inputs")?;
            let mut layers: Vec<Layer> = Vec::new();
            for (li, l) in get_arr(label, v, "layers")?.iter().enumerate() {
                let mut w = Vec::new();
                for row in get_arr(label, l, "w")? {
                    let Value::Arr(items) = row else {
                        return Err(bad(label, format!("layer {li} weight row is not an array")));
                    };
                    w.push(f64_vec(label, items, "weights")?);
                }
                let b = f64_vec(label, get_arr(label, l, "b")?, "biases")?;
                if w.len() != b.len() {
                    return Err(bad(
                        label,
                        format!("layer {li}: {} weight rows vs {} biases", w.len(), b.len()),
                    ));
                }
                let inputs = w.first().map_or(0, Vec::len);
                if w.iter().any(|r| r.len() != inputs) {
                    return Err(bad(label, format!("layer {li}: ragged weight rows")));
                }
                let expected = match layers.last() {
                    Some(prev) => prev.w.len(),
                    None => dead_inputs.len(),
                };
                if inputs != expected {
                    return Err(bad(
                        label,
                        format!("layer {li}: expects {expected} inputs, weights have {inputs}"),
                    ));
                }
                let vw = vec![vec![0.0; inputs]; w.len()];
                let vb = vec![0.0; b.len()];
                layers.push(Layer { w, b, vw, vb });
            }
            if layers.is_empty() {
                return Err(bad(label, "network has no layers"));
            }
            if layers.last().map(|l| l.w.len()) != Some(1) {
                return Err(bad(
                    label,
                    "network output layer must have exactly one unit",
                ));
            }
            Ok(Estimator::Network(Mlp {
                layers,
                dead_inputs,
            }))
        }
        other => Err(bad(label, format!("unknown estimator type '{other}'"))),
    }
}

// ---------------------------------------------------------------------
// Artifact assembly
// ---------------------------------------------------------------------

impl ModelArtifact {
    /// Pair a trained model with the schema of its training table.
    pub fn new(model: TrainedModel, schema: TableSchema) -> ModelArtifact {
        ModelArtifact { model, schema }
    }

    /// Shorthand: capture the schema from the training table directly.
    pub fn from_training(model: TrainedModel, training_table: &Table) -> ModelArtifact {
        let schema = TableSchema::of(training_table);
        ModelArtifact { model, schema }
    }

    /// Serialize to the two-line on-disk format.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let label = "<in-memory>";
        let payload = JsonObject::new()
            .str("kind", self.model.kind.abbrev())
            .raw(
                "schema",
                &JsonObject::new()
                    .raw("columns", &encode_schema(label, &self.schema)?)
                    .finish(),
            )
            .raw("prep", &encode_prep(label, &self.model.prep)?)
            .raw(
                "estimator",
                &encode_estimator(label, &self.model.estimator)?,
            )
            .finish();
        let header = JsonObject::new()
            .str("type", "perfpredict-model")
            .uint("format_version", FORMAT_VERSION)
            .str("kind", self.model.kind.abbrev())
            .uint("payload_bytes", payload.len() as u64)
            .str(
                "checksum",
                &format!("fnv1a64:{:016x}", fnv1a64(payload.as_bytes())),
            )
            .finish();
        let mut out = Vec::with_capacity(header.len() + payload.len() + 2);
        out.extend_from_slice(header.as_bytes());
        out.push(b'\n');
        out.extend_from_slice(payload.as_bytes());
        out.push(b'\n');
        Ok(out)
    }

    /// Deserialize from the two-line format. `label` names the source in
    /// error messages (a path, or `"<stdin>"`).
    pub fn from_bytes(label: &str, bytes: &[u8]) -> Result<ModelArtifact> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| bad(label, format!("artifact is not UTF-8: {e}")))?;
        let (header_line, rest) = text
            .split_once('\n')
            .ok_or_else(|| bad(label, "truncated: no header line"))?;
        let header =
            json::parse(header_line).map_err(|e| bad(label, format!("malformed header: {e}")))?;
        if get_str(label, &header, "type")? != "perfpredict-model" {
            return Err(bad(label, "not a perfpredict model artifact"));
        }
        let version = get(label, &header, "format_version")?
            .as_u64()
            .ok_or_else(|| bad(label, "format_version is not an integer"))?;
        if version > FORMAT_VERSION {
            return Err(bad(
                label,
                format!(
                    "format version {version} is newer than supported {FORMAT_VERSION} — \
                     upgrade perfpredict to read this artifact"
                ),
            ));
        }
        if version == 0 {
            return Err(bad(label, "format version 0 is not valid"));
        }
        let payload_bytes = get_usize(label, &header, "payload_bytes")?;
        let payload = rest.strip_suffix('\n').unwrap_or(rest);
        if payload.len() != payload_bytes {
            return Err(bad(
                label,
                format!(
                    "payload is {} bytes, header promises {payload_bytes} — truncated or corrupt",
                    payload.len()
                ),
            ));
        }
        let checksum = get_str(label, &header, "checksum")?;
        let want = checksum
            .strip_prefix("fnv1a64:")
            .ok_or_else(|| bad(label, format!("unknown checksum algorithm in '{checksum}'")))?;
        let got = format!("{:016x}", fnv1a64(payload.as_bytes()));
        if got != want {
            return Err(bad(
                label,
                format!("checksum mismatch: stored fnv1a64:{want}, computed fnv1a64:{got}"),
            ));
        }
        let body =
            json::parse(payload).map_err(|e| bad(label, format!("malformed payload: {e}")))?;
        let abbrev = get_str(label, &body, "kind")?;
        let kind = ModelKind::from_abbrev(abbrev)
            .ok_or_else(|| bad(label, format!("unknown model kind '{abbrev}'")))?;
        let header_kind = get_str(label, &header, "kind")?;
        if header_kind != abbrev {
            return Err(bad(
                label,
                format!("header kind '{header_kind}' disagrees with payload kind '{abbrev}'"),
            ));
        }
        let schema = decode_schema(label, get(label, &body, "schema")?)?;
        let prep = decode_prep(label, get(label, &body, "prep")?)?;
        let estimator = decode_estimator(label, get(label, &body, "estimator")?)?;
        match (&estimator, kind.is_linear()) {
            (Estimator::Linear(_), true) | (Estimator::Network(_), false) => {}
            _ => {
                return Err(bad(
                    label,
                    format!("estimator type does not match model kind {abbrev}"),
                ));
            }
        }
        Ok(ModelArtifact {
            model: TrainedModel {
                kind,
                prep,
                estimator,
            },
            schema,
        })
    }

    /// Write the artifact to `path`.
    pub fn save(&self, path: &str) -> Result<()> {
        let _span = telemetry::span!("artifact/save", kind = self.model.kind.abbrev());
        let bytes = self.to_bytes()?;
        std::fs::write(path, &bytes).map_err(|e| Error::io(path, e))?;
        telemetry::counter_add("artifact/saved", 1);
        Ok(())
    }

    /// Read an artifact from `path`.
    pub fn load(path: &str) -> Result<ModelArtifact> {
        let _span = telemetry::span!("artifact/load", path = path);
        let bytes = std::fs::read(path).map_err(|e| Error::io(path, e))?;
        let artifact = Self::from_bytes(path, &bytes)?;
        telemetry::counter_add("artifact/loaded", 1);
        Ok(artifact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::train;

    fn table(n: usize) -> Table {
        let speeds: Vec<f64> = (0..n).map(|i| 1000.0 + (i % 10) as f64 * 200.0).collect();
        let mems: Vec<f64> = (0..n)
            .map(|i| [266.0, 333.0, 400.0, 533.0][i % 4])
            .collect();
        let smt: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let bpred: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| 0.01 * speeds[i] + 0.002 * mems[i] + if smt[i] { 1.5 } else { 0.0 })
            .collect();
        let mut t = Table::new();
        t.add_numeric("speed", speeds)
            .add_numeric("mem_freq", mems)
            .add_flag("smt", smt)
            .add_categorical(
                "bpred",
                bpred,
                vec!["perfect".into(), "bimodal".into(), "gshare".into()],
            )
            .set_target(y);
        t
    }

    #[test]
    fn round_trip_preserves_predictions_linear_and_network() {
        let t = table(80);
        for kind in [ModelKind::LrB, ModelKind::NnQ] {
            let model = train(kind, &t, 7);
            let expect = model.predict(&t);
            let art = ModelArtifact::from_training(model, &t);
            let bytes = art.to_bytes().expect("serialize");
            let back = ModelArtifact::from_bytes("test", &bytes).expect("deserialize");
            assert_eq!(back.model.kind, kind);
            assert_eq!(back.schema, art.schema);
            assert_eq!(back.model.predict(&t), expect, "{}", kind.abbrev());
        }
    }

    #[test]
    fn schema_captures_types_and_levels() {
        let t = table(12);
        let s = TableSchema::of(&t);
        assert_eq!(s.columns.len(), 4);
        match s.column("bpred").expect("bpred present") {
            ColumnSchema::Categorical { levels, .. } => {
                assert_eq!(levels, &["perfect", "bimodal", "gshare"]);
            }
            other => panic!("bpred should be categorical, got {other:?}"),
        }
        match s.column("speed").expect("speed present") {
            ColumnSchema::Numeric { observed, .. } => {
                assert!(observed.len() <= DOMAIN_CAP);
                assert!(observed.windows(2).all(|w| w[0] < w[1]));
            }
            other => panic!("speed should be numeric, got {other:?}"),
        }
    }

    #[test]
    fn truncated_artifact_is_a_typed_error() {
        let t = table(40);
        let art = ModelArtifact::from_training(train(ModelKind::LrE, &t, 1), &t);
        let bytes = art.to_bytes().expect("serialize");
        for cut in [10, bytes.len() / 2, bytes.len() - 5] {
            let err = ModelArtifact::from_bytes("cut", &bytes[..cut]).expect_err("truncated");
            assert_eq!(err.kind(), "artifact", "cut={cut}: {err}");
        }
    }

    #[test]
    fn flipped_byte_is_a_checksum_error() {
        let t = table(40);
        let art = ModelArtifact::from_training(train(ModelKind::LrE, &t, 1), &t);
        let mut bytes = art.to_bytes().expect("serialize");
        // Flip a digit inside the payload (header stays intact).
        let header_end = bytes.iter().position(|&b| b == b'\n').expect("newline");
        let pos = bytes[header_end..]
            .iter()
            .position(|&b| b.is_ascii_digit())
            .map(|i| header_end + i)
            .expect("digit in payload");
        bytes[pos] = if bytes[pos] == b'9' { b'8' } else { b'9' };
        let err = ModelArtifact::from_bytes("flip", &bytes).expect_err("corrupt");
        assert_eq!(err.kind(), "artifact");
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn future_format_version_is_rejected() {
        let t = table(40);
        let art = ModelArtifact::from_training(train(ModelKind::LrE, &t, 1), &t);
        let bytes = art.to_bytes().expect("serialize");
        let text = String::from_utf8(bytes).expect("utf8");
        let bumped = text.replacen(
            &format!("\"format_version\":{FORMAT_VERSION}"),
            &format!("\"format_version\":{}", FORMAT_VERSION + 1),
            1,
        );
        let err = ModelArtifact::from_bytes("future", bumped.as_bytes()).expect_err("future");
        assert_eq!(err.kind(), "artifact");
        assert!(err.to_string().contains("newer"), "{err}");
    }

    #[test]
    fn save_load_round_trips_on_disk() {
        let dir = std::env::temp_dir().join("perfpredict-artifact-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("m.ppmodel").to_string_lossy().into_owned();
        let t = table(60);
        let model = train(ModelKind::NnS, &t, 3);
        let expect = model.predict(&t);
        ModelArtifact::from_training(model, &t)
            .save(&path)
            .expect("save");
        let back = ModelArtifact::load(&path).expect("load");
        assert_eq!(back.model.predict(&t), expect);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
