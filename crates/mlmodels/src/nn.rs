//! Feed-forward neural network (multilayer perceptron) with
//! backpropagation, the engine behind the six NN training methods.
//!
//! Architecture follows §3.2: an input layer (the scaled predictors), one
//! or more hidden layers of tanh units, and a linear output unit predicting
//! the 0–1-scaled response. Training is stochastic gradient descent with
//! momentum — "backpropagation procedure, variation of steepest descent" —
//! with optional learning-rate decay and weight decay. The prune-based
//! drivers in [`crate::methods`] need structural surgery (removing hidden
//! units, silencing inputs), which the network supports directly.

use fault::{Error, Result};
use linalg::dist::{sample_normal, seeded_rng};
use linalg::Matrix;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// When `PERFPREDICT_NN_SCALAR=1`, prediction and the full-batch gradient
/// run the historical per-sample scalar loops instead of the batched
/// matrix kernels. The two paths are bit-identical by construction (tests
/// pin this); the flag exists as the equivalence oracle and as the
/// baseline side of the NN benchmarks.
fn scalar_oracle() -> bool {
    std::env::var_os("PERFPREDICT_NN_SCALAR").is_some_and(|v| v == "1")
}

/// Training algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrainAlgo {
    /// Online stochastic gradient descent with momentum — classic
    /// backpropagation, the NN-S "constant learning rate" mode.
    Sgd,
    /// Full-batch iRProp− (resilient backpropagation): per-weight adaptive
    /// step sizes driven by gradient signs. Far more robust than SGD on
    /// the small training samples the sampled-DSE study produces, and the
    /// kind of batch trainer Clementine-era tools shipped.
    Rprop,
}

/// Gradient-descent hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Which optimizer drives the weight updates.
    pub algo: TrainAlgo,
    /// Initial learning rate (SGD) / initial step size (RProp).
    pub learning_rate: f64,
    /// Momentum coefficient (SGD only).
    pub momentum: f64,
    /// Passes over the training data (SGD) or batch iterations (RProp).
    pub epochs: usize,
    /// Multiplicative learning-rate decay per epoch (1.0 = constant rate,
    /// the NN-S behaviour; SGD only).
    pub lr_decay: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Shuffling / init seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            algo: TrainAlgo::Rprop,
            learning_rate: 0.15,
            momentum: 0.9,
            epochs: 200,
            lr_decay: 0.995,
            weight_decay: 1e-5,
            seed: 1,
        }
    }
}

/// One dense layer: `w[out][in]` weights plus biases.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Layer {
    pub(crate) w: Vec<Vec<f64>>,
    pub(crate) b: Vec<f64>,
    pub(crate) vw: Vec<Vec<f64>>,
    pub(crate) vb: Vec<f64>,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Self {
        // Xavier-style init scaled by fan-in.
        let sd = (1.0 / inputs.max(1) as f64).sqrt();
        Layer {
            w: (0..outputs)
                .map(|_| (0..inputs).map(|_| sample_normal(rng, 0.0, sd)).collect())
                .collect(),
            b: vec![0.0; outputs],
            vw: vec![vec![0.0; inputs]; outputs],
            vb: vec![0.0; outputs],
        }
    }

    fn outputs(&self) -> usize {
        self.w.len()
    }

    fn inputs(&self) -> usize {
        self.w.first().map_or(0, |r| r.len())
    }
}

/// The multilayer perceptron. Hidden activations are tanh; the single
/// output is linear over the 0–1-scaled target.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    pub(crate) layers: Vec<Layer>,
    /// Inputs silenced by pruning (weights zeroed and frozen).
    pub(crate) dead_inputs: Vec<bool>,
}

impl Mlp {
    /// Build a network: `inputs -> hidden[0] -> … -> hidden[k] -> 1`.
    pub fn new(inputs: usize, hidden: &[usize], seed: u64) -> Self {
        assert!(inputs > 0, "Mlp needs at least one input");
        assert!(
            hidden.iter().all(|&h| h > 0),
            "hidden layers must be non-empty"
        );
        let mut rng = seeded_rng(seed);
        let mut sizes = vec![inputs];
        sizes.extend_from_slice(hidden);
        sizes.push(1);
        let layers = sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();
        Mlp {
            layers,
            dead_inputs: vec![false; inputs],
        }
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.layers[0].inputs()
    }

    /// Hidden-layer sizes.
    pub(crate) fn hidden_sizes(&self) -> Vec<usize> {
        self.layers[..self.layers.len() - 1]
            .iter()
            .map(|l| l.outputs())
            .collect()
    }

    /// Total trainable weights (for complexity reporting).
    pub fn n_weights(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.outputs() * (l.inputs() + 1))
            .sum()
    }

    /// Whether an input has been pruned.
    pub fn input_is_dead(&self, i: usize) -> bool {
        self.dead_inputs[i]
    }

    /// The dead-input mask, aligned with the input features.
    pub fn dead_inputs(&self) -> &[bool] {
        &self.dead_inputs
    }

    /// Layer count (hidden layers plus the output layer).
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Weight matrix of layer `l` as an `outputs x inputs` [`Matrix`] —
    /// the shape [`Matrix::affine_nt`] consumes. Compiled serve
    /// predictors prebuild these once instead of per forward pass.
    pub fn layer_weights(&self, l: usize) -> Matrix {
        Matrix::from_rows(&self.layers[l].w)
    }

    /// Bias vector of layer `l`.
    pub fn layer_bias(&self, l: usize) -> &[f64] {
        &self.layers[l].b
    }

    /// Forward pass with a width check; narrow or wide rows are a typed
    /// `InvalidInput` instead of a panic (or, worse, a silently truncated
    /// zip in release builds).
    pub fn try_forward(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.inputs() {
            return Err(Error::invalid(format!(
                "network expects {} input features, got {}",
                self.inputs(),
                x.len()
            )));
        }
        Ok(self.forward(x))
    }

    /// Forward pass; returns the (scaled) prediction.
    ///
    /// The row width must match [`Self::inputs`]; use
    /// [`Self::try_forward`] on untrusted widths.
    pub fn forward(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.inputs());
        let mut act: Vec<f64> = x.to_vec();
        for (d, a) in self.dead_inputs.iter().zip(act.iter_mut()) {
            if *d {
                *a = 0.0;
            }
        }
        for (li, layer) in self.layers.iter().enumerate() {
            let last = li == self.layers.len() - 1;
            let mut next = Vec::with_capacity(layer.outputs());
            for (ws, &b) in layer.w.iter().zip(&layer.b) {
                let mut s = b;
                for (w, a) in ws.iter().zip(&act) {
                    s += w * a;
                }
                next.push(if last { s } else { s.tanh() });
            }
            act = next;
        }
        act[0]
    }

    /// Batched forward pass over every row at once. Returns the per-layer
    /// activation matrices: `acts[0]` is the (dead-input-masked) input,
    /// `acts[l]` the output of layer `l-1`, `acts.last()` the `n x 1`
    /// prediction column. Each element accumulates bias-first in input
    /// order via [`Matrix::affine_nt`], so every value is bit-identical to
    /// the scalar [`Mlp::forward`] on the same row.
    fn forward_batch(&self, x: &Matrix) -> Vec<Matrix> {
        debug_assert_eq!(x.cols(), self.inputs());
        let mut a0 = x.clone();
        if self.dead_inputs.iter().any(|&d| d) {
            for i in 0..a0.rows() {
                for (v, &d) in a0.row_mut(i).iter_mut().zip(&self.dead_inputs) {
                    if d {
                        *v = 0.0;
                    }
                }
            }
        }
        let mut acts: Vec<Matrix> = Vec::with_capacity(self.layers.len() + 1);
        acts.push(a0);
        for (li, layer) in self.layers.iter().enumerate() {
            let last = li == self.layers.len() - 1;
            let w = Matrix::from_rows(&layer.w);
            let mut z = acts[li].affine_nt(&w, &layer.b);
            if !last {
                for v in z.as_mut_slice() {
                    *v = v.tanh();
                }
            }
            acts.push(z);
        }
        acts
    }

    /// Predict every row of a design matrix, rejecting width mismatches
    /// with a typed error instead of panicking (batched kernels; the
    /// scalar per-row path behind `PERFPREDICT_NN_SCALAR=1` is
    /// bit-identical).
    pub fn try_predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if x.cols() != self.inputs() {
            return Err(Error::invalid(format!(
                "network expects {} input features, got a design matrix with {} columns",
                self.inputs(),
                x.cols()
            )));
        }
        if scalar_oracle() {
            return Ok((0..x.rows()).map(|i| self.forward(x.row(i))).collect());
        }
        let out = self.forward_batch(x).pop().expect("output layer");
        Ok(out.as_slice().to_vec())
    }

    /// Predict every row of a design matrix.
    ///
    /// Panics on a feature-width mismatch; use [`Self::try_predict`] on
    /// untrusted widths.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        match self.try_predict(x) {
            Ok(y) => y,
            Err(e) => panic!("Mlp::predict: {e}"),
        }
    }

    /// Root-mean-square error on (x, y).
    pub fn rmse(&self, x: &Matrix, y: &[f64]) -> f64 {
        let n = x.rows();
        assert_eq!(n, y.len(), "rmse: design/target length mismatch");
        let se: f64 = self
            .predict(x)
            .iter()
            .zip(y)
            .map(|(p, t)| {
                let e = p - t;
                e * e
            })
            .sum();
        (se / n as f64).sqrt()
    }

    /// One epoch of online backpropagation over a permutation of the rows.
    fn epoch(&mut self, x: &Matrix, y: &[f64], lr: f64, cfg: &TrainConfig, rng: &mut StdRng) {
        let order = linalg::dist::permutation(rng, x.rows());
        // Reusable activation buffers: acts[l] = output of layer l-1
        // (acts[0] = input).
        for &row in &order {
            let input: Vec<f64> = x
                .row(row)
                .iter()
                .zip(&self.dead_inputs)
                .map(|(&v, &d)| if d { 0.0 } else { v })
                .collect();
            // Forward, keeping activations.
            let mut acts: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len() + 1);
            acts.push(input);
            for (li, layer) in self.layers.iter().enumerate() {
                let last = li == self.layers.len() - 1;
                let prev = &acts[li];
                let mut out = Vec::with_capacity(layer.outputs());
                for (ws, &b) in layer.w.iter().zip(&layer.b) {
                    let mut s = b;
                    for (w, a) in ws.iter().zip(prev) {
                        s += w * a;
                    }
                    out.push(if last { s } else { s.tanh() });
                }
                acts.push(out);
            }

            // Backward.
            let y_hat = acts.last().expect("output layer")[0];
            // dE/dout for squared error (linear output), clipped so one
            // bad sample cannot detonate the weights.
            let mut delta: Vec<f64> = vec![(y_hat - y[row]).clamp(-4.0, 4.0)];
            for li in (0..self.layers.len()).rev() {
                let prev_act_owned;
                let prev_act: &[f64] = {
                    prev_act_owned = acts[li].clone();
                    &prev_act_owned
                };
                // Compute delta for the previous layer before mutating.
                let mut prev_delta = vec![0.0; self.layers[li].inputs()];
                {
                    let layer = &self.layers[li];
                    for (o, &d) in delta.iter().enumerate() {
                        for (pd, &w) in prev_delta.iter_mut().zip(&layer.w[o]) {
                            *pd += d * w;
                        }
                    }
                    if li > 0 {
                        // tanh' = 1 - a².
                        for (pd, &a) in prev_delta.iter_mut().zip(prev_act) {
                            *pd *= 1.0 - a * a;
                        }
                    }
                }
                // Gradient step with momentum.
                let layer = &mut self.layers[li];
                for (o, &d) in delta.iter().enumerate() {
                    #[allow(clippy::needless_range_loop)] // j indexes w, vw, prev_act, dead_inputs
                    for j in 0..layer.w[o].len() {
                        if li == 0 && self.dead_inputs[j] {
                            continue;
                        }
                        let g =
                            (d * prev_act[j] + cfg.weight_decay * layer.w[o][j]).clamp(-8.0, 8.0);
                        layer.vw[o][j] = cfg.momentum * layer.vw[o][j] - lr * g;
                        layer.w[o][j] += layer.vw[o][j];
                    }
                    layer.vb[o] = cfg.momentum * layer.vb[o] - lr * d;
                    layer.b[o] += layer.vb[o];
                }
                delta = prev_delta;
            }
        }
    }

    /// Accumulate the full-batch squared-error gradient. Returns
    /// per-layer (dW, db) in the same shapes as the weights. Dispatches
    /// to the batched matrix-kernel path unless the scalar oracle flag is
    /// set; both produce bit-identical gradients.
    fn batch_gradient(&self, x: &Matrix, y: &[f64]) -> Vec<(Vec<Vec<f64>>, Vec<f64>)> {
        if scalar_oracle() {
            self.batch_gradient_scalar(x, y)
        } else {
            self.batch_gradient_batched(x, y)
        }
    }

    /// Matrix-form full-batch gradient: one batched forward, then per
    /// layer a `deltaᵀ·activations` product ([`Matrix::matmul_tn`]) for
    /// dW, a column sum for db, and a `delta·W` product for the upstream
    /// delta. Every kernel accumulates in row-ascending order — exactly
    /// the order [`Mlp::batch_gradient_scalar`] adds per-sample
    /// contributions — so the results match the oracle bit for bit.
    fn batch_gradient_batched(&self, x: &Matrix, y: &[f64]) -> Vec<(Vec<Vec<f64>>, Vec<f64>)> {
        let n = x.rows() as f64;
        let acts = self.forward_batch(x);
        let y_hat = acts.last().expect("output layer");
        let mut delta = Matrix::from_fn(x.rows(), 1, |i, _| (y_hat[(i, 0)] - y[i]) / n);
        let mut grads: Vec<(Vec<Vec<f64>>, Vec<f64>)> = self
            .layers
            .iter()
            .map(|_| (Vec::new(), Vec::new()))
            .collect();
        for li in (0..self.layers.len()).rev() {
            let layer = &self.layers[li];
            let prev = &acts[li];
            let dw = delta.matmul_tn(prev);
            let db: Vec<f64> = (0..layer.outputs())
                .map(|o| {
                    let mut s = 0.0;
                    for i in 0..delta.rows() {
                        s += delta[(i, o)];
                    }
                    s
                })
                .collect();
            grads[li] = (
                (0..layer.outputs()).map(|o| dw.row(o).to_vec()).collect(),
                db,
            );
            if li > 0 {
                let w = Matrix::from_rows(&layer.w);
                let mut pd = delta.matmul(&w);
                for i in 0..pd.rows() {
                    // tanh' = 1 - a².
                    for (v, &a) in pd.row_mut(i).iter_mut().zip(prev.row(i)) {
                        *v *= 1.0 - a * a;
                    }
                }
                delta = pd;
            }
        }
        grads
    }

    /// Per-sample scalar gradient accumulation — the historical hot loop,
    /// kept verbatim as the equivalence oracle for the batched path.
    fn batch_gradient_scalar(&self, x: &Matrix, y: &[f64]) -> Vec<(Vec<Vec<f64>>, Vec<f64>)> {
        let mut grads: Vec<(Vec<Vec<f64>>, Vec<f64>)> = self
            .layers
            .iter()
            .map(|l| {
                (
                    vec![vec![0.0; l.inputs()]; l.outputs()],
                    vec![0.0; l.outputs()],
                )
            })
            .collect();
        let n = x.rows() as f64;
        #[allow(clippy::needless_range_loop)] // row indexes both x and y
        for row in 0..x.rows() {
            let input: Vec<f64> = x
                .row(row)
                .iter()
                .zip(&self.dead_inputs)
                .map(|(&v, &d)| if d { 0.0 } else { v })
                .collect();
            let mut acts: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len() + 1);
            acts.push(input);
            for (li, layer) in self.layers.iter().enumerate() {
                let last = li == self.layers.len() - 1;
                let prev = &acts[li];
                let mut out = Vec::with_capacity(layer.outputs());
                for (ws, &b) in layer.w.iter().zip(&layer.b) {
                    let mut sum = b;
                    for (w, a) in ws.iter().zip(prev) {
                        sum += w * a;
                    }
                    out.push(if last { sum } else { sum.tanh() });
                }
                acts.push(out);
            }
            let y_hat = acts.last().expect("output layer")[0];
            let mut delta: Vec<f64> = vec![(y_hat - y[row]) / n];
            for li in (0..self.layers.len()).rev() {
                let prev_act = &acts[li];
                let layer = &self.layers[li];
                let mut prev_delta = vec![0.0; layer.inputs()];
                for (o, &d) in delta.iter().enumerate() {
                    for (j, pd) in prev_delta.iter_mut().enumerate() {
                        *pd += d * layer.w[o][j];
                    }
                    for (j, &a) in prev_act.iter().enumerate() {
                        grads[li].0[o][j] += d * a;
                    }
                    grads[li].1[o] += d;
                }
                if li > 0 {
                    for (pd, &a) in prev_delta.iter_mut().zip(prev_act) {
                        *pd *= 1.0 - a * a;
                    }
                }
                delta = prev_delta;
            }
        }
        grads
    }

    /// iRProp− training loop: per-weight step sizes grow (×1.2) while the
    /// gradient keeps its sign and shrink (×0.5) when it flips.
    fn train_rprop(&mut self, x: &Matrix, y: &[f64], cfg: &TrainConfig) {
        const ETA_PLUS: f64 = 1.2;
        const ETA_MINUS: f64 = 0.5;
        const STEP_MAX: f64 = 1.0;
        const STEP_MIN: f64 = 1e-9;
        let init = cfg.learning_rate.clamp(1e-4, 0.5);
        let mut steps: Vec<(Vec<Vec<f64>>, Vec<f64>)> = self
            .layers
            .iter()
            .map(|l| {
                (
                    vec![vec![init; l.inputs()]; l.outputs()],
                    vec![init; l.outputs()],
                )
            })
            .collect();
        let mut prev: Vec<(Vec<Vec<f64>>, Vec<f64>)> = self
            .layers
            .iter()
            .map(|l| {
                (
                    vec![vec![0.0; l.inputs()]; l.outputs()],
                    vec![0.0; l.outputs()],
                )
            })
            .collect();
        let trace = telemetry::enabled();
        for e in 0..cfg.epochs {
            if trace {
                telemetry::counter_add("train/epochs", 1);
                if e % 100 == 99 {
                    let loss = self.rmse(x, y);
                    telemetry::point!("train/epoch_loss", epoch = e + 1, loss = loss);
                }
            }
            let t_epoch = trace.then(std::time::Instant::now);
            let mut grads = self.batch_gradient(x, y);
            // Weight decay folds into the gradient.
            if cfg.weight_decay > 0.0 {
                for (li, layer) in self.layers.iter().enumerate() {
                    for o in 0..layer.outputs() {
                        for j in 0..layer.inputs() {
                            grads[li].0[o][j] += cfg.weight_decay * layer.w[o][j];
                        }
                    }
                }
            }
            for (li, layer) in self.layers.iter_mut().enumerate() {
                for o in 0..layer.outputs() {
                    for j in 0..layer.w[o].len() {
                        if li == 0 && self.dead_inputs[j] {
                            continue;
                        }
                        let g = grads[li].0[o][j];
                        let pg = prev[li].0[o][j];
                        let step = &mut steps[li].0[o][j];
                        if pg * g > 0.0 {
                            *step = (*step * ETA_PLUS).min(STEP_MAX);
                        } else if pg * g < 0.0 {
                            *step = (*step * ETA_MINUS).max(STEP_MIN);
                            prev[li].0[o][j] = 0.0;
                            continue; // iRProp−: skip update after sign flip
                        }
                        layer.w[o][j] -= g.signum() * *step;
                        prev[li].0[o][j] = g;
                    }
                    let g = grads[li].1[o];
                    let pg = prev[li].1[o];
                    let step = &mut steps[li].1[o];
                    if pg * g > 0.0 {
                        *step = (*step * ETA_PLUS).min(STEP_MAX);
                    } else if pg * g < 0.0 {
                        *step = (*step * ETA_MINUS).max(STEP_MIN);
                        prev[li].1[o] = 0.0;
                        continue;
                    }
                    layer.b[o] -= g.signum() * *step;
                    prev[li].1[o] = g;
                }
            }
            if let Some(t) = t_epoch {
                telemetry::hist_observe_ns("train/epoch_ns", t.elapsed());
            }
        }
    }

    /// Train with the configured algorithm. Returns the final training
    /// RMSE.
    ///
    /// Infallible-signature wrapper over [`Mlp::try_train`]: divergence
    /// after all retries yields the (non-finite) final loss, matching the
    /// historical contract; degenerate input panics. Pipeline code uses
    /// [`Mlp::try_train`].
    pub fn train(&mut self, x: &Matrix, y: &[f64], cfg: &TrainConfig) -> f64 {
        match self.try_train(x, y, cfg) {
            Ok(rmse) => rmse,
            Err(Error::Diverged { loss, .. }) => loss,
            Err(e) => panic!("Mlp::train: {e}"),
        }
    }

    /// Fallible training with divergence guards.
    ///
    /// Non-finite inputs or targets are rejected up front with
    /// [`Error::DegenerateData`] — they would otherwise poison every
    /// weight on the first update. If training leaves the finite domain,
    /// the network re-initializes with reseeded weights and retries (SGD
    /// additionally quarters its learning rate each time); every retry is
    /// recorded with a `train/retry` telemetry point. When the retry
    /// budget is exhausted the final non-finite loss is reported as
    /// [`Error::Diverged`].
    pub fn try_train(&mut self, x: &Matrix, y: &[f64], cfg: &TrainConfig) -> Result<f64> {
        if x.rows() != y.len() {
            return Err(Error::degenerate(format!(
                "design/target mismatch: {} rows vs {} targets",
                x.rows(),
                y.len()
            )));
        }
        if x.cols() != self.inputs() {
            return Err(Error::degenerate(format!(
                "input width mismatch: {} columns for a {}-input network",
                x.cols(),
                self.inputs()
            )));
        }
        if x.rows() == 0 {
            return Err(Error::degenerate("no training rows"));
        }
        for i in 0..x.rows() {
            if x.row(i).iter().any(|v| !v.is_finite()) {
                return Err(Error::degenerate(format!(
                    "training row {i} contains a non-finite value"
                )));
            }
        }
        if let Some(i) = y.iter().position(|v| !v.is_finite()) {
            return Err(Error::degenerate(format!(
                "training target {i} is non-finite"
            )));
        }

        let hidden = self.hidden_sizes();
        let dead: Vec<usize> = (0..self.inputs())
            .filter(|&i| self.dead_inputs[i])
            .collect();
        let trace = telemetry::enabled();

        // Divergence is not only NaN/Inf: saturated activations can bound
        // the gradients while the output weights blow up, leaving a
        // finite loss that is orders of magnitude beyond the target scale.
        let y_scale = y.iter().fold(0.0f64, |a, &v| a.max(v.abs())).max(1.0);
        let diverged = |rmse: f64| !rmse.is_finite() || rmse > 1e6 * y_scale;

        if cfg.algo == TrainAlgo::Rprop {
            // RProp's sign-based steps rarely diverge, but a pathological
            // initialization still can; reseed and retry a bounded number
            // of times before reporting divergence.
            const ATTEMPTS: usize = 3;
            for attempt in 0..ATTEMPTS {
                if attempt > 0 {
                    *self = Mlp::new(
                        x.cols(),
                        &hidden,
                        linalg::dist::child_seed(cfg.seed, 200 + attempt as u64),
                    );
                    for &d in &dead {
                        self.prune_input(d);
                    }
                }
                self.train_rprop(x, y, cfg);
                let rmse = self.rmse(x, y);
                if !diverged(rmse) {
                    return Ok(rmse);
                }
                telemetry::point!(
                    "train/retry",
                    algo = "rprop",
                    attempt = attempt + 1,
                    loss = rmse
                );
            }
            return Err(Error::Diverged {
                epoch: cfg.epochs * ATTEMPTS,
                loss: self.rmse(x, y),
            });
        }

        const ATTEMPTS: usize = 4;
        let mut lr0 = cfg.learning_rate;
        for attempt in 0..ATTEMPTS {
            let mut rng = seeded_rng(linalg::dist::child_seed(cfg.seed, attempt as u64));
            let mut lr = lr0;
            for e in 0..cfg.epochs {
                let t_epoch = trace.then(std::time::Instant::now);
                self.epoch(x, y, lr, cfg, &mut rng);
                lr *= cfg.lr_decay;
                if let Some(t) = t_epoch {
                    telemetry::hist_observe_ns("train/epoch_ns", t.elapsed());
                }
                if trace {
                    telemetry::counter_add("train/epochs", 1);
                    // Loss curve sampled every 100 epochs — each RMSE is a
                    // full forward pass, too costly to log per epoch.
                    if e % 100 == 99 {
                        let loss = self.rmse(x, y);
                        telemetry::point!("train/epoch_loss", epoch = e + 1, loss = loss);
                    }
                }
            }
            let rmse = self.rmse(x, y);
            if !diverged(rmse) {
                return Ok(rmse);
            }
            telemetry::point!(
                "train/retry",
                algo = "sgd",
                attempt = attempt + 1,
                loss = rmse
            );
            // Diverged: rebuild and slow down.
            *self = Mlp::new(
                x.cols(),
                &hidden,
                linalg::dist::child_seed(cfg.seed, 100 + attempt as u64),
            );
            for &d in &dead {
                self.prune_input(d);
            }
            lr0 *= 0.25;
        }
        Err(Error::Diverged {
            epoch: cfg.epochs * ATTEMPTS,
            loss: self.rmse(x, y),
        })
    }

    /// Magnitude of a hidden unit: sum of |outgoing weights| (pruning
    /// heuristic — a unit nothing listens to contributes nothing).
    pub(crate) fn hidden_unit_magnitude(&self, layer: usize, unit: usize) -> f64 {
        self.layers[layer + 1]
            .w
            .iter()
            .map(|row| row[unit].abs())
            .sum()
    }

    /// Remove one hidden unit (its row in `layer`, its column downstream).
    pub(crate) fn prune_hidden_unit(&mut self, layer: usize, unit: usize) {
        assert!(
            layer < self.layers.len() - 1,
            "cannot prune the output layer"
        );
        assert!(self.layers[layer].outputs() > 1, "layer would become empty");
        let l = &mut self.layers[layer];
        l.w.remove(unit);
        l.b.remove(unit);
        l.vw.remove(unit);
        l.vb.remove(unit);
        let next = &mut self.layers[layer + 1];
        for row in next.w.iter_mut() {
            row.remove(unit);
        }
        for row in next.vw.iter_mut() {
            row.remove(unit);
        }
    }

    /// Total |weight| fanning out of an input (input-importance heuristic).
    pub(crate) fn input_magnitude(&self, input: usize) -> f64 {
        if self.dead_inputs[input] {
            return 0.0;
        }
        self.layers[0].w.iter().map(|row| row[input].abs()).sum()
    }

    /// Silence an input: zero and freeze its weights.
    pub fn prune_input(&mut self, input: usize) {
        self.dead_inputs[input] = true;
        for row in self.layers[0].w.iter_mut() {
            row[input] = 0.0;
        }
        for row in self.layers[0].vw.iter_mut() {
            row[input] = 0.0;
        }
    }

    /// Count of live inputs.
    pub fn live_inputs(&self) -> usize {
        self.dead_inputs.iter().filter(|&&d| !d).count()
    }
}

/// Convenience: fresh random generator usable by callers that add noise to
/// seeds per restart.
pub(crate) fn restart_seed(base: u64, attempt: u64) -> u64 {
    linalg::dist::child_seed(base, attempt)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Nonlinear target: y = 0.5 + 0.3 sin(2π x0) + 0.2 x1² on [0,1].
    fn nonlinear_data(n: usize) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let a = (i % 37) as f64 / 37.0;
                let b = ((i * 11) % 23) as f64 / 23.0;
                vec![a, b]
            })
            .collect();
        let y = rows
            .iter()
            .map(|r| 0.5 + 0.3 * (2.0 * std::f64::consts::PI * r[0]).sin() + 0.2 * r[1] * r[1])
            .collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_linear_function() {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 10) as f64 / 10.0, (i % 7) as f64 / 7.0])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 0.2 + 0.5 * r[0] - 0.3 * r[1]).collect();
        let x = Matrix::from_rows(&rows);
        let mut net = Mlp::new(2, &[4], 7);
        let rmse = net.train(
            &x,
            &y,
            &TrainConfig {
                epochs: 300,
                ..Default::default()
            },
        );
        assert!(rmse < 0.02, "rmse {rmse}");
    }

    /// Regression (predict-path edge cases): a width mismatch used to
    /// panic in debug and silently truncate the zip in release; both
    /// are now a typed `InvalidInput` with expected-vs-got widths.
    #[test]
    fn width_mismatch_is_typed_invalid_input_not_panic() {
        let net = Mlp::new(4, &[3], 1);
        let e = net
            .try_forward(&[0.1, 0.2, 0.3])
            .expect_err("row too narrow");
        assert_eq!(e.kind(), "invalid");
        let msg = e.to_string();
        assert!(
            msg.contains("expects 4") && msg.contains("got 3"),
            "expected-vs-got widths in: {msg}"
        );
        let narrow = Matrix::from_rows(&[vec![0.1, 0.2, 0.3]]);
        let e = net.try_predict(&narrow).expect_err("matrix too narrow");
        assert_eq!(e.kind(), "invalid");
        // Exact-width inputs still predict, identically via both surfaces.
        let xs = [0.1, 0.2, 0.3, 0.4];
        let ok = net.try_forward(&xs).expect("full-width row");
        assert_eq!(ok.to_bits(), net.forward(&xs).to_bits());
    }

    #[test]
    fn learns_nonlinear_function_better_with_more_units() {
        let (x, y) = nonlinear_data(120);
        let mut small = Mlp::new(2, &[1], 3);
        let mut big = Mlp::new(2, &[12], 3);
        let cfg = TrainConfig {
            epochs: 400,
            ..Default::default()
        };
        let rmse_small = small.train(&x, &y, &cfg);
        let rmse_big = big.train(&x, &y, &cfg);
        assert!(
            rmse_big < rmse_small,
            "12 hidden ({rmse_big}) should beat 1 hidden ({rmse_small})"
        );
        assert!(rmse_big < 0.05, "big net rmse {rmse_big}");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (x, y) = nonlinear_data(60);
        let cfg = TrainConfig {
            epochs: 50,
            ..Default::default()
        };
        let mut a = Mlp::new(2, &[6], 9);
        let mut b = Mlp::new(2, &[6], 9);
        let ra = a.train(&x, &y, &cfg);
        let rb = b.train(&x, &y, &cfg);
        assert_eq!(ra, rb);
        assert_eq!(a.forward(&[0.3, 0.7]), b.forward(&[0.3, 0.7]));
    }

    #[test]
    fn prune_hidden_unit_shrinks_topology() {
        let mut net = Mlp::new(3, &[5], 11);
        assert_eq!(net.hidden_sizes(), vec![5]);
        net.prune_hidden_unit(0, 2);
        assert_eq!(net.hidden_sizes(), vec![4]);
        // Forward still works.
        let _ = net.forward(&[0.1, 0.2, 0.3]);
    }

    #[test]
    fn pruned_input_is_ignored() {
        let (x, y) = nonlinear_data(60);
        let mut net = Mlp::new(2, &[6], 13);
        net.train(
            &x,
            &y,
            &TrainConfig {
                epochs: 100,
                ..Default::default()
            },
        );
        net.prune_input(1);
        let p1 = net.forward(&[0.4, 0.0]);
        let p2 = net.forward(&[0.4, 0.9]);
        assert_eq!(p1, p2, "dead input must not affect the output");
        assert_eq!(net.live_inputs(), 1);
        assert_eq!(net.input_magnitude(1), 0.0);
    }

    #[test]
    fn dead_input_stays_dead_through_training() {
        let (x, y) = nonlinear_data(60);
        let mut net = Mlp::new(2, &[6], 17);
        net.prune_input(0);
        net.train(
            &x,
            &y,
            &TrainConfig {
                epochs: 50,
                ..Default::default()
            },
        );
        let p1 = net.forward(&[0.0, 0.5]);
        let p2 = net.forward(&[1.0, 0.5]);
        assert_eq!(p1, p2);
    }

    #[test]
    fn try_train_rejects_non_finite_data() {
        let (x, y) = nonlinear_data(20);
        let mut bad_y = y.clone();
        bad_y[5] = f64::NAN;
        let mut net = Mlp::new(2, &[4], 3);
        let cfg = TrainConfig {
            epochs: 10,
            ..Default::default()
        };
        assert!(matches!(
            net.try_train(&x, &bad_y, &cfg),
            Err(fault::Error::DegenerateData { .. })
        ));
        let mut bad_rows: Vec<Vec<f64>> = (0..x.rows()).map(|i| x.row(i).to_vec()).collect();
        bad_rows[2][1] = f64::INFINITY;
        let bad_x = Matrix::from_rows(&bad_rows);
        assert!(matches!(
            net.try_train(&bad_x, &y, &cfg),
            Err(fault::Error::DegenerateData { .. })
        ));
        // The guard must fire before any weight update corrupts the net.
        assert!(net.forward(&[0.3, 0.3]).is_finite());
    }

    #[test]
    fn batched_gradient_matches_scalar_oracle_bitwise() {
        let (x, y) = nonlinear_data(90);
        for hidden in [vec![6], vec![8, 4]] {
            let mut net = Mlp::new(2, &hidden, 21);
            net.prune_input(1); // exercise the dead-input mask too
            let fast = net.batch_gradient_batched(&x, &y);
            let slow = net.batch_gradient_scalar(&x, &y);
            assert_eq!(fast.len(), slow.len());
            for (li, ((fw, fb), (sw, sb))) in fast.iter().zip(&slow).enumerate() {
                for (o, (fr, sr)) in fw.iter().zip(sw).enumerate() {
                    for (j, (a, b)) in fr.iter().zip(sr).enumerate() {
                        assert!(a.to_bits() == b.to_bits(), "dW[{li}][{o}][{j}]: {a} vs {b}");
                    }
                }
                for (o, (a, b)) in fb.iter().zip(sb).enumerate() {
                    assert!(a.to_bits() == b.to_bits(), "db[{li}][{o}]: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn batched_predict_matches_scalar_forward_bitwise() {
        let (x, y) = nonlinear_data(70);
        let mut net = Mlp::new(2, &[7, 3], 31);
        net.train(
            &x,
            &y,
            &TrainConfig {
                epochs: 40,
                ..Default::default()
            },
        );
        let batched = net.predict(&x);
        for (i, &p) in batched.iter().enumerate() {
            let s = net.forward(x.row(i));
            assert!(p.to_bits() == s.to_bits(), "row {i}: {p} vs {s}");
        }
        assert_eq!(net.predict(&Matrix::zeros(0, 2)), Vec::<f64>::new());
    }

    #[test]
    fn n_weights_counts_structure() {
        let net = Mlp::new(4, &[3], 1);
        // (4+1)*3 + (3+1)*1 = 19.
        assert_eq!(net.n_weights(), 19);
    }

    #[test]
    fn two_hidden_layers_work() {
        let (x, y) = nonlinear_data(100);
        let mut net = Mlp::new(2, &[8, 4], 5);
        let rmse = net.train(
            &x,
            &y,
            &TrainConfig {
                epochs: 300,
                ..Default::default()
            },
        );
        assert!(rmse < 0.08, "deep rmse {rmse}");
        assert_eq!(net.hidden_sizes(), vec![8, 4]);
    }
}
