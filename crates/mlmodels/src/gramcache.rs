//! Shared-Gram cache for cross-validated linear-regression training.
//!
//! The §3.3 protocol trains the same LR model on many row subsets of one
//! table (five 50 % splits; k folds). Every fold's design matrix is a row
//! subset of the full table's design, differing only by the fold's
//! min–max feature scaling — so instead of re-accumulating `XᵀX`/`Xᵀy`
//! per fold (O(n·p²) each), [`LrGramCache`] accumulates the *unscaled*
//! full-table statistics once and derives each fold's statistics by
//!
//! 1. subtracting the held-out rows' outer products
//!    ([`linalg::gram::NormalEq::minus_rows`]), then
//! 2. applying the fold's min–max scaling as a congruence transform
//!    ([`linalg::gram::NormalEq::scaled`]) — O(p²), row-free.
//!
//! The derivation is only valid when the fold's preprocessing plan
//! matches the full table's (same features kept, same encoding). Folds
//! whose plan differs — e.g. a column constant within the fold but not
//! the full table — fall back to direct accumulation (`None`).

use crate::prep::{Encoding, Preprocessor};
use crate::table::Table;
use linalg::gram::NormalEq;
use linalg::Matrix;

/// Unscaled full-table sufficient statistics for LR cross-validation.
#[derive(Debug, Clone)]
pub struct LrGramCache {
    /// Plan fitted on the full table; folds must match it feature-for-feature.
    prep: Preprocessor,
    /// Unscaled encoded full design (one row per table row).
    v: Matrix,
    /// Raw target.
    y: Vec<f64>,
    /// Statistics of `[1 V]` against `y`.
    ne: NormalEq,
}

impl LrGramCache {
    /// Accumulate the full-table statistics. `None` when the table cannot
    /// support LR preprocessing at all (callers then train uncached and
    /// surface the usual typed errors).
    pub fn new(table: &Table) -> Option<LrGramCache> {
        table.try_validate().ok()?;
        let prep = Preprocessor::fit(table, Encoding::NumericCoded);
        let v = prep.encode_unscaled(table);
        let y = table.target().to_vec();
        let ne = NormalEq::try_from_design(&v, &y).ok()?;
        Some(LrGramCache { prep, v, y, ne })
    }

    /// Statistics for the fold that holds out `held_out` (full-table row
    /// indices) and preprocesses with `fold_prep`, or `None` when the
    /// fold's plan diverges from the full table's and the O(p²) derivation
    /// would describe the wrong design.
    pub(crate) fn normal_eq_for(
        &self,
        fold_prep: &Preprocessor,
        held_out: &[usize],
    ) -> Option<NormalEq> {
        if fold_prep.encoding() != Encoding::NumericCoded {
            return None;
        }
        let full = self.prep.features();
        let fold = fold_prep.features();
        if full.len() != fold.len()
            || full
                .iter()
                .zip(fold.iter())
                .any(|(a, b)| a.name != b.name || a.source_column != b.source_column)
        {
            return None;
        }
        let mins: Vec<f64> = fold.iter().map(|f| f.min).collect();
        let ranges: Vec<f64> = fold.iter().map(|f| f.max - f.min).collect();
        if ranges.iter().any(|&r| !r.is_finite() || r <= 0.0) {
            return None;
        }
        telemetry::counter_add("select/gram_reuse", 1);
        Some(
            self.ne
                .minus_rows(&self.v, &self.y, held_out)
                .scaled(&mins, &ranges),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::gram::NormalEq;

    fn table(n: usize) -> Table {
        let xs: Vec<f64> = (0..n).map(|i| (i % 23) as f64).collect();
        let zs: Vec<f64> = (0..n).map(|i| ((i * 7) % 19) as f64).collect();
        let y: Vec<f64> = xs
            .iter()
            .zip(&zs)
            .map(|(x, z)| 50.0 + 3.0 * x - z + 0.01 * (*x * *z).sin())
            .collect();
        let mut t = Table::new();
        t.add_numeric("x", xs).add_numeric("z", zs).set_target(y);
        t
    }

    #[test]
    fn derived_fold_statistics_match_direct_accumulation() {
        let t = table(40);
        let cache = LrGramCache::new(&t).expect("cache builds");
        let held_out: Vec<usize> = (0..40).filter(|i| i % 4 == 0).collect();
        let kept: Vec<usize> = (0..40).filter(|i| i % 4 != 0).collect();
        let sub = t.select_rows(&kept);
        let fold_prep = Preprocessor::fit(&sub, Encoding::NumericCoded);
        let derived = cache
            .normal_eq_for(&fold_prep, &held_out)
            .expect("plans match");
        let x = fold_prep.transform(&sub);
        let direct = NormalEq::from_design(&x, sub.target());
        assert_eq!(derived.n(), direct.n());
        for i in 0..=x.cols() {
            for j in 0..=x.cols() {
                let (a, b) = (derived.gram(i, j), direct.gram(i, j));
                assert!(
                    (a - b).abs() <= 1e-8 * (1.0 + b.abs()),
                    "G[{i}][{j}]: {a} vs {b}"
                );
            }
            let (a, b) = (derived.moment(i), direct.moment(i));
            assert!(
                (a - b).abs() <= 1e-8 * (1.0 + b.abs()),
                "c[{i}]: {a} vs {b}"
            );
        }
    }

    #[test]
    fn fold_with_divergent_plan_is_refused() {
        // Column `z` is constant on the kept rows but not the full table:
        // the fold's plan drops it, so the cached statistics don't apply.
        let mut t = Table::new();
        let n = 24;
        t.add_numeric("x", (0..n).map(|i| i as f64).collect())
            .add_numeric("z", (0..n).map(|i| if i < 4 { 1.0 } else { 7.0 }).collect())
            .set_target((0..n).map(|i| i as f64 * 2.0 + 1.0).collect());
        let cache = LrGramCache::new(&t).expect("cache builds");
        let held_out: Vec<usize> = (0..4).collect(); // removes all z variation
        let kept: Vec<usize> = (4..n).collect();
        let sub = t.select_rows(&kept);
        let fold_prep = Preprocessor::fit(&sub, Encoding::NumericCoded);
        assert!(cache.normal_eq_for(&fold_prep, &held_out).is_none());
    }
}
