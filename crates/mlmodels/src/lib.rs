//! `mlmodels` — the paper's predictive models, built from scratch.
//!
//! Section 3 of the paper uses nine models from SPSS Clementine plus one
//! Ipek-style baseline; this crate re-implements all of them over the
//! numerics in [`linalg`]:
//!
//! * **Linear regression** ([`linreg`], [`select`]) — ordinary least squares
//!   with four predictor-selection strategies: Enter (all predictors),
//!   Forward, Backward, and Stepwise, driven by partial-F tests with the
//!   SPSS default entry/removal p-values (0.05 / 0.10). Standardized beta
//!   coefficients are reported for the §4.4 importance discussion.
//! * **Neural networks** ([`nn`], [`methods`]) — a feed-forward multilayer
//!   perceptron trained by backpropagation with momentum, wrapped by six
//!   training drivers mirroring Clementine's: Quick (NN-Q), Dynamic (NN-D,
//!   grows the hidden layer), Multiple (NN-M, multi-start over topologies),
//!   Prune (NN-P), Exhaustive Prune (NN-E, the slow-and-thorough variant),
//!   and the Single-layer constant-learning-rate NN-S the paper compares to
//!   Ipek et al.
//! * **Data preparation** ([`table`], [`prep`]) — typed tabular data
//!   (numeric / flag / categorical), 0–1 input scaling, one-hot encoding for
//!   networks, numeric coding or omission of categoricals for regression,
//!   and zero-variance predictor elimination — the §3.4 Clementine
//!   behaviours.
//! * **Error estimation** ([`crossval`]) — the §3.3 protocol: five random
//!   50 % splits of the training data, cross-validated; the *maximum* of
//!   the five estimated errors is the reported estimate.
//! * **Importance** ([`importance`]) — NN sensitivity analysis and LR
//!   standardized betas (§4.4).
//!
//! The unified entry point is [`model::train`], which dispatches a
//! [`model::ModelKind`] to the right pipeline and returns a trained model
//! that carries its own preprocessing.

pub mod artifact;
pub mod crossval;
pub(crate) mod gramcache;
pub mod importance;
pub mod linreg;
pub(crate) mod methods;
pub mod model;
pub mod nn;
pub mod prep;
pub mod select;
pub mod table;

pub use artifact::{ModelArtifact, TableSchema};
pub use model::{train, try_train, ModelKind, TrainedModel};
pub use table::{Column, Table};
