//! Data preparation: Clementine's §3.4 behaviours.
//!
//! * All inputs are scaled to 0–1 (min/max from the *training* data; test
//!   rows may fall outside — that is the point of the chronological
//!   experiments, where 2006 systems extrapolate past 2005's hull).
//! * Flags encode as 0/1.
//! * Categorical fields: one-hot for neural networks ("neural network
//!   models can have any type of input"); numeric level codes for linear
//!   regression ("inputs need to be mapped to numeric values"), or omitted
//!   entirely when the field is free-text-like (too many levels to encode
//!   meaningfully — Clementine's "omitted by Clementine" case).
//! * Zero-variance predictors are dropped ("Clementine omits some predictor
//!   variables because these input parameters does not have any
//!   variation").

use crate::table::{Column, Table};
use fault::{Error, Result};
use linalg::Matrix;
use serde::{Deserialize, Serialize};

/// How categorical fields are encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Encoding {
    /// Linear-regression mode: numeric level codes, free-text-like fields
    /// omitted.
    NumericCoded,
    /// Neural-network mode: one-hot indicator columns.
    OneHot,
}

/// Maximum categorical cardinality for `NumericCoded` mode; fields with more
/// levels are treated as identifiers/names and omitted — Clementine's "this
/// kind of transformation is not possible, hence these are omitted".
const MAX_CODED_LEVELS: usize = 8;

/// Per-output-feature provenance, used by importance reporting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureInfo {
    /// Name of the encoded feature (e.g. `bpred=2-level` for one-hot).
    pub name: String,
    /// Index of the source column in the original table.
    pub source_column: usize,
    /// Training minimum (pre-scaling).
    pub min: f64,
    /// Training maximum.
    pub max: f64,
}

/// A fitted preprocessor: encoding plan plus training min/max per feature.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Preprocessor {
    pub(crate) encoding: Encoding,
    pub(crate) features: Vec<FeatureInfo>,
    /// Encoded-but-unscaled extractors, represented as a plan per feature.
    pub(crate) plan: Vec<FeaturePlan>,
    /// Names of dropped (constant or omitted) source columns.
    pub(crate) dropped: Vec<String>,
    /// Target min/max for 0-1 target scaling.
    pub(crate) target_min: f64,
    pub(crate) target_max: f64,
}

/// How to compute one encoded feature from a table row. Public so the
/// serve layer can compile artifacts into specialized predictors that
/// extract features straight from request cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FeaturePlan {
    /// Numeric column value.
    Numeric {
        /// Source column index.
        col: usize,
    },
    /// Flag column as 0/1.
    Flag {
        /// Source column index.
        col: usize,
    },
    /// Categorical level code as a number.
    Code {
        /// Source column index.
        col: usize,
    },
    /// Indicator for one categorical level.
    Indicator {
        /// Source column index.
        col: usize,
        /// Level code this indicator fires on.
        level: u32,
    },
}

impl Preprocessor {
    /// Fit the preprocessing plan on a training table.
    pub fn fit(table: &Table, encoding: Encoding) -> Self {
        table.validate();
        let mut plan = Vec::new();
        let mut features = Vec::new();
        let mut dropped = Vec::new();

        for (ci, (name, col)) in table.names().iter().zip(table.columns()).enumerate() {
            if col.is_constant() {
                dropped.push(name.clone());
                continue;
            }
            match col {
                Column::Numeric(_) => {
                    plan.push(FeaturePlan::Numeric { col: ci });
                    features.push(FeatureInfo {
                        name: name.clone(),
                        source_column: ci,
                        min: 0.0,
                        max: 0.0,
                    });
                }
                Column::Flag(_) => {
                    plan.push(FeaturePlan::Flag { col: ci });
                    features.push(FeatureInfo {
                        name: name.clone(),
                        source_column: ci,
                        min: 0.0,
                        max: 0.0,
                    });
                }
                Column::Categorical { codes, levels } => match encoding {
                    Encoding::NumericCoded => {
                        if levels.len() > MAX_CODED_LEVELS {
                            dropped.push(name.clone());
                        } else {
                            plan.push(FeaturePlan::Code { col: ci });
                            features.push(FeatureInfo {
                                name: name.clone(),
                                source_column: ci,
                                min: 0.0,
                                max: 0.0,
                            });
                        }
                    }
                    Encoding::OneHot => {
                        // Only levels present in training data get columns;
                        // skip high-cardinality identifier-like fields too
                        // (every row its own level carries no signal).
                        let mut present: Vec<u32> = codes.clone();
                        present.sort_unstable();
                        present.dedup();
                        // Identifier-like fields (one level per few rows)
                        // carry no transferable signal; expanding them would
                        // also let the network memorize rows.
                        if present.len() > (table.n_rows() / 4).max(8) {
                            dropped.push(name.clone());
                        } else {
                            for &lv in &present {
                                plan.push(FeaturePlan::Indicator { col: ci, level: lv });
                                features.push(FeatureInfo {
                                    name: format!("{}={}", name, levels[lv as usize]),
                                    source_column: ci,
                                    min: 0.0,
                                    max: 0.0,
                                });
                            }
                        }
                    }
                },
            }
        }

        let mut pp = Preprocessor {
            encoding,
            features,
            plan,
            dropped,
            target_min: 0.0,
            target_max: 1.0,
        };

        // Fit min/max per encoded feature from the training data.
        let raw = pp.encode_unscaled(table);
        for (j, f) in pp.features.iter_mut().enumerate() {
            let col = raw.col(j);
            let (lo, hi) = linalg::stats::min_max(&col);
            f.min = lo;
            f.max = if hi > lo { hi } else { lo + 1.0 };
        }
        let (tlo, thi) = linalg::stats::min_max(table.target());
        pp.target_min = tlo;
        pp.target_max = if thi > tlo { thi } else { tlo + 1.0 };
        pp
    }

    /// Encoded feature metadata.
    pub fn features(&self) -> &[FeatureInfo] {
        &self.features
    }

    /// Names of columns the preprocessor dropped.
    pub fn dropped(&self) -> &[String] {
        &self.dropped
    }

    /// The fitted encoding mode.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// The per-feature extraction plan, aligned with [`Self::features`].
    pub fn plan(&self) -> &[FeaturePlan] {
        &self.plan
    }

    /// Target `(min, max)` used for 0–1 target scaling.
    pub fn target_range(&self) -> (f64, f64) {
        (self.target_min, self.target_max)
    }

    /// Check that `table` has the columns this plan reads, with the
    /// types it expects. Mismatches are typed `InvalidInput` (with the
    /// expected-vs-got shape) instead of downstream panics.
    pub(crate) fn try_check_table(&self, table: &Table) -> Result<()> {
        let cols = table.columns();
        for (fp, info) in self.plan.iter().zip(&self.features) {
            let (col, want) = match *fp {
                FeaturePlan::Numeric { col } => (col, "numeric"),
                FeaturePlan::Flag { col } => (col, "flag"),
                FeaturePlan::Code { col } | FeaturePlan::Indicator { col, .. } => {
                    (col, "categorical")
                }
            };
            let got = match cols.get(col) {
                None => {
                    return Err(Error::invalid(format!(
                        "feature '{}' reads column {}, but the table has only {} columns",
                        info.name,
                        col,
                        cols.len()
                    )))
                }
                Some(Column::Numeric(_)) => "numeric",
                Some(Column::Flag(_)) => "flag",
                Some(Column::Categorical { .. }) => "categorical",
            };
            if got != want {
                return Err(Error::invalid(format!(
                    "feature '{}' expects a {} column at index {}, got {}",
                    info.name, want, col, got
                )));
            }
        }
        Ok(())
    }

    /// [`Self::transform`] with the shape check of
    /// [`Self::try_check_table`] run first, so a table that does not
    /// match the fitted plan is a typed error rather than a panic.
    pub(crate) fn try_transform(&self, table: &Table) -> Result<Matrix> {
        self.try_check_table(table)?;
        Ok(self.transform(table))
    }

    /// Encode without scaling (used to fit min/max, and by the CV Gram
    /// cache, which accumulates unscaled statistics once and applies each
    /// fold's min/max as an affine transform).
    pub(crate) fn encode_unscaled(&self, table: &Table) -> Matrix {
        let n = table.n_rows();
        let p = self.plan.len();
        let cols = table.columns();
        let mut m = Matrix::zeros(n, p);
        for (j, fp) in self.plan.iter().enumerate() {
            match *fp {
                FeaturePlan::Numeric { col } => {
                    if let Column::Numeric(v) = &cols[col] {
                        for i in 0..n {
                            m[(i, j)] = v[i];
                        }
                    } else {
                        unreachable!("plan/type mismatch")
                    }
                }
                FeaturePlan::Flag { col } => {
                    if let Column::Flag(v) = &cols[col] {
                        for i in 0..n {
                            m[(i, j)] = v[i] as u8 as f64;
                        }
                    } else {
                        unreachable!("plan/type mismatch")
                    }
                }
                FeaturePlan::Code { col } => {
                    if let Column::Categorical { codes, .. } = &cols[col] {
                        for i in 0..n {
                            m[(i, j)] = codes[i] as f64;
                        }
                    } else {
                        unreachable!("plan/type mismatch")
                    }
                }
                FeaturePlan::Indicator { col, level } => {
                    if let Column::Categorical { codes, .. } = &cols[col] {
                        for i in 0..n {
                            m[(i, j)] = (codes[i] == level) as u8 as f64;
                        }
                    } else {
                        unreachable!("plan/type mismatch")
                    }
                }
            }
        }
        m
    }

    /// Encode and scale a table to the 0–1 design matrix.
    ///
    /// Values outside the training min/max scale past [0, 1] — intentional:
    /// that is how a 2006 system looks to a model fitted on 2005.
    pub fn transform(&self, table: &Table) -> Matrix {
        let mut m = self.encode_unscaled(table);
        for i in 0..m.rows() {
            let row = m.row_mut(i);
            for (j, f) in self.features.iter().enumerate() {
                row[j] = (row[j] - f.min) / (f.max - f.min);
            }
        }
        m
    }

    /// Scale a target value to 0–1 (training range).
    pub fn scale_target(&self, y: f64) -> f64 {
        (y - self.target_min) / (self.target_max - self.target_min)
    }

    /// Invert target scaling.
    pub fn unscale_target(&self, y01: f64) -> f64 {
        self.target_min + y01 * (self.target_max - self.target_min)
    }

    /// Scaled target vector for a table.
    pub(crate) fn scaled_targets(&self, table: &Table) -> Vec<f64> {
        table
            .target()
            .iter()
            .map(|&y| self.scale_target(y))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new();
        t.add_numeric("speed", vec![1000.0, 2000.0, 3000.0, 4000.0])
            .add_flag("smt", vec![true, false, true, false])
            .add_numeric("constant", vec![5.0; 4])
            .add_categorical(
                "bpred",
                vec![0, 1, 2, 1],
                vec!["perfect".into(), "bimodal".into(), "gshare".into()],
            )
            .set_target(vec![10.0, 20.0, 30.0, 50.0]);
        t
    }

    #[test]
    fn constant_columns_are_dropped() {
        let pp = Preprocessor::fit(&sample(), Encoding::NumericCoded);
        assert_eq!(pp.dropped(), &["constant".to_string()]);
        assert!(pp.features().iter().all(|f| f.name != "constant"));
    }

    #[test]
    fn numeric_coded_has_one_column_per_kept_field() {
        let pp = Preprocessor::fit(&sample(), Encoding::NumericCoded);
        let names: Vec<_> = pp.features().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["speed", "smt", "bpred"]);
    }

    #[test]
    fn one_hot_expands_categories() {
        let pp = Preprocessor::fit(&sample(), Encoding::OneHot);
        let names: Vec<_> = pp.features().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "speed",
                "smt",
                "bpred=perfect",
                "bpred=bimodal",
                "bpred=gshare"
            ]
        );
        let m = pp.transform(&sample());
        // Row 0 has bpred=perfect.
        assert_eq!(m[(0, 2)], 1.0);
        assert_eq!(m[(0, 3)], 0.0);
        // One-hot columns sum to 1 per row.
        for i in 0..4 {
            let s = m[(i, 2)] + m[(i, 3)] + m[(i, 4)];
            assert_eq!(s, 1.0);
        }
    }

    #[test]
    fn scaling_maps_training_data_to_unit_interval() {
        let t = sample();
        let pp = Preprocessor::fit(&t, Encoding::NumericCoded);
        let m = pp.transform(&t);
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                assert!((-1e-12..=1.0 + 1e-12).contains(&m[(i, j)]), "{}", m[(i, j)]);
            }
        }
        // speed spans the full range.
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(3, 0)], 1.0);
    }

    #[test]
    fn out_of_hull_rows_scale_past_one() {
        let train = sample();
        let pp = Preprocessor::fit(&train, Encoding::NumericCoded);
        let mut future = Table::new();
        future
            .add_numeric("speed", vec![6000.0])
            .add_flag("smt", vec![true])
            .add_numeric("constant", vec![5.0])
            .add_categorical(
                "bpred",
                vec![0],
                vec!["perfect".into(), "bimodal".into(), "gshare".into()],
            )
            .set_target(vec![70.0]);
        let m = pp.transform(&future);
        assert!(m[(0, 0)] > 1.0, "2006-style extrapolation must exceed 1.0");
    }

    #[test]
    fn target_scaling_roundtrips() {
        let t = sample();
        let pp = Preprocessor::fit(&t, Encoding::OneHot);
        for &y in t.target() {
            let s = pp.scale_target(y);
            assert!((0.0..=1.0).contains(&s));
            assert!((pp.unscale_target(s) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn high_cardinality_categoricals_omitted_in_coded_mode() {
        let mut t = Table::new();
        let levels: Vec<String> = (0..40).map(|i| format!("sys{i}")).collect();
        t.add_categorical("system_name", (0..40).collect(), levels)
            .add_numeric("speed", (0..40).map(|i| i as f64).collect())
            .set_target((0..40).map(|i| i as f64).collect());
        let pp = Preprocessor::fit(&t, Encoding::NumericCoded);
        assert!(pp.dropped().contains(&"system_name".to_string()));
        assert_eq!(pp.features().len(), 1);
    }
}
