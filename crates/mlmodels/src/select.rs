//! Predictor-selection strategies for linear regression.
//!
//! Clementine's regression node offers four methods (§3.1): **Enter**
//! (LR-E, all predictors), **Stepwise** (LR-S), **Forwards** (LR-F), and
//! **Backwards** (LR-B). Forward adds the most significant candidate while
//! its partial-F p-value clears the entry threshold; Backward starts full
//! and removes the least significant predictor while its p-value exceeds
//! the removal threshold; Stepwise alternates (after every addition it
//! reconsiders removals). Thresholds follow the SPSS defaults:
//! p-to-enter 0.05, p-to-remove 0.10.
//!
//! Candidate scoring is incremental: the drivers build the augmented
//! Gram matrix once ([`linalg::gram::NormalEq`]) and score each add/drop
//! with a rank-one Cholesky update/downdate
//! ([`linalg::gram::ActiveCholesky`]) in O(k²) instead of refitting from
//! the n-row design (O(n·k²)). Ambiguous pivots (near-collinear
//! candidates) and near-exact fits defer to the from-scratch oracle so
//! the selected active sets are identical to the pre-incremental
//! implementation, which survives in [`reference`] as the equivalence
//! oracle for tests and benchmarks.

use crate::linreg::LinearFit;
use fault::{Error, Result};
use linalg::gram::{ActiveCholesky, AddScore, NormalEq};
use linalg::special::f_sf;
use linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectionMethod {
    /// All predictors (LR-E).
    Enter,
    /// Forward addition (LR-F).
    Forward,
    /// Backward elimination (LR-B).
    Backward,
    /// Stepwise: forward with reconsideration (LR-S).
    Stepwise,
}

/// Significance thresholds for the partial-F tests.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Thresholds {
    /// p-value required to enter a predictor (SPSS default 0.05).
    pub p_enter: f64,
    /// p-value above which a predictor is removed (SPSS default 0.10).
    pub p_remove: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            p_enter: 0.05,
            p_remove: 0.10,
        }
    }
}

/// Relative RSS floor below which the Gram-derived residual is dominated
/// by cancellation (`rss = yᵀy − ‖z‖²` with both terms nearly equal);
/// such candidates are re-scored by the from-scratch oracle, whose
/// explicit residual pass is exact.
const RSS_TRUST_REL: f64 = 1e-9;

/// p-value of the partial-F test between nested models differing by one
/// predictor, computed from sufficient statistics. Mirrors
/// `LinearFit::partial_f_vs` + `df_residual` exactly: `k_big` is the
/// larger model's active-set size, `q = 1`.
fn partial_p(n: usize, k_big: usize, rss_big: f64, rss_small: f64) -> f64 {
    let df = (n - k_big - 1).max(1) as f64;
    let denom = (rss_big / df).max(1e-30);
    let f = ((rss_small - rss_big) / denom).max(0.0);
    f_sf(f, 1.0, df)
}

/// p-value for adding/removing exactly one predictor between nested fits.
fn step_p_value(big: &LinearFit, small: &LinearFit) -> f64 {
    let f = big.partial_f_vs(small);
    f_sf(f, 1.0, big.df_residual())
}

/// Run the selection strategy; returns the final fit.
///
/// Infallible-signature wrapper over [`try_select`]; panics on its error
/// paths (degenerate data, unsalvageably singular designs). Pipeline code
/// uses [`try_select`].
pub fn select(x: &Matrix, y: &[f64], method: SelectionMethod, thresholds: Thresholds) -> LinearFit {
    match try_select(x, y, method, thresholds) {
        Ok(fit) => fit,
        Err(e) => panic!("select: {e}"),
    }
}

/// Fallible selection. Degrades gracefully on collinear predictors:
///
/// * **Forward/Stepwise** skip a candidate column whose trial fit is
///   singular (telemetry point `select/skip_candidate`), considering the
///   remaining candidates instead.
/// * **Backward** starts from a ridge-stabilized full fit when the strict
///   one is singular, and skips removal candidates whose reduced fit
///   fails.
/// * **Enter** uses the ridge fallback directly, matching the method's
///   all-predictors-regardless semantics.
///
/// Errors surface only when no fit at all is possible (non-finite data,
/// too few rows, or every candidate singular beyond ridge repair).
pub fn try_select(
    x: &Matrix,
    y: &[f64],
    method: SelectionMethod,
    thresholds: Thresholds,
) -> Result<LinearFit> {
    try_select_with(x, y, None, method, thresholds)
}

/// [`try_select`] with an optional precomputed [`NormalEq`] for `x`/`y`.
///
/// Cross-validation reuses one full-table Gram across folds (deriving
/// each fold's statistics by row subtraction and rescaling) instead of
/// re-accumulating it per fold; the statistics must describe exactly the
/// rows of `x`/`y`.
pub(crate) fn try_select_with(
    x: &Matrix,
    y: &[f64],
    ne: Option<&NormalEq>,
    method: SelectionMethod,
    thresholds: Thresholds,
) -> Result<LinearFit> {
    let p = x.cols();
    // Guard against under-determined fits: never use more predictors than
    // observations allow.
    let max_active = x.rows().saturating_sub(2).min(p);
    if method == SelectionMethod::Enter {
        // One fit, no candidate loop: the Gram engine buys nothing.
        let active: Vec<usize> = (0..p).take(max_active).collect();
        return LinearFit::try_fit_ridge(x, y, &active);
    }
    let owned;
    let ne = match ne {
        Some(shared) => shared,
        None => {
            owned = NormalEq::try_from_design(x, y)?;
            &owned
        }
    };
    let active = match method {
        SelectionMethod::Enter => unreachable!("handled above"),
        SelectionMethod::Forward => forward(x, y, ne, thresholds, max_active, false)?,
        SelectionMethod::Stepwise => forward(x, y, ne, thresholds, max_active, true)?,
        SelectionMethod::Backward => backward(x, y, ne, thresholds, max_active)?,
    };
    // The returned model is always a from-scratch fit of the chosen active
    // set: coefficients, diagnostics, and RSS come from the explicit
    // residual pass, never from the (cancellation-prone) Gram identity.
    match LinearFit::try_fit(x, y, &active) {
        Ok(fit) => Ok(fit),
        // Only reachable when backward's ridge start could not trim the
        // design to full rank; match its all-else-failed semantics.
        Err(Error::SingularSystem { .. }) => LinearFit::try_fit_ridge(x, y, &active),
        Err(other) => Err(other),
    }
}

/// Trial-fit a candidate active set, mapping a singular design to `None`
/// (the driver skips the candidate) and propagating every other error.
fn trial_fit(x: &Matrix, y: &[f64], active: &[usize]) -> Result<Option<LinearFit>> {
    match LinearFit::try_fit(x, y, active) {
        Ok(fit) => Ok(Some(fit)),
        Err(Error::SingularSystem { .. }) => {
            telemetry::point!("select/skip_candidate", active = active.len());
            Ok(None)
        }
        Err(other) => Err(other),
    }
}

/// True when a Gram-derived RSS is large enough (relative to `yᵀy`) to be
/// trusted; near-exact fits fall back to the oracle's residual pass.
fn trusted(rss: f64, ne: &NormalEq) -> bool {
    rss > RSS_TRUST_REL * ne.yty().max(f64::MIN_POSITIVE)
}

/// Factor the given active set from scratch against the Gram. `None`
/// when any pivot fails (collinear set) — callers stay on the oracle.
fn build_engine<'a>(ne: &'a NormalEq, active: &[usize]) -> Option<ActiveCholesky<'a>> {
    let mut eng = ActiveCholesky::new(ne).ok()?;
    for &j in active {
        eng.push(j).ok()?;
    }
    Some(eng)
}

/// RSS of `active + cand`, via the engine when its pivot and residual are
/// trustworthy, else via the from-scratch oracle. `None` skips the
/// candidate (singular either way).
fn add_rss(
    x: &Matrix,
    y: &[f64],
    ne: &NormalEq,
    eng: Option<&ActiveCholesky<'_>>,
    active: &[usize],
    cand: usize,
) -> Result<Option<f64>> {
    if let Some(e) = eng {
        if let AddScore::Ok { rss, .. } = e.score_add(cand) {
            if trusted(rss, ne) {
                telemetry::counter_add("select/cand_fast", 1);
                return Ok(Some(rss));
            }
        }
    }
    telemetry::counter_add("select/cand_oracle", 1);
    let mut trial = active.to_vec();
    trial.push(cand);
    Ok(trial_fit(x, y, &trial)?.map(|f| f.rss))
}

/// RSS of `active` minus the predictor at `pos`, engine-first like
/// [`add_rss`].
fn drop_rss(
    x: &Matrix,
    y: &[f64],
    ne: &NormalEq,
    eng: Option<&ActiveCholesky<'_>>,
    active: &[usize],
    pos: usize,
) -> Result<Option<f64>> {
    if let Some(e) = eng {
        if let Some(rss) = e.score_drop(pos) {
            if trusted(rss, ne) {
                telemetry::counter_add("select/cand_fast", 1);
                return Ok(Some(rss));
            }
        }
    }
    telemetry::counter_add("select/cand_oracle", 1);
    let mut reduced = active.to_vec();
    reduced.remove(pos);
    Ok(trial_fit(x, y, &reduced)?.map(|f| f.rss))
}

/// RSS of the current active set for the next round of p-values: engine
/// value when trustworthy, else an explicit residual pass.
fn current_rss(
    x: &Matrix,
    y: &[f64],
    ne: &NormalEq,
    eng: Option<&ActiveCholesky<'_>>,
    active: &[usize],
) -> Result<f64> {
    if let Some(e) = eng {
        let rss = e.rss();
        if trusted(rss, ne) {
            return Ok(rss);
        }
    }
    // Strict refit; fall back to ridge on the collinear sets only the
    // backward ridge start can produce.
    match LinearFit::try_fit(x, y, active) {
        Ok(fit) => Ok(fit.rss),
        Err(Error::SingularSystem { .. }) => Ok(LinearFit::try_fit_ridge(x, y, active)?.rss),
        Err(other) => Err(other),
    }
}

/// One sweep over removal candidates: `(position, p-value)` of the least
/// significant predictor, or `None` when every reduced fit is singular.
fn worst_removal(
    x: &Matrix,
    y: &[f64],
    ne: &NormalEq,
    eng: Option<&ActiveCholesky<'_>>,
    active: &[usize],
    rss_current: f64,
) -> Result<Option<(usize, f64)>> {
    let n = x.rows();
    let mut worst: Option<(usize, f64)> = None;
    for pos in 0..active.len() {
        let Some(rss_small) = drop_rss(x, y, ne, eng, active, pos)? else {
            continue;
        };
        let pv = partial_p(n, active.len(), rss_current, rss_small);
        if worst.is_none_or(|(_, wpv)| pv > wpv) {
            worst = Some((pos, pv));
        }
    }
    Ok(worst)
}

/// Forward selection; with `reconsider` it becomes stepwise (after each
/// addition, removals are re-evaluated). Returns the chosen active set.
fn forward(
    x: &Matrix,
    y: &[f64],
    ne: &NormalEq,
    th: Thresholds,
    max_active: usize,
    reconsider: bool,
) -> Result<Vec<usize>> {
    let (n, p) = (x.rows(), x.cols());
    let mut active: Vec<usize> = Vec::new();
    // The intercept-only fit cannot be singular; failure here means the
    // data itself is unusable, which must propagate.
    let mut rss_cur = LinearFit::try_fit(x, y, &active)?.rss;
    let mut eng = ActiveCholesky::new(ne).ok();
    loop {
        if active.len() >= max_active {
            break;
        }
        // Best candidate to add; singular candidates are skipped.
        let mut best: Option<(usize, f64)> = None;
        for cand in 0..p {
            if active.contains(&cand) {
                continue;
            }
            let Some(rss_big) = add_rss(x, y, ne, eng.as_ref(), &active, cand)? else {
                continue;
            };
            let pv = partial_p(n, active.len() + 1, rss_big, rss_cur);
            if best.is_none_or(|(_, bpv)| pv < bpv) {
                best = Some((cand, pv));
            }
        }
        match best {
            Some((cand, pv)) if pv < th.p_enter => {
                active.push(cand);
                if let Some(e) = eng.as_mut() {
                    if e.push(cand).is_err() {
                        eng = None;
                    }
                }
                rss_cur = current_rss(x, y, ne, eng.as_ref(), &active)?;
            }
            _ => break,
        }

        if reconsider {
            // Stepwise: drop any predictor whose removal p-value exceeds
            // the removal threshold (most insignificant first).
            while active.len() > 1 {
                match worst_removal(x, y, ne, eng.as_ref(), &active, rss_cur)? {
                    Some((pos, pv)) if pv > th.p_remove => {
                        active.remove(pos);
                        if let Some(e) = eng.as_mut() {
                            if e.remove(pos).is_err() {
                                eng = None;
                            }
                        }
                        rss_cur = current_rss(x, y, ne, eng.as_ref(), &active)?;
                    }
                    _ => break,
                }
            }
        }
    }
    Ok(active)
}

/// Backward elimination. Returns the chosen active set.
fn backward(
    x: &Matrix,
    y: &[f64],
    ne: &NormalEq,
    th: Thresholds,
    max_active: usize,
) -> Result<Vec<usize>> {
    let mut active: Vec<usize> = (0..x.cols()).take(max_active).collect();
    // The full starting model may legitimately be collinear; begin from a
    // ridge-stabilized fit in that case and let elimination trim it.
    let mut rss_cur = match LinearFit::try_fit(x, y, &active) {
        Ok(fit) => fit.rss,
        Err(Error::SingularSystem { .. }) => {
            telemetry::point!("select/backward_ridge_start", active = active.len());
            LinearFit::try_fit_ridge(x, y, &active)?.rss
        }
        Err(other) => return Err(other),
    };
    let mut eng = build_engine(ne, &active);
    while active.len() > 1 {
        match worst_removal(x, y, ne, eng.as_ref(), &active, rss_cur)? {
            Some((pos, pv)) if pv > th.p_remove => {
                active.remove(pos);
                if let Some(e) = eng.as_mut() {
                    if e.remove(pos).is_err() {
                        eng = None;
                    }
                }
                if eng.is_none() {
                    // A ridge start (or failed downdate) forced the oracle
                    // path; elimination may since have restored full rank,
                    // making the O(k²) scorer viable again.
                    eng = build_engine(ne, &active);
                }
                rss_cur = current_rss(x, y, ne, eng.as_ref(), &active)?;
            }
            _ => break,
        }
    }
    Ok(active)
}

/// The pre-incremental from-scratch drivers, verbatim: every candidate is
/// scored by refitting from the design matrix. Retained as the
/// equivalence oracle — proptests and the selection benchmark compare
/// [`try_select`] against this module — and exercised nowhere on the hot
/// path.
pub mod reference {
    use super::*;

    /// From-scratch selection with semantics identical to
    /// [`super::try_select`].
    pub fn try_select(
        x: &Matrix,
        y: &[f64],
        method: SelectionMethod,
        thresholds: Thresholds,
    ) -> Result<LinearFit> {
        let p = x.cols();
        let max_active = x.rows().saturating_sub(2).min(p);
        let all: Vec<usize> = (0..p).collect();
        match method {
            SelectionMethod::Enter => {
                let active: Vec<usize> = all.into_iter().take(max_active).collect();
                LinearFit::try_fit_ridge(x, y, &active)
            }
            SelectionMethod::Forward => forward(x, y, thresholds, max_active, false),
            SelectionMethod::Stepwise => forward(x, y, thresholds, max_active, true),
            SelectionMethod::Backward => backward(x, y, thresholds, max_active),
        }
    }

    fn forward(
        x: &Matrix,
        y: &[f64],
        th: Thresholds,
        max_active: usize,
        reconsider: bool,
    ) -> Result<LinearFit> {
        let p = x.cols();
        let mut active: Vec<usize> = Vec::new();
        let mut current = LinearFit::try_fit(x, y, &active)?;
        loop {
            if active.len() >= max_active {
                break;
            }
            let mut best: Option<(usize, f64, LinearFit)> = None;
            for cand in 0..p {
                if active.contains(&cand) {
                    continue;
                }
                let mut trial_active = active.clone();
                trial_active.push(cand);
                let Some(trial) = trial_fit(x, y, &trial_active)? else {
                    continue;
                };
                let pv = step_p_value(&trial, &current);
                if best.as_ref().is_none_or(|(_, bpv, _)| pv < *bpv) {
                    best = Some((cand, pv, trial));
                }
            }
            match best {
                Some((cand, pv, trial)) if pv < th.p_enter => {
                    active.push(cand);
                    current = trial;
                }
                _ => break,
            }

            if reconsider {
                loop {
                    if active.len() <= 1 {
                        break;
                    }
                    let mut worst: Option<(usize, f64, LinearFit)> = None;
                    for (pos, _) in active.iter().enumerate() {
                        let mut reduced = active.clone();
                        reduced.remove(pos);
                        let Some(small) = trial_fit(x, y, &reduced)? else {
                            continue;
                        };
                        let pv = step_p_value(&current, &small);
                        if worst.as_ref().is_none_or(|(_, wpv, _)| pv > *wpv) {
                            worst = Some((pos, pv, small));
                        }
                    }
                    match worst {
                        Some((pos, pv, small)) if pv > th.p_remove => {
                            active.remove(pos);
                            current = small;
                        }
                        _ => break,
                    }
                }
            }
        }
        Ok(current)
    }

    fn backward(x: &Matrix, y: &[f64], th: Thresholds, max_active: usize) -> Result<LinearFit> {
        let mut active: Vec<usize> = (0..x.cols()).take(max_active).collect();
        let mut current = match LinearFit::try_fit(x, y, &active) {
            Ok(fit) => fit,
            Err(Error::SingularSystem { .. }) => {
                telemetry::point!("select/backward_ridge_start", active = active.len());
                LinearFit::try_fit_ridge(x, y, &active)?
            }
            Err(other) => return Err(other),
        };
        while active.len() > 1 {
            let mut worst: Option<(usize, f64, LinearFit)> = None;
            for (pos, _) in active.iter().enumerate() {
                let mut reduced = active.clone();
                reduced.remove(pos);
                let Some(small) = trial_fit(x, y, &reduced)? else {
                    continue;
                };
                let pv = step_p_value(&current, &small);
                if worst.as_ref().is_none_or(|(_, wpv, _)| pv > *wpv) {
                    worst = Some((pos, pv, small));
                }
            }
            match worst {
                Some((pos, pv, small)) if pv > th.p_remove => {
                    active.remove(pos);
                    current = small;
                }
                _ => break,
            }
        }
        Ok(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2 real predictors + 4 noise predictors; y = 5 + 3 x0 - 2 x1 + ε.
    fn data() -> (Matrix, Vec<f64>) {
        let mut rng_state = 12345u64;
        let mut next = || {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((rng_state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let rows: Vec<Vec<f64>> = (0..80).map(|_| (0..6).map(|_| next()).collect()).collect();
        let y = rows
            .iter()
            .map(|r| 5.0 + 3.0 * r[0] - 2.0 * r[1] + 0.05 * next())
            .collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn enter_uses_all_predictors() {
        let (x, y) = data();
        let fit = select(&x, &y, SelectionMethod::Enter, Thresholds::default());
        assert_eq!(fit.active.len(), 6);
    }

    #[test]
    fn forward_finds_the_true_predictors() {
        let (x, y) = data();
        let fit = select(&x, &y, SelectionMethod::Forward, Thresholds::default());
        assert!(fit.active.contains(&0), "active: {:?}", fit.active);
        assert!(fit.active.contains(&1), "active: {:?}", fit.active);
        assert!(
            fit.active.len() <= 4,
            "should not admit much noise: {:?}",
            fit.active
        );
    }

    #[test]
    fn backward_eliminates_noise() {
        let (x, y) = data();
        let fit = select(&x, &y, SelectionMethod::Backward, Thresholds::default());
        assert!(fit.active.contains(&0));
        assert!(fit.active.contains(&1));
        assert!(fit.active.len() <= 4, "active: {:?}", fit.active);
    }

    #[test]
    fn stepwise_matches_forward_on_clean_data() {
        let (x, y) = data();
        let f = select(&x, &y, SelectionMethod::Forward, Thresholds::default());
        let s = select(&x, &y, SelectionMethod::Stepwise, Thresholds::default());
        // Both must find the true support; stepwise may trim extras.
        for want in [0usize, 1] {
            assert!(f.active.contains(&want));
            assert!(s.active.contains(&want));
        }
        assert!(s.active.len() <= f.active.len());
    }

    #[test]
    fn selected_models_predict_well() {
        let (x, y) = data();
        for m in [
            SelectionMethod::Enter,
            SelectionMethod::Forward,
            SelectionMethod::Backward,
            SelectionMethod::Stepwise,
        ] {
            let fit = select(&x, &y, m, Thresholds::default());
            assert!(fit.r2() > 0.99, "{m:?}: r2 {}", fit.r2());
        }
    }

    /// Append a duplicate of column 0, making one candidate collinear.
    fn data_with_duplicate_column() -> (Matrix, Vec<f64>) {
        let (x, y) = data();
        let rows: Vec<Vec<f64>> = (0..x.rows())
            .map(|i| {
                let mut r = x.row(i).to_vec();
                r.push(r[0]);
                r
            })
            .collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn forward_skips_collinear_candidate() {
        let (x, y) = data_with_duplicate_column();
        let fit =
            try_select(&x, &y, SelectionMethod::Forward, Thresholds::default()).expect("selects");
        // The duplicate (column 6) must not join column 0 in the model.
        assert!(
            !(fit.active.contains(&0) && fit.active.contains(&6)),
            "collinear pair admitted: {:?}",
            fit.active
        );
        assert!(fit.r2() > 0.99, "r2 {}", fit.r2());
    }

    #[test]
    fn stepwise_and_backward_survive_collinear_column() {
        let (x, y) = data_with_duplicate_column();
        for m in [SelectionMethod::Stepwise, SelectionMethod::Backward] {
            let fit = try_select(&x, &y, m, Thresholds::default()).expect("selects");
            assert!(fit.r2() > 0.99, "{m:?}: r2 {}", fit.r2());
            for b in fit.coefs.iter().chain([&fit.intercept]) {
                assert!(b.is_finite(), "{m:?}: non-finite coefficient");
            }
        }
    }

    #[test]
    fn try_select_rejects_non_finite_target() {
        let (x, mut y) = data();
        y[3] = f64::NAN;
        for m in [
            SelectionMethod::Enter,
            SelectionMethod::Forward,
            SelectionMethod::Backward,
            SelectionMethod::Stepwise,
        ] {
            match try_select(&x, &y, m, Thresholds::default()) {
                Err(fault::Error::DegenerateData { .. }) => {}
                other => panic!("{m:?}: expected DegenerateData, got {other:?}"),
            }
        }
    }

    #[test]
    fn more_predictors_than_rows_is_guarded() {
        // 4 rows, 6 predictors: Enter must cap the active set.
        let rows: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..6).map(|j| ((i * 7 + j * 3) % 5) as f64).collect())
            .collect();
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let x = Matrix::from_rows(&rows);
        let fit = select(&x, &y, SelectionMethod::Enter, Thresholds::default());
        assert!(fit.active.len() <= 2);
    }

    /// The acceptance contract of the incremental engine: active sets
    /// identical to the from-scratch reference, coefficients to 1e-10.
    #[test]
    fn incremental_matches_reference_drivers() {
        for (x, y) in [data(), data_with_duplicate_column()] {
            for m in [
                SelectionMethod::Enter,
                SelectionMethod::Forward,
                SelectionMethod::Backward,
                SelectionMethod::Stepwise,
            ] {
                let inc = try_select(&x, &y, m, Thresholds::default()).expect("incremental");
                let oracle =
                    reference::try_select(&x, &y, m, Thresholds::default()).expect("reference");
                assert_eq!(inc.active, oracle.active, "{m:?}: active sets differ");
                assert!(
                    (inc.intercept - oracle.intercept).abs()
                        <= 1e-10 * (1.0 + oracle.intercept.abs())
                );
                for (a, b) in inc.coefs.iter().zip(oracle.coefs.iter()) {
                    assert!(
                        (a - b).abs() <= 1e-10 * (1.0 + b.abs()),
                        "{m:?}: {a} vs {b}"
                    );
                }
            }
        }
    }

    /// When CV hands the driver a precomputed Gram, the result must match
    /// the build-it-yourself path bit for bit.
    #[test]
    fn precomputed_normal_eq_changes_nothing() {
        let (x, y) = data();
        let ne = NormalEq::from_design(&x, &y);
        for m in [SelectionMethod::Forward, SelectionMethod::Stepwise] {
            let direct = try_select(&x, &y, m, Thresholds::default()).expect("direct");
            let shared =
                try_select_with(&x, &y, Some(&ne), m, Thresholds::default()).expect("shared");
            assert_eq!(direct.active, shared.active);
            assert_eq!(direct.coefs, shared.coefs);
        }
    }
}
