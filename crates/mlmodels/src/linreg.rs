//! Ordinary least squares with regression diagnostics.
//!
//! §3.1: the response is modelled as `y = β0 + β1 x1 + … + βp xp + ε`,
//! fitted by least squares. Beyond the fit itself, the selection drivers in
//! [`crate::select`] need the residual sum of squares and partial-F
//! statistics, and §4.4 reports *standardized beta coefficients* as the
//! importance measure — all computed here.

use fault::{Error, Result};
use linalg::matrix::dot;
use linalg::solve::{lstsq_ridge, spd_inverse, try_lstsq};
use linalg::special::t_sf_two_sided;
use linalg::stats::{mean, sample_variance};
use linalg::Matrix;
use serde::{Deserialize, Serialize};

/// A fitted linear model over a subset of predictors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearFit {
    /// Indices of the active predictors (columns of the design matrix).
    pub active: Vec<usize>,
    /// Intercept β0.
    pub intercept: f64,
    /// Coefficients, aligned with `active`.
    pub coefs: Vec<f64>,
    /// Residual sum of squares.
    pub rss: f64,
    /// Total sum of squares of the response.
    pub tss: f64,
    /// Observation count.
    pub n: usize,
    /// Standardized betas (βj · sd(xj)/sd(y)), aligned with `active`.
    pub std_betas: Vec<f64>,
    /// Two-sided p-values of each coefficient's t statistic, aligned with
    /// `active` (1.0 when not computable).
    pub p_values: Vec<f64>,
}

impl LinearFit {
    /// Fit on the columns `active` of `x` (full design matrix, no intercept
    /// column — one is added internally).
    ///
    /// Infallible-signature wrapper over [`LinearFit::try_fit_ridge`];
    /// panics on its error paths (non-finite data, too few observations).
    /// Pipeline code uses the fallible forms.
    pub fn fit(x: &Matrix, y: &[f64], active: &[usize]) -> LinearFit {
        match Self::try_fit_ridge(x, y, active) {
            Ok(fit) => fit,
            Err(e) => panic!("LinearFit::fit: {e}"),
        }
    }

    /// Strict fallible fit: a rank-deficient active set yields
    /// [`Error::SingularSystem`] instead of a ridge-blurred solution.
    /// Selection drivers use this to *skip* collinear candidates.
    pub fn try_fit(x: &Matrix, y: &[f64], active: &[usize]) -> Result<LinearFit> {
        Self::fit_impl(x, y, active, false)
    }

    /// Fallible fit with a ridge fallback for collinear active sets (the
    /// Enter method regresses on all predictors regardless of redundancy).
    /// Still errors on non-finite data or too few observations.
    pub(crate) fn try_fit_ridge(x: &Matrix, y: &[f64], active: &[usize]) -> Result<LinearFit> {
        Self::fit_impl(x, y, active, true)
    }

    fn fit_impl(x: &Matrix, y: &[f64], active: &[usize], ridge: bool) -> Result<LinearFit> {
        let n = x.rows();
        if n != y.len() {
            return Err(Error::degenerate(format!(
                "design/target length mismatch: {n} rows vs {} targets",
                y.len()
            )));
        }
        if n <= active.len() + 1 {
            return Err(Error::degenerate(format!(
                "{n} observations cannot support {} predictors",
                active.len()
            )));
        }

        let sub = x.select_cols(active);
        // Design with leading intercept column.
        let mut design = Matrix::zeros(n, active.len() + 1);
        for i in 0..n {
            design[(i, 0)] = 1.0;
            design.row_mut(i)[1..].copy_from_slice(sub.row(i));
        }
        let (beta, _) = if ridge {
            lstsq_ridge(&design, y)?
        } else {
            try_lstsq(&design, y)?
        };

        let mut rss = 0.0;
        for (i, &yi) in y.iter().enumerate() {
            let e = yi - dot(design.row(i), &beta);
            rss += e * e;
        }
        let my = mean(y);
        let tss: f64 = y.iter().map(|v| (v - my) * (v - my)).sum();

        // Diagnostics.
        let p = active.len();
        let df = n.saturating_sub(p + 1).max(1) as f64;
        let sigma2 = rss / df;
        let sd_y = sample_variance(y).sqrt();
        let inv = spd_inverse(&{
            // Ridge-stabilized Gram for the covariance when collinear.
            let mut g = design.gram();
            let scale = (0..g.rows()).map(|i| g[(i, i)]).fold(1.0f64, f64::max);
            for i in 0..g.rows() {
                g[(i, i)] += 1e-10 * scale;
            }
            g
        });

        let mut std_betas = Vec::with_capacity(p);
        let mut p_values = Vec::with_capacity(p);
        for (k, &col) in active.iter().enumerate() {
            let xj = x.col(col);
            let sd_x = sample_variance(&xj).sqrt();
            let b = beta[k + 1];
            std_betas.push(if sd_y > 0.0 { b * sd_x / sd_y } else { 0.0 });
            let pv = match &inv {
                Some(inv) => {
                    let se = (sigma2 * inv[(k + 1, k + 1)]).max(0.0).sqrt();
                    if se > 0.0 {
                        t_sf_two_sided(b / se, df)
                    } else {
                        1.0
                    }
                }
                None => 1.0,
            };
            p_values.push(pv);
        }

        Ok(LinearFit {
            active: active.to_vec(),
            intercept: beta[0],
            coefs: beta[1..].to_vec(),
            rss,
            tss,
            n,
            std_betas,
            p_values,
        })
    }

    /// The feature width a prediction row must provide: one past the
    /// highest column index any active term reads.
    pub fn min_width(&self) -> usize {
        self.active.iter().map(|&c| c + 1).max().unwrap_or(0)
    }

    /// Predict one row of the full design matrix, checking the row is
    /// wide enough for every active term first. Narrow rows are a typed
    /// `InvalidInput` instead of an out-of-bounds panic.
    pub fn try_predict_row(&self, row: &[f64]) -> Result<f64> {
        let need = self.min_width();
        if row.len() < need {
            return Err(Error::invalid(format!(
                "linear fit reads feature column {}; expected at least {} features, got {}",
                need - 1,
                need,
                row.len()
            )));
        }
        let mut y = self.intercept;
        for (&c, &b) in self.active.iter().zip(&self.coefs) {
            y += b * row[c];
        }
        Ok(y)
    }

    /// Predict every row of a design matrix, rejecting width mismatches
    /// with a typed error instead of panicking.
    pub fn try_predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let need = self.min_width();
        if x.cols() < need {
            return Err(Error::invalid(format!(
                "linear fit reads feature column {}; expected at least {} design columns, got {}",
                need - 1,
                need,
                x.cols()
            )));
        }
        Ok((0..x.rows())
            .map(|i| {
                let row = x.row(i);
                let mut y = self.intercept;
                for (&c, &b) in self.active.iter().zip(&self.coefs) {
                    y += b * row[c];
                }
                y
            })
            .collect())
    }

    /// Predict one row of the full design matrix.
    ///
    /// Panics on a feature-width mismatch; use [`Self::try_predict_row`]
    /// on untrusted widths.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        match self.try_predict_row(row) {
            Ok(y) => y,
            Err(e) => panic!("LinearFit::predict_row: {e}"),
        }
    }

    /// Predict every row of a design matrix.
    ///
    /// Panics on a feature-width mismatch; use [`Self::try_predict`] on
    /// untrusted widths.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        match self.try_predict(x) {
            Ok(y) => y,
            Err(e) => panic!("LinearFit::predict: {e}"),
        }
    }

    /// Coefficient of determination.
    pub fn r2(&self) -> f64 {
        if self.tss <= 0.0 {
            return 0.0;
        }
        1.0 - self.rss / self.tss
    }

    /// Partial-F statistic for adding this (larger) model over a smaller
    /// nested one: `F = ((RSS_small - RSS_big)/q) / (RSS_big/(n-p-1))`.
    pub(crate) fn partial_f_vs(&self, smaller: &LinearFit) -> f64 {
        assert!(
            self.active.len() > smaller.active.len(),
            "models must be nested"
        );
        let q = (self.active.len() - smaller.active.len()) as f64;
        let df = (self.n - self.active.len() - 1).max(1) as f64;
        let denom = (self.rss / df).max(1e-30);
        ((smaller.rss - self.rss) / q / denom).max(0.0)
    }

    /// Residual degrees of freedom.
    pub(crate) fn df_residual(&self) -> f64 {
        (self.n - self.active.len() - 1).max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = 3 + 2 x0 - x1, exact.
    fn exact_data() -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let a = (i % 7) as f64 / 7.0;
                let b = (i % 5) as f64 / 5.0;
                let c = ((i * 13) % 11) as f64 / 11.0; // irrelevant
                vec![a, b, c]
            })
            .collect();
        let y = rows.iter().map(|r| 3.0 + 2.0 * r[0] - r[1]).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn recovers_exact_coefficients() {
        let (x, y) = exact_data();
        let fit = LinearFit::fit(&x, &y, &[0, 1]);
        assert!((fit.intercept - 3.0).abs() < 1e-9);
        assert!((fit.coefs[0] - 2.0).abs() < 1e-9);
        assert!((fit.coefs[1] + 1.0).abs() < 1e-9);
        assert!(fit.rss < 1e-18);
        assert!(fit.r2() > 0.999999);
    }

    /// Regression (predict-path edge cases): a feature-width mismatch
    /// used to index out of bounds and panic; it is now a typed
    /// `InvalidInput` with the expected-vs-got widths.
    #[test]
    fn narrow_rows_are_typed_invalid_input_not_panics() {
        let (x, y) = exact_data();
        let fit = LinearFit::fit(&x, &y, &[0, 2]);
        assert_eq!(fit.min_width(), 3);
        let e = fit
            .try_predict_row(&[1.0, 2.0])
            .expect_err("row too narrow");
        assert_eq!(e.kind(), "invalid");
        let msg = e.to_string();
        assert!(
            msg.contains("at least 3") && msg.contains("got 2"),
            "expected-vs-got widths in: {msg}"
        );
        let narrow = Matrix::from_rows(&[vec![0.5], vec![0.25]]);
        let e = fit.try_predict(&narrow).expect_err("matrix too narrow");
        assert_eq!(e.kind(), "invalid");
        // Wide-enough inputs still predict, bit-identical to predict_row.
        let ok = fit.try_predict(&x).expect("full-width design");
        assert_eq!(ok, fit.predict(&x));
    }

    #[test]
    fn irrelevant_predictor_has_high_p_value() {
        let (x, mut y) = exact_data();
        // Tiny noise so the p-value is meaningful.
        for (i, v) in y.iter_mut().enumerate() {
            *v += if i % 2 == 0 { 0.01 } else { -0.01 };
        }
        let fit = LinearFit::fit(&x, &y, &[0, 1, 2]);
        assert!(
            fit.p_values[0] < 0.001,
            "x0 significant: {}",
            fit.p_values[0]
        );
        assert!(
            fit.p_values[1] < 0.001,
            "x1 significant: {}",
            fit.p_values[1]
        );
        assert!(fit.p_values[2] > 0.05, "x2 irrelevant: {}", fit.p_values[2]);
    }

    #[test]
    fn standardized_betas_rank_importance() {
        // y = 10*x0 + 1*x1 with equal predictor spreads: x0 dominates.
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 8) as f64, ((i / 3) % 8) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 10.0 * r[0] + r[1]).collect();
        let x = Matrix::from_rows(&rows);
        let fit = LinearFit::fit(&x, &y, &[0, 1]);
        assert!(fit.std_betas[0].abs() > 5.0 * fit.std_betas[1].abs());
    }

    #[test]
    fn partial_f_detects_useful_predictor() {
        let (x, y) = exact_data();
        let small = LinearFit::fit(&x, &y, &[0]);
        let big = LinearFit::fit(&x, &y, &[0, 1]);
        let f = big.partial_f_vs(&small);
        assert!(f > 100.0, "adding x1 should be hugely significant, F={f}");
        // Adding the irrelevant predictor gives a tiny F.
        let bigger = LinearFit::fit(&x, &y, &[0, 1, 2]);
        let f2 = bigger.partial_f_vs(&big);
        assert!(f2 < 10.0, "irrelevant predictor F={f2}");
    }

    #[test]
    fn predict_matches_fit_on_training_rows() {
        let (x, y) = exact_data();
        let fit = LinearFit::fit(&x, &y, &[0, 1]);
        let preds = fit.predict(&x);
        for (p, t) in preds.iter().zip(&y) {
            assert!((p - t).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_active_set_is_intercept_only() {
        let (x, y) = exact_data();
        let fit = LinearFit::fit(&x, &y, &[]);
        let my = mean(&y);
        assert!((fit.intercept - my).abs() < 1e-9);
        assert!((fit.rss - fit.tss).abs() < 1e-9);
    }
}
