//! The six neural-network training methods.
//!
//! Clementine's NN node exposes five training strategies — Quick, Dynamic,
//! Multiple, Prune, Exhaustive Prune — and the paper adds a sixth, the
//! single-hidden-layer constant-learning-rate network (NN-S) it compares to
//! Ipek et al. All six drive the same [`Mlp`] engine and differ in how they
//! search the topology space:
//!
//! | method | strategy |
//! |---|---|
//! | NN-Q | one hidden layer sized by a data heuristic, one shot |
//! | NN-D | grows the hidden layer while validation improves |
//! | NN-M | trains several topologies (in parallel) and keeps the best |
//! | NN-P | starts large, greedily prunes weak hidden units and inputs |
//! | NN-E | prune with multiple restarts, candidate lookahead, longer training — "the slowest of all, but often yields the best results" |
//! | NN-S | small single hidden layer, constant learning rate |
//!
//! Architecture decisions use an internal 50/50 train/validate split
//! (mirroring Clementine's train/simulate halves); the chosen topology is
//! then retrained on all rows.

use crate::nn::{restart_seed, Mlp, TrainAlgo, TrainConfig};
use fault::{Error, Result};
use linalg::dist::{child_seed, permutation, seeded_rng};
use linalg::Matrix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Neural-network training method selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub(crate) enum NnMethod {
    /// NN-Q.
    Quick,
    /// NN-D.
    Dynamic,
    /// NN-M.
    Multiple,
    /// NN-P.
    Prune,
    /// NN-E.
    ExhaustivePrune,
    /// NN-S (Ipek-style baseline).
    Single,
}

impl NnMethod {
    /// Paper abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            NnMethod::Quick => "NN-Q",
            NnMethod::Dynamic => "NN-D",
            NnMethod::Multiple => "NN-M",
            NnMethod::Prune => "NN-P",
            NnMethod::ExhaustivePrune => "NN-E",
            NnMethod::Single => "NN-S",
        }
    }
}

/// Split rows 50/50 for architecture decisions.
fn split_half(n: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut rng = seeded_rng(seed);
    let perm = permutation(&mut rng, n);
    let half = (n / 2).max(1);
    (perm[..half].to_vec(), perm[half.min(n - 1)..].to_vec())
}

fn rows_of(x: &Matrix, idx: &[usize]) -> Matrix {
    x.select_rows(idx)
}

fn targets_of(y: &[f64], idx: &[usize]) -> Vec<f64> {
    idx.iter().map(|&i| y[i]).collect()
}

/// Train one candidate topology on a split and report validation RMSE.
fn fit_candidate(
    hidden: &[usize],
    xt: &Matrix,
    yt: &[f64],
    xv: &Matrix,
    yv: &[f64],
    cfg: &TrainConfig,
) -> (Mlp, f64) {
    let mut net = Mlp::new(xt.cols(), hidden, cfg.seed);
    net.train(xt, yt, cfg);
    let val = net.rmse(xv, yv);
    (net, val)
}

/// Final full-data training for a chosen topology, preserving pruned
/// inputs from a prototype network. Batch training on small samples can
/// land in poor local minima, so three restarts compete and the best
/// training fit wins.
fn finalize(proto: &Mlp, x: &Matrix, y: &[f64], cfg: &TrainConfig) -> Mlp {
    (0..3u64)
        .map(|r| {
            let mut net = Mlp::new(
                x.cols(),
                &proto.hidden_sizes(),
                child_seed(cfg.seed, 0xF1 + r),
            );
            for i in 0..x.cols() {
                if proto.input_is_dead(i) {
                    net.prune_input(i);
                }
            }
            let mut fcfg = *cfg;
            fcfg.seed = child_seed(cfg.seed, 0xF2 + r);
            let rmse = net.train(x, y, &fcfg);
            (net, rmse)
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("three restarts")
        .0
}

/// Train a network on `(x, y01)` — the design matrix and 0–1 scaled
/// targets — with the chosen method. Deterministic per seed.
///
/// Infallible-signature wrapper over [`try_train_nn`]; panics on its
/// error paths (degenerate data, divergence surviving all retries).
/// Pipeline code uses [`try_train_nn`]; the method-level tests below
/// are this wrapper's remaining callers.
#[cfg_attr(not(test), allow(dead_code))]
pub fn train_nn(method: NnMethod, x: &Matrix, y01: &[f64], seed: u64) -> Mlp {
    match try_train_nn(method, x, y01, seed) {
        Ok(net) => net,
        Err(e) => panic!("train_nn {}: {e}", method.abbrev()),
    }
}

/// Fallible method-level training with divergence guards.
///
/// Validates the inputs up front ([`Error::DegenerateData`] on fewer than
/// 4 rows or non-finite values), then runs the chosen method. The
/// per-network engine already retries reseeded weights internally; if the
/// *method* still produces a non-finite model, the whole method is rerun
/// with a reseeded driver (telemetry point `train/retry`), and after the
/// retry budget the failure surfaces as [`Error::Diverged`].
pub fn try_train_nn(method: NnMethod, x: &Matrix, y01: &[f64], seed: u64) -> Result<Mlp> {
    if x.rows() < 4 {
        return Err(Error::degenerate(format!(
            "need at least 4 rows to train a network, got {}",
            x.rows()
        )));
    }
    if x.rows() != y01.len() {
        return Err(Error::degenerate(format!(
            "design/target mismatch: {} rows vs {} targets",
            x.rows(),
            y01.len()
        )));
    }
    for i in 0..x.rows() {
        if x.row(i).iter().any(|v| !v.is_finite()) {
            return Err(Error::degenerate(format!(
                "design row {i} contains a non-finite value"
            )));
        }
    }
    if let Some(i) = y01.iter().position(|v| !v.is_finite()) {
        return Err(Error::degenerate(format!("target {i} is non-finite")));
    }

    const METHOD_RETRIES: u64 = 2;
    let mut last_err: Option<Error> = None;
    for attempt in 0..=METHOD_RETRIES {
        // Attempt 0 uses the caller's seed verbatim so the no-fault path
        // reproduces historical results bit-for-bit.
        let mseed = if attempt == 0 {
            seed
        } else {
            child_seed(seed, 0x7E00 + attempt)
        };
        match train_nn_inner(method, x, y01, mseed) {
            Ok(net) => {
                let rmse = net.rmse(x, y01);
                if rmse.is_finite() {
                    return Ok(net);
                }
                last_err = Some(Error::Diverged {
                    epoch: 0,
                    loss: rmse,
                });
                telemetry::point!(
                    "train/retry",
                    method = method.abbrev(),
                    attempt = attempt + 1,
                    loss = rmse
                );
            }
            // Candidate-set exhaustion is retryable exactly like
            // divergence: a reseeded driver may well find viable
            // candidates. Anything else (degenerate data) is final.
            Err(e @ (Error::NoViableModel { .. } | Error::Diverged { .. })) => {
                telemetry::point!(
                    "train/retry",
                    method = method.abbrev(),
                    attempt = attempt + 1,
                    loss = f64::NAN
                );
                last_err = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last_err.unwrap_or(Error::Diverged {
        epoch: 0,
        loss: f64::NAN,
    }))
}

fn train_nn_inner(method: NnMethod, x: &Matrix, y01: &[f64], seed: u64) -> Result<Mlp> {
    let _span = telemetry::span!("train_nn", method = method.abbrev());
    let n = x.rows();
    let p = x.cols();
    let (ti, vi) = split_half(n, child_seed(seed, 0x51));
    let xt = rows_of(x, &ti);
    let yt = targets_of(y01, &ti);
    let xv = rows_of(x, &vi);
    let yv = targets_of(y01, &vi);

    match method {
        NnMethod::Single => {
            // Small single hidden layer, constant learning rate.
            let hidden = (p / 3).clamp(2, 8);
            let cfg = TrainConfig {
                algo: TrainAlgo::Sgd,
                learning_rate: 0.03,
                lr_decay: 1.0,
                epochs: 400,
                seed,
                ..Default::default()
            };
            let mut net = Mlp::new(p, &[hidden], seed);
            net.train(x, y01, &cfg);
            Ok(net)
        }
        NnMethod::Quick => {
            let hidden = p.div_ceil(2).clamp(3, 20);
            let cfg = TrainConfig {
                epochs: 400,
                seed,
                ..Default::default()
            };
            let mut net = Mlp::new(p, &[hidden], seed);
            net.train(x, y01, &cfg);
            Ok(net)
        }
        NnMethod::Dynamic => {
            // Grow the hidden layer while validation improves.
            let cfg = TrainConfig {
                epochs: 300,
                seed,
                ..Default::default()
            };
            let cap = (2 * p).clamp(4, 24);
            let mut best: Option<(Mlp, f64, u64)> = None;
            let mut reasons: Vec<(String, String)> = Vec::new();
            let mut h = 2;
            while h <= cap {
                let mut c = cfg;
                c.seed = child_seed(seed, h as u64);
                let (net, val) = fit_candidate(&[h], &xt, &yt, &xv, &yv, &c);
                let improved = best.as_ref().is_none_or(|(_, bv, _)| val < bv * 0.98);
                telemetry::point!(
                    "grow/hidden",
                    hidden = h,
                    val_rmse = val,
                    improved = improved
                );
                let done = !improved;
                // A diverged candidate must never become the prototype: it
                // would be finalized into a useless network. Record it and
                // keep growing.
                if val.is_finite() {
                    if best.as_ref().is_none_or(|(_, bv, _)| val < *bv) {
                        best = Some((net, val, c.seed));
                    }
                } else {
                    reasons.push((format!("hidden={h}"), format!("validation RMSE {val}")));
                }
                if done {
                    break;
                }
                h += 2;
            }
            let (proto, _, cseed) = best.ok_or(Error::NoViableModel { reasons })?;
            // Retrain under the *winning candidate's* seed: the topology
            // was selected for how it trained under that seed, so the
            // final fit must descend from it, not from the base seed.
            Ok(finalize(
                &proto,
                x,
                y01,
                &TrainConfig {
                    epochs: 400,
                    seed: cseed,
                    ..Default::default()
                },
            ))
        }
        NnMethod::Multiple => {
            // Parallel multi-start across topologies.
            let mut topologies: Vec<Vec<usize>> =
                vec![vec![2], vec![4], vec![8], vec![12], vec![16]];
            topologies.push(vec![p.clamp(2, 24)]);
            topologies.push(vec![8, 4]);
            let cfg = TrainConfig {
                epochs: 350,
                seed,
                ..Default::default()
            };
            let cands: Vec<(Mlp, f64, u64)> = topologies
                .par_iter()
                .enumerate()
                .map(|(k, h)| {
                    let mut c = cfg;
                    c.seed = child_seed(seed, k as u64);
                    let (net, val) = fit_candidate(h, &xt, &yt, &xv, &yv, &c);
                    (net, val, c.seed)
                })
                .collect();
            let mut best: Option<(Mlp, f64, u64)> = None;
            let mut reasons: Vec<(String, String)> = Vec::new();
            for (k, (net, val, cseed)) in cands.into_iter().enumerate() {
                if val.is_finite() {
                    if best.as_ref().is_none_or(|(_, bv, _)| val < *bv) {
                        best = Some((net, val, cseed));
                    }
                } else {
                    reasons.push((
                        format!("topology {:?}", topologies[k]),
                        format!("validation RMSE {val}"),
                    ));
                }
            }
            let (proto, _, cseed) = best.ok_or(Error::NoViableModel { reasons })?;
            Ok(finalize(
                &proto,
                x,
                y01,
                &TrainConfig {
                    epochs: 400,
                    seed: cseed,
                    ..Default::default()
                },
            ))
        }
        NnMethod::Prune => prune_driver(x, y01, &xt, &yt, &xv, &yv, seed, false),
        NnMethod::ExhaustivePrune => prune_driver(x, y01, &xt, &yt, &xv, &yv, seed, true),
    }
}

/// Shared prune/exhaustive-prune driver.
#[allow(clippy::too_many_arguments)]
fn prune_driver(
    x: &Matrix,
    y01: &[f64],
    xt: &Matrix,
    yt: &[f64],
    xv: &Matrix,
    yv: &[f64],
    seed: u64,
    exhaustive: bool,
) -> Result<Mlp> {
    let p = x.cols();
    let (start_h, epochs, retrain_epochs, restarts, tolerance) = if exhaustive {
        ((3 * p / 2).clamp(8, 32), 500, 150, 3, 1.005)
    } else {
        (p.clamp(6, 24), 350, 80, 1, 1.01)
    };

    let attempts: Vec<(u64, Option<Mlp>)> = (0..restarts)
        .into_par_iter()
        .map(|r| {
            let rseed = restart_seed(seed, r as u64);
            let cfg = TrainConfig {
                epochs,
                seed: rseed,
                ..Default::default()
            };
            // Exhaustive mode earns its name: several dense starting
            // topologies compete before pruning begins.
            let starts: Vec<usize> = if exhaustive {
                vec![start_h, (start_h / 2).max(4), (2 * start_h).min(40)]
            } else {
                vec![start_h]
            };
            // Only starts that reached a finite validation RMSE may seed
            // the pruning loop; a restart where every start diverged
            // yields no candidate instead of a poisoned one.
            let mut seeded: Option<(Mlp, f64)> = None;
            for &h in &starts {
                let mut c = cfg;
                c.seed = child_seed(rseed, h as u64);
                let (net, val) = fit_candidate(&[h], xt, yt, xv, yv, &c);
                if val.is_finite() && seeded.as_ref().is_none_or(|(_, bv)| val < *bv) {
                    seeded = Some((net, val));
                }
            }
            let Some((mut net, mut best_val)) = seeded else {
                return (rseed, None);
            };
            let retrain_cfg = TrainConfig {
                epochs: retrain_epochs,
                seed: child_seed(rseed, 1),
                ..Default::default()
            };

            // Greedy structural pruning: hidden units first, then inputs.
            loop {
                let mut accepted = false;
                // Candidate hidden units, weakest first.
                if net.hidden_sizes()[0] > 2 {
                    let h = net.hidden_sizes()[0];
                    let mut units: Vec<(usize, f64)> = (0..h)
                        .map(|u| (u, net.hidden_unit_magnitude(0, u)))
                        .collect();
                    units.sort_by(|a, b| a.1.total_cmp(&b.1));
                    let lookahead = if exhaustive { 3.min(units.len()) } else { 1 };
                    let mut best_trial: Option<(Mlp, f64)> = None;
                    for &(u, _) in units.iter().take(lookahead) {
                        let mut trial = net.clone();
                        trial.prune_hidden_unit(0, u);
                        trial.train(xt, yt, &retrain_cfg);
                        let val = trial.rmse(xv, yv);
                        if best_trial.as_ref().is_none_or(|(_, bv)| val < *bv) {
                            best_trial = Some((trial, val));
                        }
                    }
                    if let Some((trial, val)) = best_trial {
                        if val <= best_val * tolerance {
                            telemetry::point!("prune/hidden", decision = "accept", val_rmse = val,);
                            telemetry::counter_add("prune/accepted", 1);
                            net = trial;
                            best_val = best_val.min(val);
                            accepted = true;
                        } else {
                            telemetry::point!("prune/hidden", decision = "reject", val_rmse = val,);
                            telemetry::counter_add("prune/rejected", 1);
                        }
                    }
                }
                // Candidate input, weakest live one.
                if net.live_inputs() > 2 {
                    let weakest = (0..p)
                        .filter(|&i| !net.input_is_dead(i))
                        .min_by(|&a, &b| net.input_magnitude(a).total_cmp(&net.input_magnitude(b)))
                        .expect("live inputs remain");
                    let mut trial = net.clone();
                    trial.prune_input(weakest);
                    trial.train(xt, yt, &retrain_cfg);
                    let val = trial.rmse(xv, yv);
                    if val <= best_val * tolerance {
                        telemetry::point!(
                            "prune/input",
                            decision = "accept",
                            input = weakest,
                            val_rmse = val,
                        );
                        telemetry::counter_add("prune/accepted", 1);
                        net = trial;
                        best_val = best_val.min(val);
                        accepted = true;
                    } else {
                        telemetry::point!(
                            "prune/input",
                            decision = "reject",
                            input = weakest,
                            val_rmse = val,
                        );
                        telemetry::counter_add("prune/rejected", 1);
                    }
                }
                if !accepted {
                    break;
                }
            }
            (rseed, Some(net))
        })
        .collect();

    // Keep the restart with the best validation error, then retrain on all
    // rows under that restart's seed — the pruned topology was shaped by
    // that seed's trajectory, so the final fit descends from it.
    let mut best: Option<(Mlp, f64, u64)> = None;
    let mut reasons: Vec<(String, String)> = Vec::new();
    for (r, (rseed, attempt)) in attempts.into_iter().enumerate() {
        match attempt {
            Some(net) => {
                let val = net.rmse(xv, yv);
                if val.is_finite() {
                    if best.as_ref().is_none_or(|(_, bv, _)| val < *bv) {
                        best = Some((net, val, rseed));
                    }
                } else {
                    reasons.push((format!("restart {r}"), format!("validation RMSE {val}")));
                }
            }
            None => reasons.push((
                format!("restart {r}"),
                "every starting topology diverged".into(),
            )),
        }
    }
    let (proto, _, rseed) = best.ok_or(Error::NoViableModel { reasons })?;
    let final_epochs = if exhaustive { 600 } else { 400 };
    Ok(finalize(
        &proto,
        x,
        y01,
        &TrainConfig {
            epochs: final_epochs,
            seed: rseed,
            ..Default::default()
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Nonlinear data with an irrelevant input.
    fn data() -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..160)
            .map(|i| {
                let a = (i % 41) as f64 / 41.0;
                let b = ((i * 7) % 29) as f64 / 29.0;
                let c = ((i * 13) % 17) as f64 / 17.0; // irrelevant
                vec![a, b, c]
            })
            .collect();
        let y = rows
            .iter()
            .map(|r| 0.4 + 0.3 * (3.0 * r[0]).sin() * r[1] + 0.15 * r[1])
            .collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn all_methods_train_and_predict() {
        let (x, y) = data();
        for m in [
            NnMethod::Quick,
            NnMethod::Dynamic,
            NnMethod::Multiple,
            NnMethod::Prune,
            NnMethod::ExhaustivePrune,
            NnMethod::Single,
        ] {
            let net = train_nn(m, &x, &y, 42);
            let rmse = net.rmse(&x, &y);
            assert!(rmse < 0.12, "{}: rmse {rmse}", m.abbrev());
        }
    }

    #[test]
    fn methods_are_deterministic() {
        let (x, y) = data();
        let a = train_nn(NnMethod::Multiple, &x, &y, 7);
        let b = train_nn(NnMethod::Multiple, &x, &y, 7);
        assert_eq!(a.forward(x.row(0)), b.forward(x.row(0)));
    }

    #[test]
    fn exhaustive_prune_beats_or_matches_single_on_nonlinear_data() {
        let (x, y) = data();
        let e = train_nn(NnMethod::ExhaustivePrune, &x, &y, 11);
        let s = train_nn(NnMethod::Single, &x, &y, 11);
        let re = e.rmse(&x, &y);
        let rs = s.rmse(&x, &y);
        // NN-E prunes capacity to generalize, so its *training* RMSE may
        // trail a dense SGD fit on noiseless data; both must stay small.
        assert!(
            re <= rs * 2.5 && re < 0.05,
            "NN-E ({re}) should be competitive with NN-S ({rs})"
        );
    }

    #[test]
    fn dynamic_grows_past_minimum() {
        let (x, y) = data();
        let net = train_nn(NnMethod::Dynamic, &x, &y, 13);
        assert!(net.hidden_sizes()[0] >= 2);
    }

    #[test]
    fn prune_may_silence_irrelevant_input() {
        let (x, y) = data();
        let net = train_nn(NnMethod::ExhaustivePrune, &x, &y, 17);
        // Not guaranteed, but the network must keep at least the two real
        // inputs live.
        assert!(net.live_inputs() >= 2);
    }

    #[test]
    fn finalize_descends_from_winning_candidate_seed() {
        let (x, y) = data();
        let seed = 23;
        let trained = train_nn(NnMethod::Multiple, &x, &y, seed);
        // Replay the NN-M driver by hand to recover the winning candidate
        // and its child seed; the shipped model must be the finalize of
        // that (topology, seed) pair, not a base-seed finalize.
        let (ti, vi) = split_half(x.rows(), child_seed(seed, 0x51));
        let xt = rows_of(&x, &ti);
        let yt = targets_of(&y, &ti);
        let xv = rows_of(&x, &vi);
        let yv = targets_of(&y, &vi);
        let p = x.cols();
        let mut topologies: Vec<Vec<usize>> = vec![vec![2], vec![4], vec![8], vec![12], vec![16]];
        topologies.push(vec![p.clamp(2, 24)]);
        topologies.push(vec![8, 4]);
        let cfg = TrainConfig {
            epochs: 350,
            seed,
            ..Default::default()
        };
        let mut best: Option<(Mlp, f64, u64)> = None;
        for (k, h) in topologies.iter().enumerate() {
            let mut c = cfg;
            c.seed = child_seed(seed, k as u64);
            let (net, val) = fit_candidate(h, &xt, &yt, &xv, &yv, &c);
            if val.is_finite() && best.as_ref().is_none_or(|(_, bv, _)| val < *bv) {
                best = Some((net, val, c.seed));
            }
        }
        let (proto, _, cseed) = best.expect("clean data must yield a finite candidate");
        assert_ne!(cseed, seed, "the winner trains under a child seed");
        let fcfg = |s| TrainConfig {
            epochs: 400,
            seed: s,
            ..Default::default()
        };
        let expected = finalize(&proto, &x, &y, &fcfg(cseed));
        let wrong = finalize(&proto, &x, &y, &fcfg(seed));
        let probe = x.row(0);
        assert_eq!(trained.forward(probe), expected.forward(probe));
        assert_ne!(
            expected.forward(probe),
            wrong.forward(probe),
            "regression: finalize ran under the base seed, not the winner's"
        );
    }

    #[test]
    fn abbreviations_match_paper() {
        assert_eq!(NnMethod::ExhaustivePrune.abbrev(), "NN-E");
        assert_eq!(NnMethod::Single.abbrev(), "NN-S");
        assert_eq!(NnMethod::Quick.abbrev(), "NN-Q");
    }
}
