//! Typed tabular data.
//!
//! Clementine distinguishes numeric, flag, and categorical ("set") fields
//! and treats them differently per model family (§3.4). [`Table`] carries
//! that typing so the preprocessing layer can reproduce the behaviour:
//! numeric fields scale to 0–1, flags become 0/1, categoricals one-hot for
//! networks and numeric-coded (or omitted) for regression.

use serde::{Deserialize, Serialize};

/// One column of data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Continuous or ordinal numeric field.
    Numeric(Vec<f64>),
    /// Boolean flag field.
    Flag(Vec<bool>),
    /// Categorical field: per-row level codes plus the level names.
    Categorical {
        /// Per-row index into `levels`.
        codes: Vec<u32>,
        /// Level names, indexed by code.
        levels: Vec<String>,
    },
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Numeric(v) => v.len(),
            Column::Flag(v) => v.len(),
            Column::Categorical { codes, .. } => codes.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether every row holds the same value (Clementine drops such
    /// predictors — "no variation", §3.4).
    pub fn is_constant(&self) -> bool {
        match self {
            Column::Numeric(v) => v.windows(2).all(|w| w[0] == w[1]),
            Column::Flag(v) => v.windows(2).all(|w| w[0] == w[1]),
            Column::Categorical { codes, .. } => codes.windows(2).all(|w| w[0] == w[1]),
        }
    }

    /// Select a subset of rows, in order.
    pub fn select(&self, rows: &[usize]) -> Column {
        match self {
            Column::Numeric(v) => Column::Numeric(rows.iter().map(|&i| v[i]).collect()),
            Column::Flag(v) => Column::Flag(rows.iter().map(|&i| v[i]).collect()),
            Column::Categorical { codes, levels } => Column::Categorical {
                codes: rows.iter().map(|&i| codes[i]).collect(),
                levels: levels.clone(),
            },
        }
    }
}

/// A predictor table with a numeric target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    names: Vec<String>,
    columns: Vec<Column>,
    target: Vec<f64>,
}

impl Table {
    /// Empty table.
    pub fn new() -> Self {
        Table {
            names: Vec::new(),
            columns: Vec::new(),
            target: Vec::new(),
        }
    }

    /// Add a numeric predictor column.
    pub fn add_numeric(&mut self, name: impl Into<String>, values: Vec<f64>) -> &mut Self {
        self.push_column(name.into(), Column::Numeric(values))
    }

    /// Add a flag predictor column.
    pub fn add_flag(&mut self, name: impl Into<String>, values: Vec<bool>) -> &mut Self {
        self.push_column(name.into(), Column::Flag(values))
    }

    /// Add a categorical predictor column.
    pub fn add_categorical(
        &mut self,
        name: impl Into<String>,
        codes: Vec<u32>,
        levels: Vec<String>,
    ) -> &mut Self {
        for &c in &codes {
            assert!(
                (c as usize) < levels.len(),
                "categorical code {c} out of range ({} levels)",
                levels.len()
            );
        }
        self.push_column(name.into(), Column::Categorical { codes, levels })
    }

    fn push_column(&mut self, name: String, col: Column) -> &mut Self {
        if let Some(n) = self.n_rows_opt() {
            assert_eq!(col.len(), n, "column '{name}' row count mismatch");
        }
        assert!(
            !self.names.contains(&name),
            "duplicate column name '{name}'"
        );
        self.names.push(name);
        self.columns.push(col);
        self
    }

    /// Set the target values.
    pub fn set_target(&mut self, target: Vec<f64>) -> &mut Self {
        if let Some(n) = self.n_rows_opt() {
            assert_eq!(target.len(), n, "target row count mismatch");
        }
        self.target = target;
        self
    }

    fn n_rows_opt(&self) -> Option<usize> {
        self.columns.first().map(|c| c.len()).or({
            if self.target.is_empty() {
                None
            } else {
                Some(self.target.len())
            }
        })
    }

    /// Number of rows.
    ///
    /// A table with no columns *and* no target has no statable row
    /// count; this accessor reports it as 0, which is fine for sizing
    /// loops but silently masks a degenerate table from callers that
    /// require rows. Those callers (the predict surfaces) go through
    /// [`Table::try_n_rows`] instead.
    pub fn n_rows(&self) -> usize {
        self.n_rows_opt().unwrap_or(0)
    }

    /// Number of rows, as a typed error when the table cannot state one
    /// (no columns and no target). Callers that *require* rows use this
    /// so a column-less table surfaces as [`fault::Error::DegenerateData`]
    /// instead of being silently treated as empty.
    pub(crate) fn try_n_rows(&self) -> fault::Result<usize> {
        self.n_rows_opt().ok_or_else(|| {
            fault::Error::degenerate("table has no columns and no target; row count is undefined")
        })
    }

    /// Number of predictor columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Column names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.columns[i])
    }

    /// Target values.
    pub fn target(&self) -> &[f64] {
        &self.target
    }

    /// New table with only the given rows (in order). Used for random
    /// sampling, cross-validation splits, and year splits.
    pub fn select_rows(&self, rows: &[usize]) -> Table {
        for &r in rows {
            assert!(r < self.n_rows(), "row {r} out of range");
        }
        Table {
            names: self.names.clone(),
            columns: self.columns.iter().map(|c| c.select(rows)).collect(),
            target: rows.iter().map(|&i| self.target[i]).collect(),
        }
    }

    /// Validate internal consistency (equal lengths, target present).
    /// Panicking wrapper over [`Table::try_validate`].
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Validate internal consistency, reporting defects as
    /// [`fault::Error::DegenerateData`]: empty tables, length mismatches,
    /// non-finite values in the target or any numeric predictor.
    pub fn try_validate(&self) -> fault::Result<()> {
        let n = self.n_rows();
        if n == 0 {
            return Err(fault::Error::degenerate("table is empty"));
        }
        for (name, col) in self.names.iter().zip(&self.columns) {
            if col.len() != n {
                return Err(fault::Error::degenerate(format!(
                    "column '{name}' length mismatch: {} vs {n} rows",
                    col.len()
                )));
            }
            if let Column::Numeric(v) = col {
                if let Some(i) = v.iter().position(|x| !x.is_finite()) {
                    return Err(fault::Error::degenerate(format!(
                        "column '{name}' contains a non-finite value at row {i}"
                    )));
                }
            }
        }
        if self.target.len() != n {
            return Err(fault::Error::degenerate(format!(
                "target length mismatch: {} vs {n} rows",
                self.target.len()
            )));
        }
        if let Some(i) = self.target.iter().position(|t| !t.is_finite()) {
            return Err(fault::Error::degenerate(format!(
                "target contains non-finite values (first at row {i})"
            )));
        }
        Ok(())
    }
}

impl Default for Table {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new();
        t.add_numeric("speed", vec![1.0, 2.0, 3.0, 4.0])
            .add_flag("smt", vec![true, false, true, false])
            .add_categorical(
                "bpred",
                vec![0, 1, 2, 1],
                vec!["perfect".into(), "bimodal".into(), "gshare".into()],
            )
            .set_target(vec![10.0, 20.0, 30.0, 40.0]);
        t
    }

    #[test]
    fn build_and_validate() {
        let t = sample();
        t.validate();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 3);
    }

    /// Regression (predict-path edge cases): `n_rows()` reports a
    /// column-less, target-less table as 0 rows, which callers used to
    /// take at face value. `try_n_rows` surfaces the undefined row
    /// count as a typed `DegenerateData` instead.
    #[test]
    fn column_less_table_row_count_is_typed_degenerate() {
        let empty = Table::new();
        assert_eq!(empty.n_rows(), 0, "legacy accessor still sizes loops");
        let e = empty.try_n_rows().expect_err("row count is unstatable");
        assert_eq!(e.kind(), "degenerate");
        // A target alone pins the row count even without columns…
        let mut target_only = Table::new();
        target_only.set_target(vec![1.0, 2.0]);
        assert_eq!(target_only.try_n_rows().expect("target states rows"), 2);
        // …and any column does too.
        assert_eq!(sample().try_n_rows().expect("columns state rows"), 4);
    }

    #[test]
    fn select_rows_reorders() {
        let t = sample().select_rows(&[3, 0]);
        assert_eq!(t.target(), &[40.0, 10.0]);
        match t.column("speed").unwrap() {
            Column::Numeric(v) => assert_eq!(v, &vec![4.0, 1.0]),
            _ => panic!(),
        }
    }

    #[test]
    fn constant_detection() {
        assert!(Column::Numeric(vec![2.0, 2.0, 2.0]).is_constant());
        assert!(!Column::Numeric(vec![2.0, 2.1]).is_constant());
        assert!(Column::Flag(vec![true, true]).is_constant());
        assert!(Column::Categorical {
            codes: vec![1, 1],
            levels: vec!["a".into(), "b".into()]
        }
        .is_constant());
    }

    #[test]
    fn try_validate_reports_defects_as_degenerate_data() {
        let empty = Table::new();
        assert!(matches!(
            empty.try_validate(),
            Err(fault::Error::DegenerateData { .. })
        ));
        let mut nan_target = sample();
        nan_target.set_target(vec![1.0, f64::NAN, 3.0, 4.0]);
        let err = nan_target.try_validate().expect_err("NaN target");
        assert!(err.to_string().contains("target"), "{err}");
        let mut nan_pred = Table::new();
        nan_pred
            .add_numeric("a", vec![1.0, f64::INFINITY])
            .set_target(vec![1.0, 2.0]);
        let err = nan_pred.try_validate().expect_err("Inf predictor");
        assert!(err.to_string().contains("'a'"), "{err}");
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn mismatched_column_panics() {
        let mut t = Table::new();
        t.add_numeric("a", vec![1.0, 2.0]);
        t.add_numeric("b", vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_name_panics() {
        let mut t = Table::new();
        t.add_numeric("a", vec![1.0]);
        t.add_numeric("a", vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_categorical_code_panics() {
        let mut t = Table::new();
        t.add_categorical("c", vec![5], vec!["only".into()]);
    }
}
