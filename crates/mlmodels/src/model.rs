//! Unified model interface: the paper's nine models plus NN-S.
//!
//! [`train`] dispatches a [`ModelKind`] to the linear-regression or
//! neural-network pipeline, handling the §3.4 preparation differences
//! (numeric coding for LR, one-hot + target scaling for NN). The returned
//! [`TrainedModel`] carries its preprocessor, so prediction takes raw
//! [`Table`]s.

use crate::gramcache::LrGramCache;
use crate::linreg::LinearFit;
use crate::methods::{try_train_nn, NnMethod};
use crate::nn::Mlp;
use crate::prep::{Encoding, Preprocessor};
use crate::select::{try_select_with, SelectionMethod, Thresholds};
use crate::table::Table;
use fault::Result;
use serde::{Deserialize, Serialize};

/// Every model evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Linear regression, Enter method.
    LrE,
    /// Linear regression, Stepwise.
    LrS,
    /// Linear regression, Backward.
    LrB,
    /// Linear regression, Forward.
    LrF,
    /// Neural network, Quick.
    NnQ,
    /// Neural network, Dynamic.
    NnD,
    /// Neural network, Multiple.
    NnM,
    /// Neural network, Prune.
    NnP,
    /// Neural network, Exhaustive Prune.
    NnE,
    /// Neural network, Single layer (Ipek-style).
    NnS,
}

impl ModelKind {
    /// The nine models of Figures 7–8, in the paper's x-axis order.
    pub const FIGURE7_ORDER: [ModelKind; 9] = [
        ModelKind::LrE,
        ModelKind::LrS,
        ModelKind::LrB,
        ModelKind::LrF,
        ModelKind::NnQ,
        ModelKind::NnD,
        ModelKind::NnM,
        ModelKind::NnP,
        ModelKind::NnE,
    ];

    /// The three models of Figures 2–6.
    pub const FIGURE2_ORDER: [ModelKind; 3] = [ModelKind::NnE, ModelKind::NnS, ModelKind::LrB];

    /// All ten models.
    pub const ALL: [ModelKind; 10] = [
        ModelKind::LrE,
        ModelKind::LrS,
        ModelKind::LrB,
        ModelKind::LrF,
        ModelKind::NnQ,
        ModelKind::NnD,
        ModelKind::NnM,
        ModelKind::NnP,
        ModelKind::NnE,
        ModelKind::NnS,
    ];

    /// The paper's abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            ModelKind::LrE => "LR-E",
            ModelKind::LrS => "LR-S",
            ModelKind::LrB => "LR-B",
            ModelKind::LrF => "LR-F",
            ModelKind::NnQ => "NN-Q",
            ModelKind::NnD => "NN-D",
            ModelKind::NnM => "NN-M",
            ModelKind::NnP => "NN-P",
            ModelKind::NnE => "NN-E",
            ModelKind::NnS => "NN-S",
        }
    }

    /// Parse the paper abbreviation.
    pub fn from_abbrev(s: &str) -> Option<ModelKind> {
        ModelKind::ALL.iter().copied().find(|m| m.abbrev() == s)
    }

    /// Whether this is a linear-regression model.
    pub fn is_linear(self) -> bool {
        matches!(
            self,
            ModelKind::LrE | ModelKind::LrS | ModelKind::LrB | ModelKind::LrF
        )
    }

    fn selection(self) -> Option<SelectionMethod> {
        match self {
            ModelKind::LrE => Some(SelectionMethod::Enter),
            ModelKind::LrS => Some(SelectionMethod::Stepwise),
            ModelKind::LrB => Some(SelectionMethod::Backward),
            ModelKind::LrF => Some(SelectionMethod::Forward),
            _ => None,
        }
    }

    fn nn_method(self) -> Option<NnMethod> {
        match self {
            ModelKind::NnQ => Some(NnMethod::Quick),
            ModelKind::NnD => Some(NnMethod::Dynamic),
            ModelKind::NnM => Some(NnMethod::Multiple),
            ModelKind::NnP => Some(NnMethod::Prune),
            ModelKind::NnE => Some(NnMethod::ExhaustivePrune),
            ModelKind::NnS => Some(NnMethod::Single),
            _ => None,
        }
    }
}

/// The fitted estimator behind a [`TrainedModel`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Estimator {
    /// Linear fit (coefficients over the coded design matrix).
    Linear(LinearFit),
    /// Neural network (over the one-hot design matrix, scaled target).
    Network(Mlp),
}

/// A trained model with its preprocessing baked in.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedModel {
    /// Which model this is.
    pub kind: ModelKind,
    /// Fitted preprocessor.
    pub prep: Preprocessor,
    /// Fitted estimator.
    pub estimator: Estimator,
}

impl TrainedModel {
    /// Predict the target for every row of a raw table, rejecting
    /// malformed inputs with typed errors instead of panicking:
    /// `DegenerateData` when the table cannot state a row count
    /// (no columns and no target), `InvalidInput` when its columns do
    /// not match the preprocessing plan or the resulting design width
    /// does not fit the estimator.
    pub fn try_predict(&self, table: &Table) -> Result<Vec<f64>> {
        let _span = telemetry::span!("predict", model = self.kind.abbrev(), rows = table.n_rows());
        table.try_n_rows()?;
        let x = self.prep.try_transform(table)?;
        match &self.estimator {
            Estimator::Linear(fit) => fit.try_predict(&x),
            Estimator::Network(net) => Ok(net
                .try_predict(&x)?
                .into_iter()
                .map(|p| self.prep.unscale_target(p))
                .collect()),
        }
    }

    /// Predict the target for every row of a raw table.
    ///
    /// Panics when the table does not match the model's preprocessing
    /// plan; use [`Self::try_predict`] on untrusted tables.
    pub fn predict(&self, table: &Table) -> Vec<f64> {
        match self.try_predict(table) {
            Ok(y) => y,
            Err(e) => panic!("predict {}: {e}", self.kind.abbrev()),
        }
    }

    /// The linear fit, when this is a regression model.
    pub fn linear_fit(&self) -> Option<&LinearFit> {
        match &self.estimator {
            Estimator::Linear(f) => Some(f),
            Estimator::Network(_) => None,
        }
    }

    /// The network, when this is an NN model.
    pub fn network(&self) -> Option<&Mlp> {
        match &self.estimator {
            Estimator::Network(n) => Some(n),
            Estimator::Linear(_) => None,
        }
    }
}

/// Train `kind` on a table. Deterministic per `(kind, table, seed)`.
///
/// Infallible-signature wrapper over [`try_train`]; panics on its error
/// paths (degenerate tables, singular designs, divergence surviving all
/// retries). Pipeline code uses [`try_train`].
pub fn train(kind: ModelKind, table: &Table, seed: u64) -> TrainedModel {
    match try_train(kind, table, seed) {
        Ok(m) => m,
        Err(e) => panic!("train {}: {e}", kind.abbrev()),
    }
}

/// Fallible training. Deterministic per `(kind, table, seed)`; on the
/// no-fault path it produces bit-identical models to the historical
/// [`train`]. Failures surface as typed [`fault::Error`]s:
/// `DegenerateData` for unusable tables, `SingularSystem` for
/// unsalvageable designs, `Diverged` when NN retries are exhausted.
pub fn try_train(kind: ModelKind, table: &Table, seed: u64) -> Result<TrainedModel> {
    try_train_cached(kind, table, seed, None, &[])
}

/// [`try_train`] with an optional shared-Gram cache for linear models.
///
/// Cross-validation passes the full-table [`LrGramCache`] plus the rows
/// held out from `table`; when the fold's preprocessing plan matches the
/// full table's, candidate scoring reuses the cached statistics instead
/// of re-accumulating the fold's Gram. Non-linear kinds and plan
/// mismatches train exactly as [`try_train`] does.
pub(crate) fn try_train_cached(
    kind: ModelKind,
    table: &Table,
    seed: u64,
    cache: Option<&LrGramCache>,
    held_out: &[usize],
) -> Result<TrainedModel> {
    let _span = telemetry::span!("train", model = kind.abbrev(), rows = table.n_rows());
    telemetry::counter_add("train/fits", 1);
    table.try_validate()?;
    if let Some(selection) = kind.selection() {
        let prep = Preprocessor::fit(table, Encoding::NumericCoded);
        let x = prep.transform(table);
        let ne = cache.and_then(|c| c.normal_eq_for(&prep, held_out));
        let fit = try_select_with(
            &x,
            table.target(),
            ne.as_ref(),
            selection,
            Thresholds::default(),
        )?;
        Ok(TrainedModel {
            kind,
            prep,
            estimator: Estimator::Linear(fit),
        })
    } else {
        let method = kind.nn_method().expect("model is LR or NN");
        let prep = Preprocessor::fit(table, Encoding::OneHot);
        let x = prep.transform(table);
        let y01 = prep.scaled_targets(table);
        let net = try_train_nn(method, &x, &y01, seed)?;
        Ok(TrainedModel {
            kind,
            prep,
            estimator: Estimator::Network(net),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mildly nonlinear synthetic system table.
    fn table(n: usize) -> Table {
        let speeds: Vec<f64> = (0..n).map(|i| 1000.0 + (i % 20) as f64 * 100.0).collect();
        let mems: Vec<f64> = (0..n)
            .map(|i| [266.0, 333.0, 400.0, 533.0][i % 4])
            .collect();
        let smt: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                0.01 * speeds[i] * (1.0 + 0.1 * (mems[i] / 400.0).ln())
                    + if smt[i] { 1.5 } else { 0.0 }
            })
            .collect();
        let mut t = Table::new();
        t.add_numeric("speed", speeds)
            .add_numeric("mem_freq", mems)
            .add_flag("smt", smt)
            .set_target(y);
        t
    }

    #[test]
    fn all_kinds_train_and_predict_reasonably() {
        let t = table(120);
        for kind in ModelKind::ALL {
            let m = train(kind, &t, 3);
            let preds = m.predict(&t);
            let (mape, _) = linalg::stats::mape(&preds, t.target());
            assert!(mape < 8.0, "{}: training MAPE {mape}", kind.abbrev());
        }
    }

    #[test]
    fn linear_models_expose_fits_and_nn_models_networks() {
        let t = table(60);
        let lr = train(ModelKind::LrB, &t, 1);
        assert!(lr.linear_fit().is_some());
        assert!(lr.network().is_none());
        let nn = train(ModelKind::NnS, &t, 1);
        assert!(nn.network().is_some());
        assert!(nn.linear_fit().is_none());
    }

    /// Regression (predict-path edge cases): predicting through a table
    /// that does not match the fitted plan used to panic deep in the
    /// design-matrix indexing; `try_predict` reports typed errors, and
    /// a column-less table is `DegenerateData` rather than a silent
    /// empty prediction vector.
    #[test]
    fn try_predict_rejects_mismatched_and_column_less_tables() {
        let t = table(60);
        for kind in [ModelKind::LrE, ModelKind::NnQ] {
            let m = train(kind, &t, 3);
            // Fewer columns than the plan reads.
            let mut narrow = Table::new();
            narrow
                .add_numeric("speed", vec![1500.0, 2500.0])
                .set_target(vec![0.0, 0.0]);
            let e = m.try_predict(&narrow).expect_err("narrow table");
            assert_eq!(e.kind(), "invalid", "{}", kind.abbrev());
            // Right arity, wrong column type where the plan expects a flag.
            let mut retyped = Table::new();
            retyped
                .add_numeric("speed", vec![1500.0])
                .add_numeric("mem_freq", vec![333.0])
                .add_numeric("smt", vec![1.0])
                .set_target(vec![0.0]);
            let e = m.try_predict(&retyped).expect_err("retyped column");
            assert_eq!(e.kind(), "invalid", "{}", kind.abbrev());
            assert!(e.to_string().contains("flag"), "{}: {e}", kind.abbrev());
            // Column-less table: previously a silent empty Vec.
            let e = m.try_predict(&Table::new()).expect_err("column-less table");
            assert_eq!(e.kind(), "degenerate", "{}", kind.abbrev());
            // The happy path agrees with the panicking surface.
            assert_eq!(m.try_predict(&t).expect("matching table"), m.predict(&t));
        }
    }

    #[test]
    fn abbreviations_roundtrip() {
        for kind in ModelKind::ALL {
            assert_eq!(ModelKind::from_abbrev(kind.abbrev()), Some(kind));
        }
        assert_eq!(ModelKind::from_abbrev("??"), None);
    }

    #[test]
    fn figure_orders_have_expected_membership() {
        assert_eq!(ModelKind::FIGURE7_ORDER.len(), 9);
        assert!(!ModelKind::FIGURE7_ORDER.contains(&ModelKind::NnS));
        assert_eq!(
            ModelKind::FIGURE2_ORDER.to_vec(),
            vec![ModelKind::NnE, ModelKind::NnS, ModelKind::LrB]
        );
    }

    #[test]
    fn training_is_deterministic() {
        let t = table(80);
        let a = train(ModelKind::NnE, &t, 5);
        let b = train(ModelKind::NnE, &t, 5);
        assert_eq!(a.predict(&t), b.predict(&t));
    }

    #[test]
    fn generalizes_to_held_out_rows() {
        let t = table(160);
        let train_rows: Vec<usize> = (0..160).filter(|i| i % 2 == 0).collect();
        let test_rows: Vec<usize> = (0..160).filter(|i| i % 2 == 1).collect();
        let tr = t.select_rows(&train_rows);
        let te = t.select_rows(&test_rows);
        // LR must nail the (nearly linear) surface; the pruned network is
        // allowed a looser bound — architecture search on 80 rows is noisy.
        for (kind, bound) in [(ModelKind::LrE, 5.0), (ModelKind::NnE, 20.0)] {
            let m = train(kind, &tr, 9);
            let preds = m.predict(&te);
            let (mape, _) = linalg::stats::mape(&preds, te.target());
            assert!(mape < bound, "{}: held-out MAPE {mape}", kind.abbrev());
        }
    }
}
