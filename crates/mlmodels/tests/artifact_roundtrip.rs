//! Property tests for the versioned model-artifact format: a trained
//! model must survive `serialize → deserialize → predict` with
//! bit-identical predictions for every [`ModelKind`], and corrupted
//! bytes must surface as typed `artifact` errors rather than panics or
//! silently-wrong models.

use mlmodels::table::Table;
use mlmodels::{try_train, ModelArtifact, ModelKind};
use proptest::prelude::*;

/// A small random table shaped like the paper's data: numeric, flag and
/// categorical predictors with a linear-ish target. Sized so every
/// model kind trains without a singular system.
fn arb_table() -> impl Strategy<Value = Table> {
    (
        prop::collection::vec(0.0f64..100.0, 24..48),
        prop::collection::vec(any::<bool>(), 24..48),
        0.1f64..5.0,
    )
        .prop_map(|(xs, flags, slope)| {
            let n = xs.len().min(flags.len());
            let xs = &xs[..n];
            let flags = &flags[..n];
            let codes: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
            let y: Vec<f64> = (0..n)
                .map(|i| 10.0 + slope * xs[i] + if flags[i] { 3.0 } else { 0.0 } + codes[i] as f64)
                .collect();
            let mut t = Table::new();
            t.add_numeric("x", xs.to_vec())
                .add_flag("f", flags.to_vec())
                .add_categorical("c", codes, vec!["a".into(), "b".into(), "z".into()])
                .set_target(y);
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `serialize → deserialize → predict` is bit-identical for every
    /// model kind that trains on the table. Exact `to_bits` equality,
    /// not an epsilon: the format stores every f64 with shortest
    /// round-trip formatting, so nothing may drift.
    #[test]
    fn roundtrip_predictions_are_bit_identical(t in arb_table()) {
        for kind in ModelKind::ALL {
            // A degenerate draw may make one kind untrainable (singular
            // system); that is a typed numeric error, not a format bug.
            let Ok(model) = try_train(kind, &t, 7) else { continue };
            let artifact = ModelArtifact::from_training(model, &t);
            let bytes = artifact.to_bytes().expect("serialize");
            let back = ModelArtifact::from_bytes("<roundtrip>", &bytes).expect("deserialize");
            prop_assert_eq!(back.model.kind, kind);
            prop_assert_eq!(back.schema.columns.len(), artifact.schema.columns.len());
            let before = artifact.model.predict(&t);
            let after = back.model.predict(&t);
            prop_assert_eq!(before.len(), after.len());
            for (b, a) in before.iter().zip(&after) {
                prop_assert_eq!(b.to_bits(), a.to_bits(), "kind {}", kind.abbrev());
            }
            // A second encode of the decoded artifact is byte-stable.
            prop_assert_eq!(&bytes, &back.to_bytes().expect("re-serialize"));
        }
    }

    /// Truncating the artifact at any prefix length is a typed
    /// `artifact` error — never a panic, never an Ok.
    #[test]
    fn truncation_is_always_a_typed_error(t in arb_table(), cut in 0.0f64..1.0) {
        let model = try_train(ModelKind::LrB, &t, 7).expect("LR-B trains");
        let bytes = ModelArtifact::from_training(model, &t)
            .to_bytes()
            .expect("serialize");
        let len = (bytes.len() as f64 * cut) as usize;
        prop_assert!(len < bytes.len());
        let err = ModelArtifact::from_bytes("<truncated>", &bytes[..len])
            .expect_err("truncated artifact must not load");
        prop_assert_eq!(err.kind(), "artifact");
        prop_assert_eq!(err.exit_code(), 4);
    }

    /// Flipping any single payload byte trips the checksum (or the JSON
    /// parser) — again a typed error, never a silently different model.
    #[test]
    fn single_byte_corruption_is_detected(t in arb_table(), pos in 0.0f64..1.0) {
        let model = try_train(ModelKind::NnQ, &t, 7).expect("NN-Q trains");
        let bytes = ModelArtifact::from_training(model, &t)
            .to_bytes()
            .expect("serialize");
        let header_end = bytes.iter().position(|&b| b == b'\n').expect("header line") + 1;
        let payload_len = bytes.len() - header_end - 1; // trailing newline
        let i = header_end + ((payload_len - 1) as f64 * pos) as usize;
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x01;
        let err = ModelArtifact::from_bytes("<flipped>", &corrupt)
            .expect_err("corrupted payload must not load");
        prop_assert_eq!(err.kind(), "artifact");
    }
}

/// Build a valid artifact byte blob for the hand-corruption tests below.
fn valid_bytes() -> Vec<u8> {
    let mut t = Table::new();
    let n = 32;
    let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let y: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
    t.add_numeric("x", xs)
        .add_flag("f", (0..n).map(|i| i % 2 == 0).collect())
        .set_target(y);
    let model = try_train(ModelKind::LrB, &t, 7).expect("LR-B trains");
    ModelArtifact::from_training(model, &t)
        .to_bytes()
        .expect("serialize")
}

fn patched_header(bytes: &[u8], from: &str, to: &str) -> Vec<u8> {
    let header_end = bytes.iter().position(|&b| b == b'\n').expect("header line");
    let header = std::str::from_utf8(&bytes[..header_end]).expect("utf-8 header");
    assert!(header.contains(from), "header {header} lacks {from}");
    let mut out = header.replacen(from, to, 1).into_bytes();
    out.extend_from_slice(&bytes[header_end..]);
    out
}

#[test]
fn future_format_version_is_rejected_as_newer() {
    let bytes = patched_header(
        &valid_bytes(),
        "\"format_version\":1",
        "\"format_version\":99",
    );
    let err = ModelArtifact::from_bytes("<future>", &bytes).expect_err("future version");
    assert_eq!(err.kind(), "artifact");
    assert!(err.to_string().contains("newer"), "{err}");
}

#[test]
fn version_zero_is_rejected() {
    let bytes = patched_header(
        &valid_bytes(),
        "\"format_version\":1",
        "\"format_version\":0",
    );
    let err = ModelArtifact::from_bytes("<v0>", &bytes).expect_err("version 0");
    assert_eq!(err.kind(), "artifact");
}

#[test]
fn header_kind_must_match_payload_kind() {
    // Same-length abbreviation keeps payload_bytes honest, so only the
    // kind cross-check can catch the mismatch.
    let bytes = patched_header(&valid_bytes(), "\"kind\":\"LR-B\"", "\"kind\":\"NN-Q\"");
    let err = ModelArtifact::from_bytes("<kind>", &bytes).expect_err("kind mismatch");
    assert_eq!(err.kind(), "artifact");
}

#[test]
fn flipped_checksum_is_rejected() {
    let bytes = valid_bytes();
    let header_end = bytes.iter().position(|&b| b == b'\n').expect("header line");
    let header = std::str::from_utf8(&bytes[..header_end]).expect("utf-8 header");
    let tag = "\"checksum\":\"fnv1a64:";
    let at = header.find(tag).expect("checksum field") + tag.len();
    let mut patched = bytes.clone();
    // Rotate the first checksum hex digit to a different one.
    patched[at] = if patched[at] == b'0' { b'1' } else { b'0' };
    let err = ModelArtifact::from_bytes("<checksum>", &patched).expect_err("bad checksum");
    assert_eq!(err.kind(), "artifact");
    assert!(err.to_string().contains("checksum"), "{err}");
}

#[test]
fn garbage_is_a_typed_error() {
    for garbage in [
        &b""[..],
        &b"\n"[..],
        &b"not json\n{}\n"[..],
        &b"{\"type\":\"something-else\"}\n{}\n"[..],
    ] {
        let err = ModelArtifact::from_bytes("<garbage>", garbage).expect_err("garbage");
        assert_eq!(err.kind(), "artifact", "input {garbage:?}");
    }
}

#[test]
fn save_load_roundtrips_through_disk() {
    let dir = std::env::temp_dir().join("perfpredict_artifact_roundtrip");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("m.ppmodel").to_string_lossy().into_owned();
    let bytes = valid_bytes();
    let artifact = ModelArtifact::from_bytes("<mem>", &bytes).expect("valid");
    artifact.save(&path).expect("save");
    let loaded = ModelArtifact::load(&path).expect("load");
    assert_eq!(loaded.to_bytes().expect("re-encode"), bytes);
    std::fs::remove_file(&path).expect("cleanup");
}
