//! Property-based tests for the modelling crate.

use linalg::Matrix;
use mlmodels::linreg::LinearFit;
use mlmodels::nn::{Mlp, TrainConfig};
use mlmodels::prep::{Encoding, Preprocessor};
use mlmodels::select::{select, SelectionMethod, Thresholds};
use mlmodels::table::Table;
use mlmodels::{try_train, ModelKind};
use proptest::prelude::*;

/// A small random table with one numeric, one flag, one categorical
/// predictor and a linear-ish target.
fn arb_table() -> impl Strategy<Value = Table> {
    (
        prop::collection::vec(0.0f64..100.0, 12..40),
        prop::collection::vec(any::<bool>(), 12..40),
        0.1f64..5.0,
    )
        .prop_map(|(xs, flags, slope)| {
            let n = xs.len().min(flags.len());
            let xs = &xs[..n];
            let flags = &flags[..n];
            let codes: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
            let y: Vec<f64> = (0..n)
                .map(|i| 10.0 + slope * xs[i] + if flags[i] { 3.0 } else { 0.0 })
                .collect();
            let mut t = Table::new();
            t.add_numeric("x", xs.to_vec())
                .add_flag("f", flags.to_vec())
                .add_categorical("c", codes, vec!["a".into(), "b".into(), "z".into()])
                .set_target(y);
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The preprocessor maps every training row into [0,1] for every
    /// encoding, and the target scaling round-trips.
    #[test]
    fn preprocessing_bounds_and_roundtrip(t in arb_table()) {
        for enc in [Encoding::NumericCoded, Encoding::OneHot] {
            let pp = Preprocessor::fit(&t, enc);
            let m = pp.transform(&t);
            for i in 0..m.rows() {
                for j in 0..m.cols() {
                    prop_assert!((-1e-9..=1.0 + 1e-9).contains(&m[(i, j)]));
                }
            }
            for &y in t.target() {
                prop_assert!((pp.unscale_target(pp.scale_target(y)) - y).abs() < 1e-9);
            }
        }
    }

    /// Row selection commutes with preprocessing: transforming a subset
    /// equals the subset of the transform.
    #[test]
    fn transform_commutes_with_row_selection(t in arb_table()) {
        let pp = Preprocessor::fit(&t, Encoding::OneHot);
        let full = pp.transform(&t);
        let rows: Vec<usize> = (0..t.n_rows()).step_by(2).collect();
        let sub = pp.transform(&t.select_rows(&rows));
        for (si, &fi) in rows.iter().enumerate() {
            for j in 0..full.cols() {
                prop_assert!((sub[(si, j)] - full[(fi, j)]).abs() < 1e-12);
            }
        }
    }

    /// Adding a predictor to a linear fit never increases the RSS.
    #[test]
    fn rss_monotone_in_predictors(
        data in prop::collection::vec(-5.0f64..5.0, 20 * 3),
        y in prop::collection::vec(-10.0f64..10.0, 20),
    ) {
        let x = Matrix::from_vec(20, 3, data);
        let f1 = LinearFit::fit(&x, &y, &[0]);
        let f2 = LinearFit::fit(&x, &y, &[0, 1]);
        let f3 = LinearFit::fit(&x, &y, &[0, 1, 2]);
        prop_assert!(f2.rss <= f1.rss + 1e-6);
        prop_assert!(f3.rss <= f2.rss + 1e-6);
    }

    /// Every selection method returns a usable fit whose RSS does not
    /// exceed the intercept-only baseline.
    #[test]
    fn selection_never_beats_worse_than_mean(
        data in prop::collection::vec(-5.0f64..5.0, 24 * 4),
        y in prop::collection::vec(-10.0f64..10.0, 24),
    ) {
        let x = Matrix::from_vec(24, 4, data);
        let base = LinearFit::fit(&x, &y, &[]);
        for m in [
            SelectionMethod::Enter,
            SelectionMethod::Forward,
            SelectionMethod::Backward,
            SelectionMethod::Stepwise,
        ] {
            let fit = select(&x, &y, m, Thresholds::default());
            prop_assert!(fit.rss <= base.rss + 1e-6, "{m:?}");
            prop_assert!(fit.predict(&x).iter().all(|p| p.is_finite()));
        }
    }

    /// Random add/drop sequences against the incremental normal-equations
    /// engine reproduce the from-scratch [`LinearFit::try_fit`] exactly
    /// (active sets identical; RSS and coefficients to 1e-10). The design
    /// carries a near-collinear column (predictor 5 ≈ predictor 0): with a
    /// tiny perturbation its addition scores `Uncertain` (pivot guard),
    /// with a moderate one it joins the active set and the downdate path
    /// — including its fresh-factorization fallback — must still match.
    #[test]
    fn incremental_add_drop_matches_from_scratch_fit(
        data in prop::collection::vec(-5.0f64..5.0, 28 * 5),
        noise in prop::collection::vec(-1.0f64..1.0, 28),
        noise2 in prop::collection::vec(-1.0f64..1.0, 28),
        tiny in 1e-7f64..1e-6,
        wide in 0.05f64..0.5,
        use_tiny in any::<bool>(),
        ops in prop::collection::vec((any::<bool>(), 0usize..6), 1..14),
    ) {
        use linalg::gram::{ActiveCholesky, AddScore, NormalEq};
        let n = 28;
        let eps = if use_tiny { tiny } else { wide };
        let x = Matrix::from_fn(n, 6, |i, j| {
            if j < 5 { data[i * 5 + j] } else { data[i * 5] + eps * noise[i] }
        });
        // Target: linear in two columns plus noise no column explains, so
        // no active set fits exactly and the RSS comparison stays healthy.
        let y: Vec<f64> = (0..n)
            .map(|i| 2.0 + data[i * 5] - 0.5 * data[i * 5 + 1] + 0.3 * noise2[i])
            .collect();
        let ne = NormalEq::from_design(&x, &y);
        let mut eng = ActiveCholesky::new(&ne).expect("statistics cover rows");
        let mut active: Vec<usize> = Vec::new();
        for (add, j) in ops {
            if add {
                if active.contains(&j) || n <= active.len() + 2 {
                    continue;
                }
                match eng.score_add(j) {
                    // Ambiguous pivot: the engine defers this candidate to
                    // the from-scratch oracle by contract — nothing to
                    // compare incrementally.
                    AddScore::Uncertain => continue,
                    AddScore::Ok { rss, .. } => {
                        prop_assert!(eng.push(j).is_ok(), "scored Ok but push failed");
                        active.push(j);
                        let eng_rss = eng.rss();
                        prop_assert!(
                            (rss - eng_rss).abs() <= 1e-10 * (1.0 + eng_rss),
                            "score_add rss {rss} vs committed {eng_rss}"
                        );
                    }
                }
            } else {
                if active.is_empty() {
                    continue;
                }
                let pos = j % active.len();
                // An outright removal failure means the reduced Gram is
                // not SPD even refactored from scratch; the selection
                // drivers rebuild the engine there, so stop comparing.
                if eng.remove(pos).is_err() {
                    break;
                }
                active.remove(pos);
            }
            prop_assert_eq!(eng.active(), active.as_slice());
            let fit = LinearFit::try_fit(&x, &y, &active)
                .expect("engine-accepted active set must be fittable");
            prop_assert!(
                (eng.rss() - fit.rss).abs() <= 1e-10 * (1.0 + fit.rss),
                "rss {} vs {} on {:?}",
                eng.rss(),
                fit.rss,
                active
            );
            let beta = eng.beta();
            let norm = fit
                .coefs
                .iter()
                .chain(std::iter::once(&fit.intercept))
                .fold(1.0f64, |m, b| m.max(b.abs()));
            prop_assert!(
                (beta[0] - fit.intercept).abs() <= 1e-10 * norm,
                "intercept {} vs {} on {:?}",
                beta[0],
                fit.intercept,
                active
            );
            for (t, (b, br)) in beta[1..].iter().zip(fit.coefs.iter()).enumerate() {
                prop_assert!(
                    (b - br).abs() <= 1e-10 * norm,
                    "coef {t}: {b} vs {br} on {:?}",
                    active
                );
            }
        }
    }

    /// Networks always produce finite predictions after training, whatever
    /// the (bounded) data.
    #[test]
    fn network_training_stays_finite(
        data in prop::collection::vec(0.0f64..1.0, 16 * 2),
        y in prop::collection::vec(0.0f64..1.0, 16),
        hidden in 1usize..10,
        seed in 0u64..50,
    ) {
        let x = Matrix::from_vec(16, 2, data);
        let mut net = Mlp::new(2, &[hidden], seed);
        let rmse = net.train(&x, &y, &TrainConfig { epochs: 60, seed, ..Default::default() });
        prop_assert!(rmse.is_finite());
        for i in 0..x.rows() {
            prop_assert!(net.forward(x.row(i)).is_finite());
        }
    }

    /// A constant-target table always terminates: either a typed error
    /// (degenerate/diverged/singular) or a model whose predictions are
    /// finite and flat around the constant — never a hang or panic.
    #[test]
    fn constant_target_terminates_with_flat_model_or_typed_error(
        c in -100.0f64..100.0,
        n in 16usize..32,
        seed in 0u64..8,
    ) {
        let mut t = Table::new();
        t.add_numeric("x", (0..n).map(|i| i as f64).collect())
            .add_numeric("w", (0..n).map(|i| ((i * 5) % 11) as f64).collect())
            .add_flag("f", (0..n).map(|i| i % 2 == 0).collect())
            .set_target(vec![c; n]);
        for kind in [ModelKind::LrE, ModelKind::LrB, ModelKind::NnQ, ModelKind::NnS] {
            match try_train(kind, &t, seed) {
                Ok(m) => {
                    for p in m.predict(&t) {
                        prop_assert!(p.is_finite(), "{}: non-finite prediction", kind.abbrev());
                        prop_assert!(
                            (p - c).abs() <= c.abs() * 0.5 + 10.0,
                            "{}: prediction {p} far from constant target {c}",
                            kind.abbrev()
                        );
                    }
                }
                Err(e) => prop_assert!(
                    matches!(e.kind(), "degenerate" | "diverged" | "singular"),
                    "{}: unexpected error kind {}",
                    kind.abbrev(),
                    e.kind()
                ),
            }
        }
    }

    /// NaN anywhere — predictor or target — is a typed `DegenerateData`
    /// for every model family.
    #[test]
    fn nan_rows_rejected_with_typed_error(
        n in 12usize..24,
        bad in 0usize..12,
        in_target in any::<bool>(),
    ) {
        let mut xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut y: Vec<f64> = (0..n).map(|i| 2.0 * i as f64 + 1.0).collect();
        if in_target { y[bad] = f64::NAN; } else { xs[bad] = f64::NAN; }
        let mut t = Table::new();
        t.add_numeric("x", xs)
            .add_flag("f", (0..n).map(|i| i % 3 == 0).collect())
            .set_target(y);
        for kind in [ModelKind::LrB, ModelKind::NnS] {
            let e = try_train(kind, &t, 1).expect_err("NaN data must be rejected");
            prop_assert_eq!(e.kind(), "degenerate");
        }
    }

    /// Pruning inputs never un-prunes: dead inputs stay dead through
    /// further training and more pruning.
    #[test]
    fn dead_inputs_stay_dead(
        kill in prop::collection::vec(0usize..4, 1..4),
        seed in 0u64..50,
    ) {
        let mut net = Mlp::new(4, &[6], seed);
        let mut expected_dead = std::collections::HashSet::new();
        for &k in &kill {
            net.prune_input(k);
            expected_dead.insert(k);
        }
        let x = Matrix::from_fn(20, 4, |i, j| ((i * 3 + j) % 7) as f64 / 7.0);
        let y: Vec<f64> = (0..20).map(|i| (i % 5) as f64 / 5.0).collect();
        net.train(&x, &y, &TrainConfig { epochs: 30, seed, ..Default::default() });
        for i in 0..4 {
            prop_assert_eq!(net.input_is_dead(i), expected_dead.contains(&i));
        }
        prop_assert_eq!(net.live_inputs(), 4 - expected_dead.len());
    }
}
