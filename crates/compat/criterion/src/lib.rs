//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use — benchmark
//! groups with `sample_size` / `warm_up_time` / `measurement_time` /
//! `throughput`, `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched` — on a simple wall-clock harness: a warm-up phase
//! calibrates the per-iteration cost, then `sample_size` samples are
//! timed and the mean / median / throughput are printed. There is no
//! statistical outlier analysis, HTML report, or saved baseline; numbers
//! are for order-of-magnitude cost comparisons (the paper's "LR trains in
//! milliseconds, NN-E in seconds" claims), not micro-optimization.
//!
//! `--bench` and benchmark-name filter arguments passed by `cargo bench`
//! are accepted; a filter restricts which benchmarks run, as upstream.
//!
//! Two environment hooks support scripted runs (`scripts/bench.sh`):
//!
//! - `CRITERION_QUICK` (set to anything but `0`): clamp every group's
//!   warm-up, measurement budget, and sample count to smoke-test values
//!   so a full bench binary finishes in seconds — for CI, where only
//!   "did it run without panicking" matters, not timing fidelity.
//! - `CRITERION_JSON_LINES=<path>`: append one JSON object per finished
//!   benchmark (`bench`, `mean_ns`, `median_ns`, `samples`,
//!   `iters_per_sample`) to `<path>`, alongside the human-readable line.

use std::fmt::Display;
use std::io::Write;
use std::time::{Duration, Instant};

/// True when `CRITERION_QUICK` requests smoke-test timing budgets.
fn quick_mode() -> bool {
    std::env::var_os("CRITERION_QUICK").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Top-level harness state, mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` plus any user filter string.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(3),
            throughput: None,
        }
    }
}

/// Throughput annotation for per-element/byte rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing for `iter_batched` (ignored by this harness).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input for every routine call.
    PerIteration,
}

/// A parameterized benchmark identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id carrying only a parameter value.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, p: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), p),
        }
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Close the group (kept for API parity).
    pub fn finish(&mut self) {}

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        // Quick mode overrides whatever the group configured: the goal is
        // a bounded-wall-clock smoke pass, so clamps beat setters.
        let (sample_size, warm_up_time, measurement_time) = if quick_mode() {
            (
                self.sample_size.min(5),
                self.warm_up_time.min(Duration::from_millis(50)),
                self.measurement_time.min(Duration::from_millis(150)),
            )
        } else {
            (self.sample_size, self.warm_up_time, self.measurement_time)
        };
        let mut b = Bencher {
            mode: Mode::WarmUp {
                until: Instant::now() + warm_up_time,
            },
            samples: Vec::new(),
            sample_size,
            measurement_time,
        };
        f(&mut b);
        b.report(&full, self.throughput);
    }
}

enum Mode {
    WarmUp { until: Instant },
    Measure { per_sample: u64 },
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Time a routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput);
    }

    /// Time a routine with a per-call setup excluded from measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: run until the warm-up clock expires to estimate cost.
        let (warm_iters, warm_elapsed) = {
            let Mode::WarmUp { until } = self.mode else {
                unreachable!("bencher driven twice");
            };
            let started = Instant::now();
            let mut iters = 0u64;
            while Instant::now() < until {
                let input = setup();
                let t = Instant::now();
                std::hint::black_box(routine(input));
                let _ = t.elapsed();
                iters += 1;
            }
            (iters.max(1), started.elapsed())
        };
        let per_iter = warm_elapsed / warm_iters as u32;
        let budget_iters = if per_iter.is_zero() {
            1000
        } else {
            (self.measurement_time.as_nanos() / per_iter.as_nanos().max(1)) as u64
        };
        let per_sample = (budget_iters / self.sample_size as u64).max(1);
        self.mode = Mode::Measure { per_sample };

        for _ in 0..self.sample_size {
            let mut elapsed = Duration::ZERO;
            for _ in 0..per_sample {
                let input = setup();
                let t = Instant::now();
                std::hint::black_box(routine(input));
                elapsed += t.elapsed();
            }
            self.samples.push(elapsed / per_sample as u32);
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        let per_sample = match self.mode {
            Mode::Measure { per_sample } => per_sample,
            Mode::WarmUp { .. } => 0,
        };
        let rate = match throughput {
            Some(Throughput::Elements(n)) if !mean.is_zero() => {
                format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if !mean.is_zero() => {
                format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{name:<40} mean {mean:>12.3?}  median {median:>12.3?}  ({} samples x {per_sample} iters){rate}",
            self.samples.len(),
        );
        if let Some(path) = std::env::var_os("CRITERION_JSON_LINES") {
            let line = format!(
                "{{\"bench\":\"{}\",\"mean_ns\":{},\"median_ns\":{},\"samples\":{},\"iters_per_sample\":{}}}\n",
                json_escape(name),
                mean.as_nanos(),
                median.as_nanos(),
                self.samples.len(),
                per_sample,
            );
            let written = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(line.as_bytes()));
            if let Err(e) = written {
                eprintln!(
                    "criterion: cannot append to {}: {e}",
                    path.to_string_lossy()
                );
            }
        }
    }
}

/// Escape a benchmark name for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Collect benchmark functions into a runnable group, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(20));
        group.throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        group.bench_function("spin", |b| {
            ran += 1;
            b.iter(|| (0..1000u64).sum::<u64>())
        });
        group.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn quick_mode_and_json_lines_emit_records() {
        let path =
            std::env::temp_dir().join(format!("criterion-jsonl-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CRITERION_QUICK", "1");
        std::env::set_var("CRITERION_JSON_LINES", &path);
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("jsonl");
        // Quick mode must clamp even a deliberately long configuration.
        group.measurement_time(Duration::from_secs(60));
        group.warm_up_time(Duration::from_secs(60));
        group.sample_size(50);
        let started = Instant::now();
        group.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        std::env::remove_var("CRITERION_QUICK");
        std::env::remove_var("CRITERION_JSON_LINES");
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "quick mode ignored"
        );
        let body = std::fs::read_to_string(&path).expect("json-lines file written");
        let line = body
            .lines()
            .find(|l| l.contains("\"bench\":\"jsonl/spin\""))
            .expect("record for jsonl/spin");
        assert!(line.contains("\"mean_ns\":"), "missing mean: {line}");
        assert!(line.contains("\"median_ns\":"), "missing median: {line}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_escape_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("x", |b| {
            ran = true;
            b.iter(|| ())
        });
        assert!(!ran);
    }
}
