//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public result
//! types so downstream users *can* serialize them, but nothing in-tree
//! goes through serde's data model (machine-readable output is produced
//! by `telemetry`'s hand-rolled JSON layer instead — see
//! `crates/telemetry`). These derives therefore expand to nothing: the
//! attribute is accepted and type-checked away. If a future PR vendors a
//! real serde, only this crate and `crates/compat/serde` need replacing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
