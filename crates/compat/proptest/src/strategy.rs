//! The [`Strategy`] trait and combinators.

use rand::{rngs::StdRng, Rng};

/// A recipe for generating random values (no shrinking — see crate docs).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values, like proptest's `prop_map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.start..self.end)
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.start..self.end)
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for crate::Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.random()
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_for_tuple!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);
