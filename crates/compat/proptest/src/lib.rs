//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this vendored crate
//! re-implements the subset of proptest the workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`strategy::Strategy`] with `prop_map`, tuple strategies, numeric
//! ranges, [`collection::vec`], [`sample::select`], [`any`] and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs via the normal
//!   assert message but is not minimized.
//! * **Deterministic generation.** Each test's input stream is seeded
//!   from the hash of its module path and name, so failures reproduce
//!   exactly across runs (the real proptest needs a persistence file
//!   for that).

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

/// Run-count configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test generator, seeded from the test's full name.
pub fn test_rng(test_name: &str) -> StdRng {
    // FNV-1a over the name: stable across runs and platforms.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// The `any::<T>()` entry point (only the types the workspace needs).
pub struct Any<T>(core::marker::PhantomData<T>);

/// Strategy for "any value of T".
pub fn any<T>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Strategies over collections.
pub mod collection {
    use super::strategy::Strategy;
    use rand::{rngs::StdRng, Rng};

    /// Length specification: an exact `usize` or a `lo..hi` range.
    pub trait SizeRange {
        /// Half-open `(lo, hi)` bounds on the generated length.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy producing `Vec<S::Value>`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let (lo, hi) = self.size.bounds();
            assert!(lo < hi, "empty length range for collection::vec");
            let len = if hi - lo == 1 {
                lo
            } else {
                rng.random_range(lo..hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies drawing from explicit value sets.
pub mod sample {
    use super::strategy::Strategy;
    use rand::{rngs::StdRng, Rng};

    /// `prop::sample::select(values)` — uniform over a non-empty `Vec`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(
            !values.is_empty(),
            "sample::select needs at least one value"
        );
        Select { values }
    }

    /// Strategy choosing one of the given values.
    pub struct Select<T> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.values[rng.random_range(0..self.values.len())].clone()
        }
    }
}

/// What `use proptest::prelude::*` brings in.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Assert inside a property test (no shrinking, plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$attr:meta])*
         fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $( let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, bool)> {
        (0.0f64..1.0, any::<bool>()).prop_map(|(x, b)| (x * 2.0, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 1.5f64..2.5, n in 3u32..9) {
            prop_assert!((1.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn select_only_yields_members(c in prop::sample::select(vec!['a', 'b', 'z'])) {
            prop_assert!(['a', 'b', 'z'].contains(&c));
        }

        #[test]
        fn mapped_tuples_work(p in pair()) {
            prop_assert!((0.0..2.0).contains(&p.0));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0.0f64..1.0, 8usize);
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
