//! Portable SIMD shim for perfpredict's dense kernels.
//!
//! `linalg::matrix` routes its inner loops (`axpy`-structured matmul
//! rows and sequential dot reductions) through this crate. Two
//! backends exist:
//!
//! - [`Backend::Scalar`] — the original loops, verbatim. This is the
//!   bit-exactness oracle: every other backend must produce the same
//!   f64 bits.
//! - [`Backend::Avx2`] — x86_64 AVX2 via `std::arch`, selected at
//!   runtime only when the CPU reports the feature. The kernels use
//!   separate multiply and add (never FMA) and keep each output
//!   element's accumulation order identical to the scalar loop, so
//!   f64 results are bit-identical to the oracle.
//!
//! Selection order: a thread-local override installed by
//! [`with_backend`] (tests and benches compare both backends
//! in-process), then the `PERFPREDICT_KERNEL` environment variable
//! (`scalar` forces the oracle; `simd`/`avx2`/`auto`/unset pick AVX2
//! when available; any other value falls back to `scalar`), cached
//! for the life of the process. On non-x86_64 targets every path
//! resolves to `Scalar`.
//!
//! The f32 kernels (`axpy_f32`, `dot_f32`) serve the opt-in f32
//! inference mode. They carry **no** bit-identity contract — f32
//! results are checked against the f64 path with a bounded relative
//! error instead — but they still avoid FMA so the error model stays
//! simple.

use std::cell::Cell;
use std::sync::OnceLock;

/// Which kernel implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The original scalar loops, verbatim — the bit-exactness oracle.
    Scalar,
    /// x86_64 AVX2 (`std::arch`), bit-identical to `Scalar` for f64.
    Avx2,
}

/// True when the running CPU can execute the AVX2 kernels.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn resolve_from_env() -> Backend {
    let auto = || {
        if avx2_available() {
            Backend::Avx2
        } else {
            Backend::Scalar
        }
    };
    match std::env::var("PERFPREDICT_KERNEL") {
        Ok(v) => match v.as_str() {
            "scalar" => Backend::Scalar,
            "simd" | "avx2" | "auto" | "" => auto(),
            // An unrecognized value degrades to the oracle rather than
            // guessing: scalar is always correct, just slower.
            _ => Backend::Scalar,
        },
        Err(_) => auto(),
    }
}

static RESOLVED: OnceLock<Backend> = OnceLock::new();

thread_local! {
    static OVERRIDE: Cell<Option<Backend>> = const { Cell::new(None) };
}

/// The backend kernels should use on the *calling* thread.
///
/// Callers that fan work out to other threads (rayon tiles, scoped
/// shards) must resolve this once on the submitting thread and capture
/// the value — worker threads do not inherit the thread-local override
/// installed by [`with_backend`].
pub fn backend() -> Backend {
    if let Some(b) = OVERRIDE.with(|o| o.get()) {
        return b;
    }
    *RESOLVED.get_or_init(resolve_from_env)
}

/// Run `f` with the backend forced to `b` on this thread, restoring
/// the previous override afterwards (even on panic). Forcing
/// [`Backend::Avx2`] on a CPU without AVX2 silently downgrades to
/// `Scalar` so tests stay portable.
pub fn with_backend<R>(b: Backend, f: impl FnOnce() -> R) -> R {
    let b = if b == Backend::Avx2 && !avx2_available() {
        Backend::Scalar
    } else {
        b
    };
    struct Restore(Option<Backend>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(b))));
    f()
}

// ---------------------------------------------------------------------------
// f64 kernels (bit-identity contract)
// ---------------------------------------------------------------------------

/// `out[i] += s * a[i]` — the inner loop of every matmul/affine row.
///
/// Bit-identical across backends: each output element sees exactly one
/// `mul` then one `add`, in the same order as the scalar loop.
pub fn axpy(be: Backend, s: f64, a: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), out.len());
    match be {
        Backend::Scalar => axpy_scalar(s, a, out),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            debug_assert!(avx2_available());
            // SAFETY: Backend::Avx2 is only resolved (or forced via
            // with_backend) after is_x86_feature_detected!("avx2")
            // returned true on this process, so the target-feature
            // function may be called.
            unsafe { axpy_avx2(s, a, out) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => axpy_scalar(s, a, out),
    }
}

/// Sequential-order dot product: `sum_i a[i] * b[i]`, left to right.
///
/// Bit-identical across backends: the AVX2 path vectorizes only the
/// element-wise products; the summation stays a single sequential
/// chain, rounding each partial sum exactly like the scalar loop.
pub fn dot(be: Backend, a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    match be {
        Backend::Scalar => dot_scalar(a, b),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            debug_assert!(avx2_available());
            // SAFETY: Backend::Avx2 implies the avx2 feature was
            // detected at runtime (see resolve/with_backend), so
            // calling the target-feature function is permitted.
            unsafe { dot_avx2(a, b) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => dot_scalar(a, b),
    }
}

/// The original `linalg::matrix` inner loop, verbatim.
fn axpy_scalar(s: f64, a: &[f64], out: &mut [f64]) {
    for (o, &x) in out.iter_mut().zip(a) {
        *o += s * x;
    }
}

/// The original `linalg::matrix::dot`, verbatim.
fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// SAFETY: callers must have verified AVX2 support at runtime. All
/// loads/stores below are unaligned (`loadu`/`storeu`) within the
/// bounds of `a` and `out`: the chunk loop touches indices
/// `[0, 4 * (len / 4))` and the tail loop is safe indexing. `mul` then
/// `add` (no FMA) keeps per-element rounding identical to the scalar
/// loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(s: f64, a: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = out.len().min(a.len());
    let chunks = n / 4;
    let sv = _mm256_set1_pd(s);
    let ap = a.as_ptr();
    let op = out.as_mut_ptr();
    for c in 0..chunks {
        let at = ap.add(c * 4);
        let ot = op.add(c * 4);
        let prod = _mm256_mul_pd(sv, _mm256_loadu_pd(at));
        _mm256_storeu_pd(ot, _mm256_add_pd(_mm256_loadu_pd(ot), prod));
    }
    for i in chunks * 4..n {
        out[i] += s * a[i];
    }
}

/// SAFETY: callers must have verified AVX2 support at runtime. Loads
/// are unaligned and in-bounds (chunk loop covers `[0, 4 * (len / 4))`,
/// tail is safe indexing); the product vector is spilled to a local
/// array and reduced sequentially so every partial sum rounds exactly
/// like the scalar `sum()` chain.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n = a.len().min(b.len());
    let chunks = n / 4;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    // std's `Sum for f64` folds from -0.0 (so all-zero sums keep their
    // sign); start the same way to stay bit-identical.
    let mut acc = -0.0f64;
    let mut prod = [0.0f64; 4];
    for c in 0..chunks {
        let pv = _mm256_mul_pd(
            _mm256_loadu_pd(ap.add(c * 4)),
            _mm256_loadu_pd(bp.add(c * 4)),
        );
        _mm256_storeu_pd(prod.as_mut_ptr(), pv);
        acc += prod[0];
        acc += prod[1];
        acc += prod[2];
        acc += prod[3];
    }
    for i in chunks * 4..n {
        acc += a[i] * b[i];
    }
    acc
}

// ---------------------------------------------------------------------------
// f32 kernels (bounded-error contract, no bit-identity requirement)
// ---------------------------------------------------------------------------

/// `out[i] += s * a[i]` in f32. Used by the opt-in f32 inference mode;
/// checked against the f64 path by a relative-error bound, not bitwise.
pub fn axpy_f32(be: Backend, s: f32, a: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    match be {
        Backend::Scalar => {
            for (o, &x) in out.iter_mut().zip(a) {
                *o += s * x;
            }
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            debug_assert!(avx2_available());
            // SAFETY: Backend::Avx2 implies runtime AVX2 detection
            // succeeded, so the target-feature function may be called.
            unsafe { axpy_f32_avx2(s, a, out) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => {
            for (o, &x) in out.iter_mut().zip(a) {
                *o += s * x;
            }
        }
    }
}

/// Sequential-order f32 dot product (same shape as [`dot`]).
pub fn dot_f32(be: Backend, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match be {
        Backend::Scalar => a.iter().zip(b).map(|(x, y)| x * y).sum(),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            debug_assert!(avx2_available());
            // SAFETY: Backend::Avx2 implies runtime AVX2 detection
            // succeeded, so the target-feature function may be called.
            unsafe { dot_f32_avx2(a, b) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => a.iter().zip(b).map(|(x, y)| x * y).sum(),
    }
}

/// SAFETY: callers must have verified AVX2 support at runtime; loads
/// and stores are unaligned and in-bounds (chunk loop covers
/// `[0, 8 * (len / 8))`, tail is safe indexing).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_f32_avx2(s: f32, a: &[f32], out: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = out.len().min(a.len());
    let chunks = n / 8;
    let sv = _mm256_set1_ps(s);
    let ap = a.as_ptr();
    let op = out.as_mut_ptr();
    for c in 0..chunks {
        let at = ap.add(c * 8);
        let ot = op.add(c * 8);
        let prod = _mm256_mul_ps(sv, _mm256_loadu_ps(at));
        _mm256_storeu_ps(ot, _mm256_add_ps(_mm256_loadu_ps(ot), prod));
    }
    for i in chunks * 8..n {
        out[i] += s * a[i];
    }
}

/// SAFETY: callers must have verified AVX2 support at runtime; loads
/// are unaligned and in-bounds, and the product lanes are reduced
/// sequentially from a spilled local array.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_f32_avx2(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = a.len().min(b.len());
    let chunks = n / 8;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    // Match std's `Sum for f32` fold seed of -0.0.
    let mut acc = -0.0f32;
    let mut prod = [0.0f32; 8];
    for c in 0..chunks {
        let pv = _mm256_mul_ps(
            _mm256_loadu_ps(ap.add(c * 8)),
            _mm256_loadu_ps(bp.add(c * 8)),
        );
        _mm256_storeu_ps(prod.as_mut_ptr(), pv);
        for &p in &prod {
            acc += p;
        }
    }
    for i in chunks * 8..n {
        acc += a[i] * b[i];
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, base: f64) -> Vec<f64> {
        (0..n)
            .map(|i| base + i as f64 * 0.37 - (n as f64) / 3.0)
            .collect()
    }

    #[test]
    fn env_override_is_not_consulted_under_with_backend() {
        let inside = with_backend(Backend::Scalar, backend);
        assert_eq!(inside, Backend::Scalar);
        let forced = with_backend(Backend::Avx2, backend);
        if avx2_available() {
            assert_eq!(forced, Backend::Avx2);
        } else {
            assert_eq!(forced, Backend::Scalar, "downgrades without AVX2");
        }
    }

    #[test]
    fn override_restored_after_panic() {
        let before = backend();
        let caught = std::panic::catch_unwind(|| {
            with_backend(Backend::Scalar, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(backend(), before, "override must unwind with the scope");
    }

    #[test]
    fn axpy_backends_bit_identical_across_remainder_lanes() {
        if !avx2_available() {
            return;
        }
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 64, 65] {
            let a = seq(n, 0.13);
            for s in [0.0, -0.0, 1.75, -3.25e-3, f64::INFINITY] {
                let mut scalar = seq(n, 42.0);
                let mut simd = scalar.clone();
                axpy(Backend::Scalar, s, &a, &mut scalar);
                axpy(Backend::Avx2, s, &a, &mut simd);
                for (i, (x, y)) in scalar.iter().zip(&simd).enumerate() {
                    assert_eq!(x.to_bits(), y.to_bits(), "n={n} s={s} lane {i}");
                }
            }
        }
    }

    #[test]
    fn dot_backends_bit_identical_across_remainder_lanes() {
        if !avx2_available() {
            return;
        }
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 31, 32, 33, 100] {
            let a = seq(n, 0.77);
            let b = seq(n, -1.19);
            let s = dot(Backend::Scalar, &a, &b);
            let v = dot(Backend::Avx2, &a, &b);
            assert_eq!(s.to_bits(), v.to_bits(), "n={n}");
        }
    }

    #[test]
    fn f32_kernels_agree_between_backends_within_rounding() {
        if !avx2_available() {
            return;
        }
        for n in [0usize, 1, 7, 8, 9, 17, 40] {
            let a: Vec<f32> = (0..n).map(|i| i as f32 * 0.31 - 2.0).collect();
            let b: Vec<f32> = (0..n).map(|i| 1.5 - i as f32 * 0.17).collect();
            let s = dot_f32(Backend::Scalar, &a, &b);
            let v = dot_f32(Backend::Avx2, &a, &b);
            assert!(
                (s - v).abs() <= 1e-4 * s.abs().max(1.0),
                "n={n} scalar={s} avx2={v}"
            );
            let mut so = b.clone();
            let mut vo = b.clone();
            axpy_f32(Backend::Scalar, 0.5, &a, &mut so);
            axpy_f32(Backend::Avx2, 0.5, &a, &mut vo);
            // axpy_f32 is one mul+add per element in both backends.
            assert_eq!(so, vo, "n={n}");
        }
    }
}
