//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment has no registry access, so this vendored crate
//! provides the exact API subset the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension trait with
//! `random::<T>()` / `random_range(..)`. The generator is xoshiro256**
//! seeded through SplitMix64 — deterministic, fast, and statistically
//! solid for simulation workloads. Sequences differ from upstream
//! `StdRng` (ChaCha12), which is fine: the workspace only relies on
//! *determinism per seed*, never on specific upstream streams.

/// Core random-number source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from the "standard" distribution.
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_for_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_range_for_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A value from the standard distribution (`f64` in `[0,1)`, full-range
    /// integers, fair `bool`).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform value from `range`.
    fn random_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the workspace's deterministic seeded generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..7);
            assert!((3..7).contains(&v));
            let w = rng.random_range(0u32..=3);
            seen_lo |= w == 0;
            seen_hi |= w == 3;
            assert!(w <= 3);
            let neg = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&neg));
        }
        assert!(
            seen_lo && seen_hi,
            "inclusive range must reach both endpoints"
        );
    }

    #[test]
    fn mean_of_f64_draws_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
