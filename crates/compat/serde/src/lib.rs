//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` *names* — as marker traits and
//! as no-op derive macros — so the workspace's `#[derive(Serialize,
//! Deserialize)]` annotations compile without registry access. Nothing
//! in-tree drives serde's data model; machine-readable output goes
//! through `telemetry::json` instead. Swap this crate for the real serde
//! when a vendored copy becomes available — call sites won't change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
