//! Offline stand-in for `rayon`'s parallel iterators.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of rayon the workspace uses — `par_iter()` /
//! `into_par_iter()` followed by `enumerate` / `map` and a terminal
//! `collect` / `min_by` — with *real* data parallelism: items are split
//! into contiguous chunks and evaluated on scoped `std::thread` workers
//! (one per available core, capped by item count). Results always come
//! back in input order, matching rayon's indexed-iterator guarantee, and
//! worker panics propagate to the caller like rayon's do.
//!
//! Unlike rayon there is no work-stealing pool: each `map` call spawns
//! its own scoped workers. For the coarse-grained parallelism in this
//! workspace (whole-simulation or whole-training closures) the spawn cost
//! is noise.

use std::cmp::Ordering;

/// Everything call sites need: the two conversion traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Worker count for a job of `n` items.
fn threads_for(n: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    cores.min(n).max(1)
}

/// Map `f` over a borrowed slice in parallel, preserving order.
fn map_slice<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &'a T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads_for(n);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                s.spawn(move || {
                    items[lo..hi]
                        .iter()
                        .enumerate()
                        .map(|(i, item)| f(lo + i, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => parts.push(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    parts.into_iter().flatten().collect()
}

/// Map `f` over owned items in parallel, preserving order.
fn map_owned<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads_for(n);
    if threads == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let chunk = n.div_ceil(threads);
    // Split into per-worker owned chunks, remembering each chunk's offset.
    let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(threads);
    let mut rest = items;
    let mut offset = 0usize;
    while !rest.is_empty() {
        let take = chunk.min(rest.len());
        let tail = rest.split_off(take);
        chunks.push((offset, rest));
        offset += take;
        rest = tail;
    }
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(lo, part)| {
                s.spawn(move || {
                    part.into_iter()
                        .enumerate()
                        .map(|(i, item)| f(lo + i, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => parts.push(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    parts.into_iter().flatten().collect()
}

/// `par_iter()` over a borrowed collection.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: 'a;
    /// The parallel iterator.
    fn par_iter(&'a self) -> ParSlice<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

/// `into_par_iter()` over an owned collection or range.
pub trait IntoParallelIterator {
    /// Owned item type.
    type Item;
    /// The parallel iterator.
    fn into_par_iter(self) -> ParOwned<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParOwned<T> {
        ParOwned { items: self }
    }
}

macro_rules! impl_into_par_for_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParOwned<$t> {
                ParOwned { items: self.collect() }
            }
        }
    )*};
}

impl_into_par_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Parallel iterator over a borrowed slice.
pub struct ParSlice<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Pair every item with its index, like `ParallelIterator::enumerate`.
    pub fn enumerate(self) -> ParSliceEnumerate<'a, T> {
        ParSliceEnumerate { items: self.items }
    }

    /// Parallel map; results keep input order.
    pub fn map<R, F>(self, f: F) -> Evaluated<R>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        Evaluated {
            items: map_slice(self.items, |_, t| f(t)),
        }
    }
}

/// Enumerated parallel iterator over a borrowed slice.
pub struct ParSliceEnumerate<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParSliceEnumerate<'a, T> {
    /// Parallel map over `(index, &item)` pairs.
    pub fn map<R, F>(self, f: F) -> Evaluated<R>
    where
        R: Send,
        F: Fn((usize, &'a T)) -> R + Sync,
    {
        Evaluated {
            items: map_slice(self.items, |i, t| f((i, t))),
        }
    }
}

/// Parallel iterator over owned items.
pub struct ParOwned<T> {
    items: Vec<T>,
}

impl<T: Send> ParOwned<T> {
    /// Pair every item with its index.
    pub fn enumerate(self) -> ParOwnedEnumerate<T> {
        ParOwnedEnumerate { items: self.items }
    }

    /// Parallel map; results keep input order.
    pub fn map<R, F>(self, f: F) -> Evaluated<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        Evaluated {
            items: map_owned(self.items, |_, t| f(t)),
        }
    }
}

/// Enumerated parallel iterator over owned items.
pub struct ParOwnedEnumerate<T> {
    items: Vec<T>,
}

impl<T: Send> ParOwnedEnumerate<T> {
    /// Parallel map over `(index, item)` pairs.
    pub fn map<R, F>(self, f: F) -> Evaluated<R>
    where
        R: Send,
        F: Fn((usize, T)) -> R + Sync,
    {
        Evaluated {
            items: map_owned(self.items, |i, t| f((i, t))),
        }
    }
}

/// The (already evaluated, in-order) results of a parallel map.
pub struct Evaluated<R> {
    items: Vec<R>,
}

impl<R> Evaluated<R> {
    /// Gather results, like rayon's ordered `collect`.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Minimum under a comparator, like `ParallelIterator::min_by`.
    pub fn min_by<F>(self, compare: F) -> Option<R>
    where
        F: Fn(&R, &R) -> Ordering,
    {
        self.items.into_iter().reduce(|a, b| match compare(&a, &b) {
            Ordering::Greater => b,
            _ => a,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn slice_map_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter_collects_in_order() {
        let squares: Vec<usize> = (0usize..257).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 257);
        assert_eq!(squares[256], 256 * 256);
    }

    #[test]
    fn enumerate_indices_match() {
        let xs = vec!["a", "b", "c", "d"];
        let tagged: Vec<(usize, &str)> = xs.par_iter().enumerate().map(|(i, &s)| (i, s)).collect();
        assert_eq!(tagged, vec![(0, "a"), (1, "b"), (2, "c"), (3, "d")]);
    }

    #[test]
    fn min_by_finds_minimum() {
        let xs: Vec<f64> = vec![3.0, 1.0, 2.0];
        let min = xs
            .par_iter()
            .map(|&x| (x, x * 10.0))
            .min_by(|a, b| a.1.total_cmp(&b.1));
        assert_eq!(min.unwrap().0, 1.0);
    }

    #[test]
    fn map_actually_runs_on_multiple_threads() {
        // Only meaningful on multicore hosts, but never fails on one core.
        let ids: Vec<std::thread::ThreadId> = (0usize..64)
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                std::thread::current().id()
            })
            .collect();
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        if std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            > 1
        {
            assert!(distinct.len() > 1, "expected work on more than one thread");
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let xs: Vec<u32> = (0..16).collect();
        let _: Vec<u32> = xs
            .par_iter()
            .map(|&x| {
                if x == 7 {
                    panic!("boom");
                }
                x
            })
            .collect();
    }
}
