// nondet-iter fixture: hash-map iteration order must not reach
// output or accumulation without an intervening sort.

use std::collections::{BTreeMap, HashMap, HashSet};

pub fn leak(m: &HashMap<String, f64>) -> f64 {
    let mut total = 0.0;
    for (_k, v) in m { //~ nondet-iter
        total += v;
    }
    total
}

pub fn chained(s: &HashSet<u32>) -> u32 {
    s.iter().sum() //~ nondet-iter
}

pub fn values_leak(m: &HashMap<u32, f64>) -> f64 {
    m.values().sum() //~ nondet-iter
}

pub fn sorted(m: &HashMap<String, f64>) -> Vec<String> {
    let mut keys: Vec<String> = m.keys().cloned().collect(); // ok: sorted next stmt
    keys.sort();
    keys
}

pub fn laundered(m: &HashMap<u32, f64>) -> BTreeMap<u32, f64> {
    m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<_, _>>() // ok: B-tree orders
}

pub fn keyed(m: &HashMap<u32, f64>, k: u32) -> Option<f64> {
    m.get(&k).copied() // ok: keyed lookup is order-free
}

pub fn loop_then_sort(m: &HashMap<u32, f64>) -> Vec<u32> {
    let mut out = Vec::new();
    for k in m.keys() { // ok: sort follows before anyone observes the order
        out.push(*k);
    }
    out.sort_unstable();
    out
}

pub fn vec_iteration_is_fine(v: &[f64]) -> f64 {
    v.iter().sum() // ok: slices have a defined order
}

pub fn unrelated_sort_does_not_launder(m: &HashMap<u32, f64>, other: &mut Vec<u32>) -> f64 {
    let total: f64 = m.values().sum(); //~ nondet-iter
    other.sort_unstable(); // sorts a vector the iteration never touched
    total
}

pub fn binding_named_sort_does_not_launder(m: &HashMap<u32, f64>) -> f64 {
    let total: f64 = m.values().sum(); //~ nondet-iter
    let sort = total; // a binding merely *named* sort launders nothing
    sort
}
