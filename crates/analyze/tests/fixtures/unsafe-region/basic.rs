//! Fixture: every `unsafe` token in non-test code is flagged —
//! commented sites with the waiver-pointing message, uncommented sites
//! with the write-the-comment message. Test regions are exempt.

// SAFETY: the caller guarantees `a` and `out` have equal length, and
// the 4-lane loads stop at `n - n % 4`; the tail loop covers the rest.
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(s: f64, a: &[f64], out: &mut [f64]) { //~ unsafe-region
    let _ = (s, a, out);
}

fn dispatch(s: f64, a: &[f64], out: &mut [f64]) {
    // SAFETY: avx2 availability was checked by the caller's backend
    // resolution; the target_feature contract is satisfied.
    unsafe { axpy_avx2(s, a, out) } //~ unsafe-region
}

fn undocumented(p: *const f64) -> f64 {
    unsafe { *p } //~ unsafe-region
}

// A blank line between comment and keyword breaks the association:
// SAFETY: stale argument that no longer sits on the region.

fn detached(p: *const f64) -> f64 {
    unsafe { *p } //~ unsafe-region
}

/// Trailing same-line safety comment also counts as documented.
fn inline_comment(p: *const f64) -> f64 {
    unsafe { *p } // SAFETY: p is non-null by construction //~ unsafe-region
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_unsafe_is_exempt() {
        let x = 1.0f64;
        let _ = unsafe { *(&x as *const f64) };
    }
}
