//@ path: crates/epsilon/src/serve.rs
// A second crate reading the same declared knob: one [[env]] entry
// covers every read site in the workspace.

pub fn mode_from_env() -> Option<String> {
    std::env::var("PERFPREDICT_FIXTURE_MODE").ok() // ok: declared in env.toml
}
