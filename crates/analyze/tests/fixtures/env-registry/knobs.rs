//@ path: crates/gamma/src/knobs.rs
// env-registry fixture: every PERFPREDICT_* read must match a declared
// [[env]] entry (see env.toml next to this file); non-PERFPREDICT vars
// and test-region reads are out of scope.

pub fn declared() -> bool {
    std::env::var("PERFPREDICT_FIXTURE_MODE").is_ok() // ok: declared in env.toml
}

pub fn rogue() -> bool {
    std::env::var("PERFPREDICT_FIXTURE_ROGUE").is_ok() //~ env-registry
}

pub fn rogue_os() -> bool {
    std::env::var_os("PERFPREDICT_FIXTURE_SHADOW").is_some() //~ env-registry
}

pub fn foreign() -> bool {
    std::env::var("HOME").is_ok() // ok: not a PERFPREDICT_* knob
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_reads_are_free() {
        let _ = std::env::var("PERFPREDICT_FIXTURE_TESTONLY"); // ok: test region
    }
}
