// bare-assert fixture: library asserts must name the violated
// invariant in a message string; the lint is multi-line aware.

pub fn check(x: f64, lo: f64, hi: f64) {
    assert!(x.is_finite()); //~ bare-assert
    assert!(x >= lo, "x below range: {x} < {lo}"); // ok: named invariant
    assert_eq!(lo.is_nan(), hi.is_nan()); //~ bare-assert
    assert_ne!(lo, hi, "degenerate range"); // ok
}

pub fn multi_line(rows: &[Vec<f64>], width: usize) {
    assert!(
        rows.iter().all(|r| r.len() == width),
        "ragged table: every row must have {width} columns",
    ); // ok: message on its own line still counts
    assert_eq!( //~ bare-assert
        rows.len(),
        width,
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_assert_bare() {
        assert!(1 + 1 == 2); // ok: test region
    }
}
