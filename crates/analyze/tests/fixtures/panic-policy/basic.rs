// panic-policy fixture: library code must not reach for panicking
// escape hatches. Expectation markers (tilde comments) name the
// expected finding on their line; unmarked lines must stay clean.

pub fn risky(v: Option<u32>) -> u32 {
    v.unwrap() //~ panic-policy
}

pub fn documented(v: Option<u32>) -> u32 {
    v.expect("schema validation guarantees the column exists") // ok
}

pub fn empty_expect(v: Option<u32>) -> u32 {
    v.expect("") //~ panic-policy
}

pub fn computed_expect(v: Option<u32>, why: &str) -> u32 {
    v.expect(why) //~ panic-policy
}

pub fn giving_up() {
    todo!() //~ panic-policy
}

pub fn not_done() {
    unimplemented!("later") //~ panic-policy
}

pub fn boom(x: u32) {
    if x > 9 {
        panic!("x out of range: {x}"); //~ panic-policy
    }
}

pub fn masked(x: u32) -> u32 {
    match x & 1 {
        0 => 0,
        1 => 1,
        _ => unreachable!("x is masked to one bit"), // ok: unreachable! is allowed
    }
}

// UFCS/path form panics exactly like the method form.
pub fn path_form(v: Option<u32>) -> u32 {
    Option::unwrap(v) //~ panic-policy
}

pub fn path_form_result(r: Result<u32, ()>) -> u32 {
    Result::unwrap(r) //~ panic-policy
}

// An identifier merely *named* unwrap is not a call.
pub fn unwrap_config(unwrap: bool) -> bool {
    unwrap // ok
}

#[test]
fn annotated_test_fn_may_unwrap() {
    Some(2u32).unwrap(); // ok: #[test] fn
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_region_may_panic() {
        Some(1u32).unwrap(); // ok: #[cfg(test)] region
        panic!("even this"); // ok: #[cfg(test)] region
    }
}
