//@ path: crates/beta/src/lib.rs
// Second crate: its references keep alpha's API alive, and its own
// unreferenced pub items are flagged in turn.

pub fn run_pipeline() { //~ dead-pub-api
    alpha::used_everywhere();
    alpha::inner::deep_used();
}

pub fn tested_only() {} // ok: the integration test below calls it

pub struct Orchestrator; //~ dead-pub-api

impl alpha::Api for Orchestrator {
    fn call(&self) {}
}
