//@ path: crates/alpha/src/lib.rs
// dead-pub-api fixture: pub items must be referenced outside their
// defining crate (integration tests/benches/examples count). Markers
// sit on the signature line the finding anchors to.

pub fn used_everywhere() {}

pub fn dead_api() {} //~ dead-pub-api

pub(crate) fn scoped_fn() {} // ok: not pub

fn private_fn() {} // ok: not pub

pub struct SharedConfig;

pub struct DeadStruct; //~ dead-pub-api

pub mod inner {
    pub fn deep_used() {}

    pub fn deep_dead() {} //~ dead-pub-api
}

mod private_mod {
    pub fn hidden() {} // ok: enclosing mod is private
}

pub trait Api {
    fn call(&self); // ok: trait members belong to the trait
}

impl Api for SharedConfig {
    fn call(&self) {} // ok: trait impl fulfills a contract
}

impl SharedConfig {
    pub fn helper() {}

    pub fn unused_method() {} //~ dead-pub-api
}

#[allow(dead_code)]
pub fn excused() {} // ok: author already opted out of liveness

#[cfg(test)]
mod tests {
    pub fn test_helper() {} // ok: test region
}
