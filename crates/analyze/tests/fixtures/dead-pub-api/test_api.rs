//@ path: crates/alpha/tests/api.rs
// Reference-role file: never linted, but its identifier uses are
// external-consumer evidence for dead-pub-api.

#[test]
fn exercises_api() {
    alpha::SharedConfig::helper();
    beta::tested_only();
}
