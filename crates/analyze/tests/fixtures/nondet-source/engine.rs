//@ path: crates/delta/src/engine.rs
// nondet-source fixture: wall-clock and entropy sources in library
// code are flagged unless the statement routes through telemetry.

pub fn wall_clock_stamp() -> std::time::Instant {
    std::time::Instant::now() //~ nondet-source
}

pub fn epoch_ms() -> u128 {
    std::time::SystemTime::now() //~ nondet-source
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

pub fn seeded_rng() -> rand::rngs::SmallRng {
    rand::rngs::SmallRng::from_entropy() //~ nondet-source
}

pub fn ambient_rng() -> u32 {
    let mut rng = rand::thread_rng(); //~ nondet-source
    rng.next_u32()
}

pub fn gated_span() -> Option<std::time::Instant> {
    telemetry::enabled().then(std::time::Instant::now) // ok: telemetry-gated statement
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_time() {
        let _ = std::time::Instant::now(); // ok: test region
    }
}
