//@ path: crates/delta/src/main.rs
// Binary entry points own operational timing; nothing here is flagged.

fn main() {
    let started = std::time::Instant::now(); // ok: binary entry point
    run();
    eprintln!("took {:?}", started.elapsed());
}

fn run() {}
