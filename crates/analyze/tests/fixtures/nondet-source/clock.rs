//@ path: crates/telemetry/src/clock.rs
// The telemetry crate is the sanctioned consumer of wall-clock time.

pub fn now() -> std::time::Instant {
    std::time::Instant::now() // ok: telemetry crate is exempt
}
