// A file named main.rs is analyzed as a binary entry point: it owns
// the process, so `std::process::exit` is allowed.

fn main() {
    std::process::exit(0); // ok: binary entry point
}
