// error-policy fixture: public fallible functions return the typed
// fault::Error, and only binary entry points may exit the process.

pub fn stringly() -> Result<(), String> { //~ error-policy
    Err("nope".to_string())
}

pub fn typed() -> Result<u32, fault::Error> {
    Ok(1) // ok: the workspace error type
}

pub fn aliased() -> fault::Result<u32> {
    Ok(1) // ok: one-param alias defaults the error type
}

pub(crate) fn internal() -> Result<u32, String> {
    Ok(1) // ok: not public API
}

fn private() -> Result<u32, String> {
    Ok(1) // ok: not public API
}

pub fn infallible(x: u32) -> u32 {
    x + 1 // ok: no Result
}

pub fn abort_everything() {
    std::process::exit(3); //~ error-policy
}
