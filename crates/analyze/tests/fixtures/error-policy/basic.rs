// error-policy fixture: public fallible functions return the typed
// fault::Error, and only binary entry points may exit the process.

pub fn stringly() -> Result<(), String> { //~ error-policy
    Err("nope".to_string())
}

pub fn typed() -> Result<u32, fault::Error> {
    Ok(1) // ok: the workspace error type
}

pub fn aliased() -> fault::Result<u32> {
    Ok(1) // ok: one-param alias defaults the error type
}

// Qualifiers between `pub` and `fn` do not exempt the signature.
pub async fn qualified_async() -> Result<(), String> { //~ error-policy
    Err("nope".to_string())
}

pub const fn qualified_const() -> Result<u32, String> { //~ error-policy
    Ok(1)
}

pub unsafe fn qualified_unsafe() -> Result<u32, String> { //~ error-policy //~ unsafe-region
    Ok(1)
}

pub extern "C" fn qualified_extern() -> Result<u32, String> { //~ error-policy
    Ok(1)
}

pub async unsafe fn qualified_stacked() -> Result<u32, fault::Error> { //~ unsafe-region
    Ok(1) // ok: typed error behind stacked qualifiers
}

pub const MAX: u32 = 64; // ok: `pub const` item, not a fn

pub(crate) fn internal() -> Result<u32, String> {
    Ok(1) // ok: not public API
}

fn private() -> Result<u32, String> {
    Ok(1) // ok: not public API
}

pub fn infallible(x: u32) -> u32 {
    x + 1 // ok: no Result
}

pub fn abort_everything() {
    std::process::exit(3); //~ error-policy
}
