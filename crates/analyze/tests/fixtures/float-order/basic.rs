// float-order fixture: comparisons must use the total order.

pub fn best(xs: &[f64]) -> Option<usize> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).unwrap_or(std::cmp::Ordering::Equal)); //~ float-order
    order.first().copied()
}

pub fn ranked(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.total_cmp(b)); // ok: total order
}

struct Wrapped(f64);

impl PartialOrd for Wrapped {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.0.total_cmp(&other.0)) // ok: this is the trait impl, not a use
    }
}

impl PartialEq for Wrapped {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0).is_eq()
    }
}
