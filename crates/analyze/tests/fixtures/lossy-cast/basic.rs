// lossy-cast fixture: truncating `as` casts must be typed away or
// argued safe in analyze.toml. `as f64` is exempt by policy (all
// counts in this workspace stay below 2^53).

pub fn narrow(n: usize) -> u32 {
    n as u32 //~ lossy-cast
}

pub fn to_float(n: usize) -> f64 {
    n as f64 // ok: exempt by policy
}

pub fn single_precision(x: f64) -> f32 {
    x as f32 //~ lossy-cast
}

pub fn widen_for_index(codes: &[u32], i: u16) -> u32 {
    codes[i as usize] //~ lossy-cast
}

pub fn two_on_one_line(a: u64, b: u64) -> u32 {
    (a as u32) ^ (b as u32) //~ lossy-cast //~ lossy-cast
}

pub fn checked(n: usize) -> Option<u32> {
    u32::try_from(n).ok() // ok: the typed conversion the lint wants
}

pub struct CastLike;

pub fn not_a_cast(as_name: u32) -> u32 {
    // `as` in a path/use position or an ident containing "as" is not a cast.
    as_name // ok
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_cast() {
        let _ = 300usize as u8; // ok: test region
    }
}
