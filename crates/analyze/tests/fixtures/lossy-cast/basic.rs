// lossy-cast fixture: truncating `as` casts must be typed away or
// argued safe in analyze.toml. `as f64` is exempt only for sources
// narrower than 64 bits — a 64-bit integer above 2^53 rounds silently.

pub fn narrow(n: usize) -> u32 {
    n as u32 //~ lossy-cast
}

pub fn to_float(n: usize) -> f64 {
    n as f64 //~ lossy-cast
}

pub fn to_float_narrow(k: u32) -> f64 {
    // `k` is only ever ascribed u32 in this file, so the heuristic
    // (rightly) leaves the exact u32 -> f64 conversion alone.
    k as f64 // ok: u32 -> f64 is always exact
}

pub fn single_precision(x: f64) -> f32 {
    x as f32 //~ lossy-cast
}

pub fn widen_for_index(codes: &[u32], i: u16) -> u32 {
    codes[i as usize] //~ lossy-cast
}

pub fn two_on_one_line(a: u64, b: u64) -> u32 {
    (a as u32) ^ (b as u32) //~ lossy-cast //~ lossy-cast
}

pub fn chained_wide(x: u32) -> f64 {
    // Two findings: the integer-target `as u64` (source unseen, as
    // ever) and the wide-source `as f64` behind it.
    x as u64 as f64 //~ lossy-cast //~ lossy-cast
}

pub fn suffixed_literal() -> f64 {
    9_007_199_254_740_993u64 as f64 //~ lossy-cast
}

pub fn length_ratio(xs: &[f64], ys: &[f64]) -> f64 {
    xs.len() as f64 / ys.len() as f64 //~ lossy-cast //~ lossy-cast
}

pub fn wide_fn() -> u64 {
    42
}

pub fn from_wide_fn() -> f64 {
    wide_fn() as f64 //~ lossy-cast
}

pub fn checked(n: usize) -> Option<u32> {
    u32::try_from(n).ok() // ok: the typed conversion the lint wants
}

pub struct CastLike;

pub fn not_a_cast(as_name: u32) -> u32 {
    // `as` in a path/use position or an ident containing "as" is not a cast.
    as_name // ok
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_cast() {
        let _ = 300usize as u8; // ok: test region
    }
}
