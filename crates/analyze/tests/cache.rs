//! Integration gate for the incremental diagnostic cache, run over the
//! real workspace (not a fixture): a warm run must be byte-identical to
//! the cold run that populated the cache, and demonstrably cheaper —
//! every file served from cache, none re-analyzed. CI re-asserts the
//! same property end-to-end through the CLI (`--cache` cold-then-warm,
//! `cmp` on the JSONL outputs).

use analyze::{analyze_workspace_with, AnalyzeOptions, Report};
use std::path::{Path, PathBuf};

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze sits two levels below the workspace root")
}

/// A per-test cache path under the target dir (unique per test name so
/// parallel tests never share a file).
fn cache_path(test: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .join("target/analyze-cache-tests");
    std::fs::create_dir_all(&dir).expect("cache test dir");
    dir.join(format!("{test}-{}.jsonl", std::process::id()))
}

/// The full rendered output of a run — exactly what `--format json`
/// prints, diagnostics then waived findings — as one string, so
/// equality below means byte-identity of what a user would see.
fn rendered(report: &Report) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&d.render_json());
        out.push('\n');
    }
    for d in &report.waived_diagnostics {
        out.push_str(&d.render_json_waived());
        out.push('\n');
    }
    out
}

fn run_with_cache(path: &Path) -> Report {
    analyze_workspace_with(
        workspace_root(),
        &AnalyzeOptions {
            cache_path: Some(path.to_path_buf()),
        },
    )
    .expect("workspace analysis runs")
}

#[test]
fn warm_run_is_byte_identical_to_cold_and_fully_cached() {
    let cache = cache_path("cold-warm");
    let _ = std::fs::remove_file(&cache);

    let cold = run_with_cache(&cache);
    assert_eq!(cold.cache_hits, 0, "first run starts from an empty cache");
    assert!(cold.cache_misses > 50, "cold run analyzes the workspace");

    let warm = run_with_cache(&cache);
    assert_eq!(
        warm.cache_misses, 0,
        "nothing changed, so nothing re-analyzes"
    );
    assert_eq!(
        warm.cache_hits, cold.cache_misses,
        "every file the cold run analyzed is served from cache"
    );
    assert_eq!(
        rendered(&cold),
        rendered(&warm),
        "warm output must be byte-identical to cold"
    );
    assert_eq!(warm.files, cold.files);
    assert_eq!(warm.waived, cold.waived);

    let _ = std::fs::remove_file(&cache);
}

#[test]
fn truncated_cache_degrades_to_partial_misses_with_identical_output() {
    let cache = cache_path("truncated");
    let _ = std::fs::remove_file(&cache);

    let cold = run_with_cache(&cache);
    let baseline = rendered(&cold);

    // Chop the cache file mid-record: a crashed writer's torn tail.
    let bytes = std::fs::read(&cache).expect("cache written");
    std::fs::write(&cache, &bytes[..bytes.len() * 2 / 3]).expect("truncate");

    let warm = run_with_cache(&cache);
    assert!(
        warm.cache_hits > 0,
        "records before the tear still serve hits"
    );
    assert!(
        warm.cache_misses > 0,
        "records at/after the tear re-analyze"
    );
    assert_eq!(
        baseline,
        rendered(&warm),
        "a torn cache may cost time, never correctness"
    );

    // The torn-tail run rewrote the cache; the next run is fully warm.
    let healed = run_with_cache(&cache);
    assert_eq!(healed.cache_misses, 0, "cache healed by the previous run");
    assert_eq!(baseline, rendered(&healed));

    let _ = std::fs::remove_file(&cache);
}
