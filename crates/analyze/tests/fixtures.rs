//! Fixture corpus: every file under `tests/fixtures/<lint>/` is lexed
//! and linted, and its `//~ <lint>` markers are the golden expected
//! diagnostics — one marker per expected finding on that line, repeated
//! markers for repeated findings. A finding without a marker, or a
//! marker without a finding, fails with a readable diff.

use analyze::analyze_source;
use analyze::source::SourceFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// `(line, lint) -> count` of `//~ <lint>` markers in the fixture text.
fn expected_markers(text: &str) -> BTreeMap<(usize, String), usize> {
    let mut out = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find("//~") {
            rest = &rest[pos + 3..];
            let lint: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
                .collect();
            assert!(!lint.is_empty(), "malformed //~ marker on line {}", i + 1);
            *out.entry((i + 1, lint)).or_insert(0) += 1;
        }
    }
    out
}

fn fixture_files() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut files = Vec::new();
    // The workspace passes (dead-pub-api, env-registry, nondet-source)
    // are cross-file: their corpora carry `//@ path:` virtual paths and
    // run under tests/workspace_fixtures.rs, not this per-file harness.
    let workspace_dirs = ["dead-pub-api", "env-registry", "nondet-source"];
    for dir in std::fs::read_dir(&root).expect("fixtures dir exists") {
        let dir = dir.expect("readable dir entry").path();
        if !dir.is_dir() {
            continue;
        }
        if dir
            .file_name()
            .is_some_and(|n| workspace_dirs.iter().any(|w| n == *w))
        {
            continue;
        }
        for f in std::fs::read_dir(&dir).expect("readable lint dir") {
            let f = f.expect("readable file entry").path();
            if f.extension().is_some_and(|e| e == "rs") {
                files.push(f);
            }
        }
    }
    files.sort();
    assert!(files.len() >= 7, "fixture corpus went missing: {files:?}");
    files
}

#[test]
fn fixture_corpus_matches_markers_exactly() {
    for path in fixture_files() {
        let text = std::fs::read_to_string(&path).expect("fixture readable");
        let name = path.file_name().expect("file name").to_string_lossy();
        // Files named main.rs are analyzed as binary entry points.
        let is_main = name == "main.rs";
        let rel = format!(
            "tests/fixtures/{}/{}",
            path.parent()
                .and_then(|p| p.file_name())
                .expect("lint dir")
                .to_string_lossy(),
            name
        );
        let expected = expected_markers(&text);
        let file = SourceFile::new(rel.clone(), text);
        let mut actual: BTreeMap<(usize, String), usize> = BTreeMap::new();
        for d in analyze_source(&file, is_main) {
            *actual.entry((d.line, d.lint.to_string())).or_insert(0) += 1;
        }
        assert_eq!(
            actual, expected,
            "{rel}: findings (left) disagree with //~ markers (right)"
        );
    }
}

#[test]
fn fixture_rendering_is_stable() {
    // Lock the exact text rendering against one known fixture line so a
    // formatting regression in the diagnostic printer is caught here,
    // not in CI logs.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let path = root.join("tests/fixtures/lossy-cast/basic.rs");
    let text = std::fs::read_to_string(&path).expect("fixture readable");
    let file = SourceFile::new("tests/fixtures/lossy-cast/basic.rs".into(), text);
    let diags = analyze_source(&file, false);
    let first = diags.first().expect("lossy-cast fixture has findings");
    let rendered = first.render_text();
    let mut lines = rendered.lines();
    assert_eq!(
        lines.next(),
        Some(
            "tests/fixtures/lossy-cast/basic.rs:6:7: [lossy-cast] `as u32` can truncate or \
             wrap — use `try_into` with a typed `fault::Error`, or waive with a proof the \
             value is in range"
        ),
        "full rendering:\n{rendered}"
    );
    assert_eq!(lines.next(), Some("    6 |     n as u32 //~ lossy-cast"));
    assert_eq!(lines.next(), Some("      |       ^^^^^^"));
}
