//! Property tests for the lexer's two totality guarantees: it never
//! panics, and its token spans exactly tile the input — every byte of
//! every input belongs to exactly one token, with no gaps, overlaps,
//! or out-of-bounds spans. Inputs are built from adversarial Rust
//! fragments (raw-string openers, unbalanced quotes, nested comment
//! markers, stray backslashes, multi-byte characters) so the generator
//! concentrates on exactly the syntax that breaks naive lexers.

use analyze::lexer::lex;
use proptest::prelude::*;

/// Fragments chosen to collide: openers without closers, prefixes that
/// look like raw strings, comment markers inside literals, multi-byte
/// UTF-8, and ordinary code to glue it together.
const FRAGMENTS: &[&str] = &[
    "r#\"",
    "\"#",
    "r\"",
    "\"",
    "'",
    "'a",
    "b'",
    "b\"",
    "br#\"",
    "r#ident",
    "\\",
    "\\\"",
    "\\'",
    "//",
    "/*",
    "*/",
    "/**/",
    "\n",
    " ",
    "\t",
    "fn main() {}",
    "let x = 1;",
    "0x_f",
    "1e9",
    "1.",
    "1.e",
    "0b12",
    "'\\u{1F600}'",
    "é",
    "🦀",
    "日本",
    "#[cfg(test)]",
    "mod t {",
    "}",
    "::",
    "..=",
    "ident",
    "_",
    "'static",
    "1_000u64",
    "r",
    "b",
    "br",
    "#",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Concatenations of adversarial fragments lex without panicking
    /// and the spans tile the input exactly.
    #[test]
    fn lexer_is_total_over_fragment_soup(
        parts in prop::collection::vec(prop::sample::select(FRAGMENTS.to_vec()), 0..40),
    ) {
        let input: String = parts.concat();
        let tokens = lex(&input);
        let mut cursor = 0usize;
        for t in &tokens {
            prop_assert_eq!(t.start, cursor, "gap or overlap in {:?}", input);
            prop_assert!(t.end > t.start, "empty token in {:?}", input);
            prop_assert!(t.end <= input.len(), "span past EOF in {:?}", input);
            // Spans land on char boundaries: slicing must not panic.
            prop_assert!(input.is_char_boundary(t.start) && input.is_char_boundary(t.end));
            cursor = t.end;
        }
        prop_assert_eq!(cursor, input.len(), "tail not covered in {:?}", input);
    }

    /// Same totality over raw byte soup forced into valid UTF-8 by
    /// lossy conversion — no structure at all.
    #[test]
    fn lexer_is_total_over_byte_soup(bytes in prop::collection::vec(0u32..256, 0..120)) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let input = String::from_utf8_lossy(&raw).into_owned();
        let tokens = lex(&input);
        let mut cursor = 0usize;
        for t in &tokens {
            prop_assert_eq!(t.start, cursor);
            cursor = t.end;
        }
        prop_assert_eq!(cursor, input.len());
    }

    /// Lexing is deterministic: same input, same token stream.
    #[test]
    fn lexing_is_deterministic(
        parts in prop::collection::vec(prop::sample::select(FRAGMENTS.to_vec()), 0..24),
    ) {
        let input: String = parts.concat();
        let a = lex(&input);
        let b = lex(&input);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!((x.start, x.end), (y.start, y.end));
        }
    }
}
