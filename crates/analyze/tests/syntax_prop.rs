//! Property tests for the item parser's totality guarantees, mirroring
//! the lexer's (tests/prop.rs): `syntax::parse` never panics, its node
//! spans exactly tile the input (top-level nodes tile `[0, len)`,
//! children tile their container's body interior — `check_tiling`
//! verifies both), and parsing is deterministic. The fragment pool
//! leans on item syntax: orphan attributes, visibility qualifiers
//! without items, unterminated bodies, macro definitions, and the
//! lexer pool's literal-breaking shrapnel.

use analyze::lexer::lex;
use analyze::syntax::{self, Node};
use proptest::prelude::*;

/// Item-level shrapnel: things that look like items, halves of items,
/// attributes with item keywords inside, and literal-breakers from the
/// lexer pool to corrupt everything downstream.
const FRAGMENTS: &[&str] = &[
    "pub fn f() {}",
    "pub(crate) fn g(x: u64) -> f64 { x as f64 }",
    "fn",
    "pub",
    "pub(in a::b)",
    "struct",
    "struct S;",
    "pub struct S { x: u8 }",
    "enum E { A, B }",
    "impl S {",
    "impl Clone for S {}",
    "}",
    "{",
    "mod m {",
    "pub mod m;",
    "use a::b::{c, d};",
    "use a as b;",
    "const N: usize = { 1 };",
    "static S: u8 = 0;",
    "type T = u8;",
    "trait T { fn f(&self); }",
    "extern \"C\" { fn c(); }",
    "macro_rules! m { () => {} }",
    "thread_local! { static X: u8 = 0; }",
    "#[derive(Debug)]",
    "#[cfg(test)]",
    "#![allow(dead_code)]",
    "#[doc = \"has fn and struct inside\"]",
    "#[",
    "]",
    "async unsafe fn h() {}",
    "const fn k() {}",
    "unsafe impl Send for S {}",
    ";",
    "// comment with fn inside\n",
    "/* pub struct */",
    "r#\"",
    "\"",
    "'",
    "\\",
    "🦀",
    "é fn",
    "let x = 1;",
    "=> {}",
    "\n",
    " ",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Concatenations of item shrapnel parse without panicking, and
    /// node spans tile the input exactly (recursively).
    #[test]
    fn parser_is_total_over_fragment_soup(
        parts in prop::collection::vec(prop::sample::select(FRAGMENTS.to_vec()), 0..40),
    ) {
        let input: String = parts.concat();
        let tokens = lex(&input);
        let nodes = syntax::parse(&input, &tokens);
        prop_assert!(
            syntax::check_tiling(&input, &nodes).is_ok(),
            "tiling violated for {:?}: {:?}",
            input,
            syntax::check_tiling(&input, &nodes)
        );
    }

    /// Same totality over raw byte soup forced into valid UTF-8 —
    /// no item structure at all, parser must still tile.
    #[test]
    fn parser_is_total_over_byte_soup(bytes in prop::collection::vec(0u32..256, 0..120)) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let input = String::from_utf8_lossy(&raw).into_owned();
        let tokens = lex(&input);
        let nodes = syntax::parse(&input, &tokens);
        prop_assert!(syntax::check_tiling(&input, &nodes).is_ok(), "{input:?}");
    }

    /// Parsing is deterministic: same input, same item tree (spans,
    /// kinds, names, in order).
    #[test]
    fn parsing_is_deterministic(
        parts in prop::collection::vec(prop::sample::select(FRAGMENTS.to_vec()), 0..24),
    ) {
        let input: String = parts.concat();
        let tokens = lex(&input);
        let a = syntax::parse(&input, &tokens);
        let b = syntax::parse(&input, &tokens);
        let mut fa = Vec::new();
        let mut fb = Vec::new();
        flatten(&a, &mut fa);
        flatten(&b, &mut fb);
        prop_assert_eq!(fa, fb);
    }

    /// Every parsed item's span lies inside the input and starts/ends
    /// on char boundaries, so downstream slicing can't panic.
    #[test]
    fn item_spans_are_sliceable(
        parts in prop::collection::vec(prop::sample::select(FRAGMENTS.to_vec()), 0..32),
    ) {
        let input: String = parts.concat();
        let tokens = lex(&input);
        let nodes = syntax::parse(&input, &tokens);
        syntax::visit_items(&nodes, &mut |item, _| {
            let (s, e) = item.span;
            assert!(s <= e && e <= input.len(), "span out of bounds in {input:?}");
            assert!(
                input.is_char_boundary(s) && input.is_char_boundary(e),
                "span off char boundary in {input:?}"
            );
            assert!(
                s <= item.sig_end && item.sig_end <= e,
                "sig_end outside span in {input:?}"
            );
        });
    }
}

/// Flatten a node tree into comparable (span, kind-ish, name) rows.
fn flatten(nodes: &[Node], out: &mut Vec<(usize, usize, String)>) {
    for n in nodes {
        match n {
            Node::Gap(s, e) => out.push((*s, *e, "<gap>".into())),
            Node::Item(item) => {
                out.push((
                    item.span.0,
                    item.span.1,
                    format!("{:?}:{:?}", item.kind, item.name),
                ));
                flatten(&item.children, out);
            }
        }
    }
}
