//! Self-hosting check: the analyzer, run over its own workspace with
//! the checked-in `analyze.toml`, reports nothing. This is the test
//! the acceptance gate leans on: re-add an `unwrap()` to library code
//! anywhere in the workspace and this fails with the spanned finding.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze sits two levels below the workspace root")
}

#[test]
fn workspace_is_clean_under_all_lints() {
    let report = analyze::analyze_workspace(workspace_root()).expect("analysis runs");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.render_text()).collect();
    assert!(
        report.is_clean(),
        "workspace has unwaived findings or stale waivers:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.files > 50,
        "suspiciously few files scanned ({}) — walk roots moved?",
        report.files
    );
    assert!(
        report.waived > 100,
        "suspiciously few waived findings ({}) — analyze.toml not loaded?",
        report.waived
    );
}

#[test]
fn corrupting_a_file_is_caught_with_a_spanned_diagnostic() {
    // The acceptance scenario, in-memory: the same source that is clean
    // as checked in becomes a finding the moment an unwrap lands in it.
    let root = workspace_root();
    let path = root.join("crates/linalg/src/stats.rs");
    let clean = std::fs::read_to_string(&path).expect("stats.rs readable");
    let corrupted = clean.replacen(
        "pub fn",
        "pub fn _sneaky(v: Option<u32>) -> u32 { v.unwrap() }\npub fn",
        1,
    );
    assert_ne!(
        clean, corrupted,
        "fixture assumption: stats.rs has a pub fn"
    );
    let file = analyze::source::SourceFile::new("crates/linalg/src/stats.rs".into(), corrupted);
    let diags = analyze::analyze_source(&file, false);
    let hit = diags
        .iter()
        .find(|d| d.lint == "panic-policy")
        .expect("re-added unwrap must be flagged");
    assert!(hit.line >= 1 && hit.col > 1, "span is resolved: {hit:?}");
    assert!(hit.excerpt.contains("unwrap"), "excerpt shows the line");
}
