//! Cross-file fixture harness for the three workspace passes.
//!
//! Unlike the per-file corpus (tests/fixtures.rs), these corpora are
//! miniature *workspaces*: every `.rs` file starts with a
//! `//@ path: <workspace-relative path>` header assigning its virtual
//! location (which decides crate identity and role), facts are
//! extracted per file, and `index::check_workspace` runs over the
//! whole set. `//~ <lint>` markers are the golden expectations, same
//! contract as the per-file harness; an `env.toml` in the corpus
//! supplies the `[[env]]` registry, with `#~ <lint>` markers for
//! findings that anchor inside it (stale declarations).
//!
//! Each corpus is judged only against its own pass — a dead-pub-api
//! corpus is free to contain, say, an unreferenced helper that
//! nondet-source would ignore and vice versa.

use analyze::index::{self, FileFacts};
use analyze::source::SourceFile;
use analyze::waiver::{self, EnvDecl};
use std::collections::BTreeMap;
use std::path::Path;

type Markers = BTreeMap<(String, usize), usize>;

/// `//~ <lint>` (and `#~ <lint>` for TOML) marker counts for `lint`.
fn markers(virtual_path: &str, text: &str, sigil: &str, lint: &str) -> Markers {
    let mut out = Markers::new();
    for (i, line) in text.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find(sigil) {
            rest = &rest[pos + sigil.len()..];
            let name: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
                .collect();
            assert!(
                !name.is_empty(),
                "malformed {sigil} marker on line {}",
                i + 1
            );
            if name == lint {
                *out.entry((virtual_path.to_string(), i + 1)).or_insert(0) += 1;
            }
        }
    }
    out
}

/// Load a corpus dir: per-file facts (virtual paths from `//@ path:`
/// headers), the optional `env.toml` registry, and expected markers.
fn load_corpus(lint: &str) -> (Vec<FileFacts>, Vec<EnvDecl>, Markers) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(lint);
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus dir exists")
        .map(|e| e.expect("readable entry").path())
        .collect();
    entries.sort();

    let mut facts = Vec::new();
    let mut envs = Vec::new();
    let mut expected = Markers::new();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("corpus file readable");
        if path.file_name().is_some_and(|n| n == "env.toml") {
            let config = waiver::parse_config(&text, "env.toml").expect("fixture env.toml parses");
            assert!(!config.envs.is_empty(), "env.toml without [[env]] entries");
            envs = config.envs;
            expected.extend(markers("env.toml", &text, "#~", lint));
            continue;
        }
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let first = text.lines().next().unwrap_or("");
        let vpath = first
            .strip_prefix("//@ path:")
            .unwrap_or_else(|| panic!("{}: first line must be `//@ path: …`", path.display()))
            .trim()
            .to_string();
        expected.extend(markers(&vpath, &text, "//~", lint));
        let file = SourceFile::new(vpath.clone(), text);
        let tokens = analyze::lexer::lex(&file.text);
        facts.push(index::extract_facts(&file, &tokens, index::role_of(&vpath)));
    }
    assert!(facts.len() >= 2, "{lint}: corpus must span multiple files");
    (facts, envs, expected)
}

fn run_corpus(lint: &str) {
    let (facts, envs, expected) = load_corpus(lint);
    let mut actual = Markers::new();
    for d in index::check_workspace(&facts, &envs, "env.toml") {
        if d.lint == lint {
            *actual.entry((d.path.clone(), d.line)).or_insert(0) += 1;
        }
    }
    assert_eq!(
        actual, expected,
        "{lint}: findings (left) disagree with markers (right)"
    );
}

#[test]
fn dead_pub_api_corpus_matches_markers() {
    run_corpus("dead-pub-api");
}

#[test]
fn env_registry_corpus_matches_markers() {
    run_corpus("env-registry");
}

#[test]
fn nondet_source_corpus_matches_markers() {
    run_corpus("nondet-source");
}
