//! CLI for the workspace analyzer.
//!
//! ```text
//! cargo run -p analyze --                # lint the workspace, text diagnostics
//! cargo run -p analyze -- --format json  # JSONL (telemetry-manifest line shape)
//! cargo run -p analyze -- crates/serve/src/engine.rs   # specific files
//! cargo run -p analyze -- --emit-waivers # TOML skeletons for current findings
//! ```
//!
//! Exit codes: `0` clean, `1` findings or stale waivers, and the
//! `fault::Error` mapping for operational failures (`2` invalid
//! input/config, `3` I/O) — the same codes the rest of the pipeline
//! uses, so CI and shell drivers need one vocabulary only.

use analyze::{analyze_files, waiver, walk, Report};
use fault::{Error, Result};
use std::path::PathBuf;

fn main() {
    match run() {
        // --help / --list-lints: informational output only, no summary.
        Ok(None) => {}
        Ok(Some(report)) if report.is_clean() => {
            // Summary goes to stderr in JSON mode so stdout stays pure JSONL.
            eprintln!(
                "analyze: clean — {} files, {} waived finding(s)",
                report.files, report.waived
            );
        }
        Ok(Some(report)) => {
            eprintln!(
                "analyze: {} finding(s) in {} files ({} waived)",
                report.diagnostics.len(),
                report.files,
                report.waived
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("analyze: error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}

struct Options {
    root: PathBuf,
    format: Format,
    emit_waivers: bool,
    paths: Vec<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

const USAGE: &str = "usage: analyze [--root DIR] [--format text|json] [--emit-waivers] [PATH...]

Lints workspace library code (root src/ + crates/*/src, compat excluded)
for perfpredict's panic, determinism, and cast invariants. Waivers live
in <root>/analyze.toml; see DESIGN.md \u{a7}10 for the lint catalog.

  --root DIR       workspace root (default: current directory)
  --format FMT     text (default) or json (JSONL, manifest-shaped)
  --emit-waivers   print analyze.toml skeletons for unwaived findings
  --list-lints     print the lint names and exit
  PATH...          lint these files instead of discovering the workspace";

fn parse_args() -> Result<Option<Options>> {
    let mut opts = Options {
        root: PathBuf::from("."),
        format: Format::Text,
        emit_waivers: false,
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--list-lints" => {
                for (name, _) in analyze::lints::LINTS {
                    println!("{name}");
                }
                return Ok(None);
            }
            "--emit-waivers" => opts.emit_waivers = true,
            "--root" => {
                let dir = args
                    .next()
                    .ok_or_else(|| Error::invalid("--root needs a directory argument"))?;
                opts.root = PathBuf::from(dir);
            }
            "--format" => {
                opts.format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        return Err(Error::invalid(format!(
                            "--format must be `text` or `json`, got {other:?}"
                        )))
                    }
                };
            }
            flag if flag.starts_with('-') => {
                return Err(Error::invalid(format!("unknown flag `{flag}`\n{USAGE}")));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    Ok(Some(opts))
}

fn run() -> Result<Option<Report>> {
    let Some(opts) = parse_args()? else {
        return Ok(None);
    };
    let files = if opts.paths.is_empty() {
        walk::workspace_files(&opts.root)?
    } else {
        opts.paths
            .iter()
            .map(|p| {
                if p.is_absolute() {
                    p.clone()
                } else {
                    opts.root.join(p)
                }
            })
            .collect()
    };
    let waiver_path = opts.root.join("analyze.toml");
    let waivers = if waiver_path.is_file() {
        let text = std::fs::read_to_string(&waiver_path)
            .map_err(|e| Error::io(waiver_path.display().to_string(), e))?;
        waiver::parse(&text, "analyze.toml")?
    } else {
        Vec::new()
    };
    let report = analyze_files(&opts.root, &files, &waivers)?;

    if opts.emit_waivers {
        emit_waivers(&report);
        return Ok(Some(report));
    }
    match opts.format {
        Format::Text => {
            for d in &report.diagnostics {
                println!("{}\n", d.render_text());
            }
        }
        Format::Json => {
            for d in &report.diagnostics {
                println!("{}", d.render_json());
            }
            println!(
                "{}",
                telemetry::json::JsonObject::new()
                    .str("type", "summary")
                    .uint("findings", report.diagnostics.len() as u64)
                    .uint("waived", report.waived as u64)
                    .uint("files", report.files as u64)
                    .finish()
            );
        }
    }
    Ok(Some(report))
}

/// Print ready-to-edit waiver entries for each unwaived finding. The
/// emitted `reason = "TODO"` deliberately fails validation, so a
/// skeleton cannot be committed without a real justification.
fn emit_waivers(report: &Report) {
    for d in &report.diagnostics {
        if d.lint == "stale-waiver" {
            continue;
        }
        println!("[[waiver]]");
        println!("lint = \"{}\"", d.lint);
        println!("path = \"{}\"", d.path);
        println!("line = {}", d.line);
        println!("hash = \"{}\"", d.hash);
        println!("reason = \"TODO\"  # {}", d.message.replace('\n', " "));
        println!();
    }
}
