//! CLI for the workspace analyzer.
//!
//! ```text
//! cargo run -p analyze --                # lint the workspace, text diagnostics
//! cargo run -p analyze -- --format json  # JSONL (telemetry-manifest line shape)
//! cargo run -p analyze -- --cache target/analyze-cache.jsonl   # warm runs skip unchanged files
//! cargo run -p analyze -- --fix          # mechanical fixes (float-order, bare-assert)
//! cargo run -p analyze -- crates/serve/src/engine.rs   # specific files
//! cargo run -p analyze -- --emit-waivers # TOML skeletons for current findings
//! ```
//!
//! Exit codes: `0` clean, `1` findings or stale waivers, and the
//! `fault::Error` mapping for operational failures (`2` invalid
//! input/config, `3` I/O) — the same codes the rest of the pipeline
//! uses, so CI and shell drivers need one vocabulary only.

use analyze::{analyze_files, fix, walk, AnalyzeOptions, Report};
use fault::{Error, Result};
use std::path::PathBuf;

fn main() {
    match run() {
        // --help / --list-lints: informational output only, no summary.
        Ok(None) => {}
        Ok(Some(report)) if report.is_clean() => {
            // Summary goes to stderr in JSON mode so stdout stays pure JSONL.
            eprintln!(
                "analyze: clean — {} files, {} waived finding(s)",
                report.files, report.waived
            );
        }
        Ok(Some(report)) => {
            eprintln!(
                "analyze: {} finding(s) in {} files ({} waived)",
                report.diagnostics.len(),
                report.files,
                report.waived
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("analyze: error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}

struct Options {
    root: PathBuf,
    format: Format,
    emit_waivers: bool,
    show_waived: bool,
    fix: bool,
    cache: Option<PathBuf>,
    timings: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

const USAGE: &str = "usage: analyze [--root DIR] [--format text|json] [--cache PATH] [--fix]
               [--show-waived] [--emit-waivers] [--timings PATH] [PATH...]

Lints workspace library code (root src/ + crates/*/src, compat excluded)
for perfpredict's panic, determinism, cast, API-liveness, and env-knob
invariants. Waivers and the [[env]] registry live in <root>/analyze.toml;
see DESIGN.md \u{a7}10 for the lint catalog.

  --root DIR       workspace root (default: current directory)
  --format FMT     text (default) or json (JSONL, manifest-shaped)
  --cache PATH     diagnostic cache: warm runs skip unchanged files and
                   produce byte-identical output (stats go to stderr)
  --fix            rewrite mechanical findings in place first
                   (float-order partial_cmp -> total_cmp, message-less
                   bare-assert), then analyze the result
  --show-waived    with --format json: also emit waiver-suppressed
                   findings, marked \"waived\":true
  --emit-waivers   print analyze.toml skeletons for unwaived findings
  --timings PATH   write analyze wall-time as bench-shaped JSON for the
                   perf-report machinery
  --list-lints     print the lint names (per-file and workspace) and exit
  PATH...          lint these files only (per-file passes; the three
                   workspace passes need full discovery and are skipped)";

fn parse_args() -> Result<Option<Options>> {
    let mut opts = Options {
        root: PathBuf::from("."),
        format: Format::Text,
        emit_waivers: false,
        show_waived: false,
        fix: false,
        cache: None,
        timings: None,
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--list-lints" => {
                for (name, _) in analyze::lints::LINTS {
                    println!("{name}");
                }
                for name in analyze::lints::WORKSPACE_PASSES {
                    println!("{name}");
                }
                return Ok(None);
            }
            "--emit-waivers" => opts.emit_waivers = true,
            "--show-waived" => opts.show_waived = true,
            "--fix" => opts.fix = true,
            "--root" => {
                let dir = args
                    .next()
                    .ok_or_else(|| Error::invalid("--root needs a directory argument"))?;
                opts.root = PathBuf::from(dir);
            }
            "--cache" => {
                let path = args
                    .next()
                    .ok_or_else(|| Error::invalid("--cache needs a file argument"))?;
                opts.cache = Some(PathBuf::from(path));
            }
            "--timings" => {
                let path = args
                    .next()
                    .ok_or_else(|| Error::invalid("--timings needs a file argument"))?;
                opts.timings = Some(PathBuf::from(path));
            }
            "--format" => {
                opts.format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        return Err(Error::invalid(format!(
                            "--format must be `text` or `json`, got {other:?}"
                        )))
                    }
                };
            }
            flag if flag.starts_with('-') => {
                return Err(Error::invalid(format!("unknown flag `{flag}`\n{USAGE}")));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if opts.show_waived && opts.format != Format::Json {
        return Err(Error::invalid(
            "--show-waived requires --format json (waived findings are a JSONL audit surface)",
        ));
    }
    Ok(Some(opts))
}

fn run() -> Result<Option<Report>> {
    let Some(opts) = parse_args()? else {
        return Ok(None);
    };
    let started = std::time::Instant::now();
    let explicit_files: Vec<PathBuf> = opts
        .paths
        .iter()
        .map(|p| {
            if p.is_absolute() {
                p.clone()
            } else {
                opts.root.join(p)
            }
        })
        .collect();

    if opts.fix {
        let config = analyze::load_config(&opts.root)?;
        let files = if explicit_files.is_empty() {
            walk::workspace_files(&opts.root)?
        } else {
            explicit_files.clone()
        };
        let summary = fix::fix_files(&opts.root, &files, &config.waivers)?;
        eprintln!(
            "analyze: --fix rewrote {} site(s) in {} file(s)",
            summary.fixes, summary.files_changed
        );
    }

    let report = if explicit_files.is_empty() {
        analyze::analyze_workspace_with(
            &opts.root,
            &AnalyzeOptions {
                cache_path: opts.cache.clone(),
            },
        )?
    } else {
        // Explicit file lists run the per-file passes only: the
        // workspace passes need the whole file set to judge liveness.
        let config = analyze::load_config(&opts.root)?;
        analyze_files(&opts.root, &explicit_files, &config.waivers)?
    };

    if opts.cache.is_some() {
        // Stderr, never stdout: warm and cold runs must emit
        // byte-identical JSONL, and hit counts differ by definition.
        eprintln!(
            "analyze: cache: {} hit(s), {} miss(es)",
            report.cache_hits, report.cache_misses
        );
    }
    if let Some(path) = &opts.timings {
        write_timings(path, started.elapsed())?;
    }

    if opts.emit_waivers {
        emit_waivers(&report);
        return Ok(Some(report));
    }
    match opts.format {
        Format::Text => {
            for d in &report.diagnostics {
                println!("{}\n", d.render_text());
            }
        }
        Format::Json => {
            if opts.show_waived {
                // Merge unwaived and waived findings back into one
                // (path, line, col, lint)-ordered stream.
                let mut live = report.diagnostics.iter().peekable();
                let mut waived = report.waived_diagnostics.iter().peekable();
                let key =
                    |d: &analyze::diagnostics::Diagnostic| (d.path.clone(), d.line, d.col, d.lint);
                loop {
                    match (live.peek(), waived.peek()) {
                        (Some(l), Some(w)) if key(l) <= key(w) => {
                            println!("{}", live.next().expect("peeked").render_json());
                        }
                        (_, Some(_)) => {
                            println!("{}", waived.next().expect("peeked").render_json_waived());
                        }
                        (Some(_), None) => {
                            println!("{}", live.next().expect("peeked").render_json());
                        }
                        (None, None) => break,
                    }
                }
            } else {
                for d in &report.diagnostics {
                    println!("{}", d.render_json());
                }
            }
            println!(
                "{}",
                telemetry::json::JsonObject::new()
                    .str("type", "summary")
                    .usize("findings", report.diagnostics.len())
                    .usize("waived", report.waived)
                    .usize("files", report.files)
                    .finish()
            );
        }
    }
    Ok(Some(report))
}

/// Write the run's wall time in the bench-results JSON shape the
/// perf-report tooling consumes, so CI can track analyze cost next to
/// kernel benches.
fn write_timings(path: &std::path::Path, elapsed: std::time::Duration) -> Result<()> {
    let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    let result = telemetry::json::JsonObject::new()
        .str("bench", "analyze/workspace")
        .uint("mean_ns", ns)
        .uint("median_ns", ns)
        .uint("samples", 1)
        .uint("iters_per_sample", 1)
        .finish();
    let body = format!("{{\"mode\":\"full\",\"results\":[{result}]}}\n");
    std::fs::write(path, body).map_err(|e| Error::io(path.display().to_string(), e))
}

/// Print ready-to-edit waiver entries for each unwaived finding. The
/// emitted `reason = "TODO"` deliberately fails validation, so a
/// skeleton cannot be committed without a real justification.
fn emit_waivers(report: &Report) {
    for d in &report.diagnostics {
        if d.lint == "stale-waiver" {
            continue;
        }
        println!("[[waiver]]");
        println!("lint = \"{}\"", d.lint);
        println!("path = \"{}\"", d.path);
        println!("line = {}", d.line);
        println!("hash = \"{}\"", d.hash);
        println!("reason = \"TODO\"  # {}", d.message.replace('\n', " "));
        println!();
    }
}
