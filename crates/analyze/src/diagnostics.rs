//! Diagnostics: the finding record, its `file:line:col` + excerpt
//! rendering, the JSONL rendering (same line shape as the telemetry
//! run manifest: one object per line with a `"type"` discriminator),
//! and the FNV-1a content hash that pins waivers to source text.

use crate::source::SourceFile;
use telemetry::json::JsonObject;

/// One lint finding, fully resolved to a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Lint name (`panic-policy`, `lossy-cast`, …).
    pub lint: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the finding's anchor token.
    pub line: usize,
    /// 1-based byte column of the anchor token.
    pub col: usize,
    /// Byte length of the flagged snippet on its line (for the caret).
    pub len: usize,
    /// Human-readable description of the violation and the fix.
    pub message: String,
    /// The source line the finding sits on (untrimmed).
    pub excerpt: String,
    /// FNV-1a hash of `lint:trimmed-line` — what a waiver must match.
    pub hash: String,
}

impl Diagnostic {
    /// Build a diagnostic anchored at byte span `[start, start+len)`.
    pub fn new(
        lint: &'static str,
        file: &SourceFile,
        start: usize,
        len: usize,
        message: String,
    ) -> Diagnostic {
        let (line, col) = file.line_col(start);
        let excerpt = file.line_text(line).to_string();
        let hash = content_hash(lint, &excerpt);
        Diagnostic {
            lint,
            path: file.path.clone(),
            line,
            col,
            len: len.max(1),
            message,
            excerpt,
            hash,
        }
    }

    /// Build a diagnostic from already-resolved parts — the path the
    /// cross-file passes and the diagnostic cache use, where the
    /// original `SourceFile` may not be in memory. The content hash is
    /// recomputed from `lint` + `excerpt`, so a cached finding pins
    /// waivers exactly like a freshly-lexed one.
    pub(crate) fn from_parts(
        lint: &'static str,
        path: String,
        line: usize,
        col: usize,
        len: usize,
        message: String,
        excerpt: String,
    ) -> Diagnostic {
        let hash = content_hash(lint, &excerpt);
        Diagnostic {
            lint,
            path,
            line,
            col,
            len: len.max(1),
            message,
            excerpt,
            hash,
        }
    }

    /// `rustc`-style text rendering:
    ///
    /// ```text
    /// crates/x/src/y.rs:12:9: [panic-policy] `.unwrap()` in library code
    ///    12 |     let v = m.get(&k).unwrap();
    ///       |                       ^^^^^^^
    /// ```
    pub fn render_text(&self) -> String {
        let gutter = format!("{:>5}", self.line);
        let caret_pad = " ".repeat(self.col.saturating_sub(1));
        let carets = "^".repeat(self.len.min(self.excerpt.len().max(1)));
        format!(
            "{}:{}:{}: [{}] {}\n{gutter} | {}\n      | {caret_pad}{carets}",
            self.path, self.line, self.col, self.lint, self.message, self.excerpt
        )
    }

    /// One JSONL line, shaped like a telemetry manifest record.
    pub fn render_json(&self) -> String {
        self.json_object().finish()
    }

    /// Like [`render_json`](Self::render_json) with a trailing
    /// `"waived":true` marker — used by `--show-waived` so waiver
    /// audits can read suppressed findings without parsing
    /// `analyze.toml`. Unwaived findings keep the unmarked shape, so
    /// default output stays byte-identical.
    pub fn render_json_waived(&self) -> String {
        self.json_object().bool("waived", true).finish()
    }

    fn json_object(&self) -> JsonObject {
        JsonObject::new()
            .str("type", "diagnostic")
            .str("lint", self.lint)
            .str("path", &self.path)
            .usize("line", self.line)
            .usize("col", self.col)
            .str("message", &self.message)
            .str("excerpt", &self.excerpt)
            .str("hash", &self.hash)
    }
}

/// FNV-1a 64-bit over `lint:trimmed-line-text`, rendered as 16 hex
/// digits. Trimming makes the hash survive re-indentation but not any
/// change to the code itself, which is exactly the staleness contract
/// `analyze.toml` waivers need: move the line, keep the waiver; edit
/// the line, re-justify it.
pub fn content_hash(lint: &str, line_text: &str) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in lint.bytes().chain([b':']).chain(line_text.trim().bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file() -> SourceFile {
        SourceFile::new(
            "crates/x/src/y.rs".into(),
            "fn f() {\n    let v = m.get(&k).unwrap();\n}\n".into(),
        )
    }

    #[test]
    fn text_rendering_pins_location_and_caret() {
        let f = file();
        let start = f.text.find(".unwrap").expect("fixture has .unwrap");
        let d = Diagnostic::new(
            "panic-policy",
            &f,
            start,
            9,
            "`.unwrap()` in library code".into(),
        );
        let text = d.render_text();
        assert!(
            text.starts_with("crates/x/src/y.rs:2:22: [panic-policy]"),
            "{text}"
        );
        assert!(
            text.contains("    2 |     let v = m.get(&k).unwrap();"),
            "{text}"
        );
        assert!(text.contains("^^^^^^^^^"), "{text}");
    }

    #[test]
    fn json_rendering_is_manifest_shaped() {
        let f = file();
        let d = Diagnostic::new("panic-policy", &f, 21, 7, "msg".into());
        let v = telemetry::json::parse(&d.render_json()).expect("diagnostic JSON parses");
        assert_eq!(v.get("type").and_then(|t| t.as_str()), Some("diagnostic"));
        assert_eq!(v.get("lint").and_then(|t| t.as_str()), Some("panic-policy"));
        assert_eq!(v.get("line").and_then(|t| t.as_f64()), Some(2.0));
        assert!(v.get("hash").and_then(|t| t.as_str()).is_some());
    }

    #[test]
    fn hash_survives_reindent_but_not_edit() {
        let a = content_hash("lossy-cast", "    let k = n as u32;");
        let b = content_hash("lossy-cast", "let k = n as u32;");
        let c = content_hash("lossy-cast", "let k = m as u32;");
        let d = content_hash("panic-policy", "let k = n as u32;");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
