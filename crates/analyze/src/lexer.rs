//! A small, total Rust lexer.
//!
//! Produces a token stream whose spans exactly tile the input: every byte
//! of the source belongs to exactly one token, tokens are emitted in
//! order, and the lexer never fails — unterminated strings and comments
//! lex to the end of input, and bytes that fit no rule become one-byte
//! [`TokenKind::Punct`] tokens. Totality is what lets the lint driver
//! run over arbitrary (even mid-edit) source without a recovery story,
//! and it is property-tested in `tests/lexer_prop.rs`.
//!
//! The surface covered is exactly what the lint passes need to be
//! comment- and string-blind where `scripts/lint-unwrap.sh`'s awk was
//! not: raw strings with any `#` count, byte and raw-byte strings,
//! char vs. lifetime disambiguation, raw identifiers (`r#match`),
//! nested block comments, and numeric literals with suffixes.

/// What a token is. Lints mostly care about `Ident`, `Punct`, and the
/// string-literal kinds (to know what is *not* code).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Horizontal/vertical whitespace run.
    Whitespace,
    /// `// ...` (including `///` and `//!` doc comments) up to newline.
    LineComment,
    /// `/* ... */`, nesting tracked; unterminated runs to EOF.
    BlockComment,
    /// Identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// `'a`, `'_`, `'static` — a lifetime, not a char literal.
    Lifetime,
    /// `"..."` string literal (escapes consumed, not validated).
    Str,
    /// `r"..."` / `r#"..."#` raw string literal.
    RawStr,
    /// `b"..."` byte-string literal.
    ByteStr,
    /// `br"..."` / `br#"..."#` raw byte-string literal.
    RawByteStr,
    /// `'x'`, `'\n'` char literal.
    Char,
    /// `b'x'` byte literal.
    Byte,
    /// Integer literal, any base, with suffix (`0xffu8`, `1_000`).
    Int,
    /// Float literal with optional exponent/suffix (`1.5e-3f32`).
    Float,
    /// A single punctuation byte (`::` is two `Punct` tokens), and the
    /// catch-all for bytes no other rule claims.
    Punct,
}

/// One token: kind plus the half-open byte span `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// True for tokens the lint passes skip (whitespace and comments).
    pub(crate) fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// Lex `src` completely. Infallible; spans tile `[0, src.len())`.
pub fn lex(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let start = pos;
        let kind = next_token(src, bytes, &mut pos);
        debug_assert!(pos > start, "lexer must always make progress");
        tokens.push(Token {
            kind,
            start,
            end: pos,
        });
    }
    tokens
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Advance past one UTF-8 character starting at `*pos`.
fn bump_char(src: &str, pos: &mut usize) {
    let mut p = *pos + 1;
    while p < src.len() && !src.is_char_boundary(p) {
        p += 1;
    }
    *pos = p;
}

fn peek(bytes: &[u8], base: usize, off: usize) -> u8 {
    *bytes.get(base + off).unwrap_or(&0)
}

fn next_token(src: &str, bytes: &[u8], pos: &mut usize) -> TokenKind {
    let b = bytes[*pos];
    let at = |off: usize| -> u8 { peek(bytes, *pos, off) };

    if b.is_ascii_whitespace() {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
        return TokenKind::Whitespace;
    }

    if b == b'/' && at(1) == b'/' {
        while *pos < bytes.len() && bytes[*pos] != b'\n' {
            *pos += 1;
        }
        return TokenKind::LineComment;
    }

    if b == b'/' && at(1) == b'*' {
        *pos += 2;
        let mut depth = 1usize;
        while *pos < bytes.len() && depth > 0 {
            if bytes[*pos] == b'/' && peek(bytes, *pos, 1) == b'*' {
                depth += 1;
                *pos += 2;
            } else if bytes[*pos] == b'*' && peek(bytes, *pos, 1) == b'/' {
                depth -= 1;
                *pos += 2;
            } else {
                bump_char(src, pos);
            }
        }
        return TokenKind::BlockComment;
    }

    // Raw strings, byte strings, and raw identifiers share prefixes with
    // plain identifiers, so try their exact shapes before the ident rule:
    // r"…", r#"…"#, br"…", b"…", b'…', r#ident.
    if b == b'r' || b == b'b' {
        if let Some(kind) = lex_prefixed_literal(src, bytes, pos) {
            return kind;
        }
    }

    if is_ident_start(b) {
        while *pos < bytes.len() && is_ident_continue(bytes[*pos]) {
            *pos += 1;
        }
        return TokenKind::Ident;
    }

    if b.is_ascii_digit() {
        return lex_number(bytes, pos);
    }

    if b == b'"' {
        *pos += 1;
        lex_quoted_body(src, bytes, pos, b'"');
        return TokenKind::Str;
    }

    if b == b'\'' {
        return lex_quote(src, bytes, pos);
    }

    // Single punctuation byte — also the catch-all for anything
    // unrecognised, so the lexer is total. Multi-byte chars that land
    // here (e.g. stray non-ASCII punctuation) advance a full char to
    // keep spans on UTF-8 boundaries.
    bump_char(src, pos);
    TokenKind::Punct
}

/// `r`/`b`-prefixed literal starting at `*pos`, or `None` if this is
/// just an identifier that happens to start with `r`/`b`.
fn lex_prefixed_literal(src: &str, bytes: &[u8], pos: &mut usize) -> Option<TokenKind> {
    let start = *pos;
    let at = |off: usize| -> u8 { peek(bytes, start, off) };
    let b = bytes[start];

    // b'…' byte literal.
    if b == b'b' && at(1) == b'\'' {
        *pos += 1; // consume `b`; lex_quote handles the rest
        let kind = lex_quote(src, bytes, pos);
        return Some(match kind {
            TokenKind::Char => TokenKind::Byte,
            // `b'static` is not real Rust; still lex it as something.
            other => other,
        });
    }

    // b"…" byte string.
    if b == b'b' && at(1) == b'"' {
        *pos += 2;
        lex_quoted_body(src, bytes, pos, b'"');
        return Some(TokenKind::ByteStr);
    }

    // r"…" / r#"…"# / br"…" / br#"…"# raw (byte) strings, and r#ident.
    let (prefix_len, raw_kind) = if b == b'r' {
        (1, TokenKind::RawStr)
    } else if b == b'b' && at(1) == b'r' {
        (2, TokenKind::RawByteStr)
    } else {
        return None;
    };
    let mut hashes = 0usize;
    while at(prefix_len + hashes) == b'#' {
        hashes += 1;
    }
    let quote_off = prefix_len + hashes;
    if at(quote_off) == b'"' {
        *pos += quote_off + 1;
        // Scan for `"` followed by `hashes` hash marks.
        'scan: while *pos < bytes.len() {
            if bytes[*pos] == b'"' {
                for h in 0..hashes {
                    if *bytes.get(*pos + 1 + h).unwrap_or(&0) != b'#' {
                        bump_char(src, pos);
                        continue 'scan;
                    }
                }
                *pos += 1 + hashes;
                return Some(raw_kind);
            }
            bump_char(src, pos);
        }
        return Some(raw_kind); // unterminated: runs to EOF
    }
    // `r#ident` raw identifier (exactly one `#`, then ident start).
    if b == b'r' && hashes == 1 && is_ident_start(at(2)) {
        *pos += 2;
        while *pos < bytes.len() && is_ident_continue(bytes[*pos]) {
            *pos += 1;
        }
        return Some(TokenKind::Ident);
    }
    None
}

/// Body of a `"`- or `'`-delimited literal: consume escapes blindly,
/// stop after the closing delimiter or at EOF.
fn lex_quoted_body(src: &str, bytes: &[u8], pos: &mut usize, close: u8) {
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'\\' => {
                *pos += 1;
                if *pos < bytes.len() {
                    bump_char(src, pos);
                }
            }
            b if b == close => {
                *pos += 1;
                return;
            }
            _ => bump_char(src, pos),
        }
    }
}

/// A `'` token: char literal or lifetime. `'x'` / `'\n'` are chars;
/// `'ident` not followed by a closing quote is a lifetime.
fn lex_quote(src: &str, bytes: &[u8], pos: &mut usize) -> TokenKind {
    let start = *pos;
    let at = |off: usize| -> u8 { peek(bytes, start, off) };
    debug_assert_eq!(bytes[start], b'\'');
    if at(1) == b'\\' {
        // Escape ⇒ definitely a char literal.
        *pos += 1;
        lex_quoted_body(src, bytes, pos, b'\'');
        return TokenKind::Char;
    }
    if is_ident_start(at(1)) {
        // `'a'` is a char; `'a` (no closing quote after one ident char,
        // or more ident chars follow) is a lifetime.
        let mut probe = *pos + 1;
        bump_char(src, &mut probe);
        if *bytes.get(probe).unwrap_or(&0) == b'\'' {
            *pos = probe + 1;
            return TokenKind::Char;
        }
        *pos += 1;
        while *pos < bytes.len() && is_ident_continue(bytes[*pos]) {
            *pos += 1;
        }
        return TokenKind::Lifetime;
    }
    if at(1) != 0 && at(1) != b'\'' {
        // Non-ident single char: `'+'` etc.
        let mut probe = *pos + 1;
        bump_char(src, &mut probe);
        if *bytes.get(probe).unwrap_or(&0) == b'\'' {
            *pos = probe + 1;
            return TokenKind::Char;
        }
    }
    // Lone `'` (or `''`): emit the quote as punctuation.
    *pos += 1;
    TokenKind::Punct
}

fn lex_number(bytes: &[u8], pos: &mut usize) -> TokenKind {
    let mut float = false;
    if bytes[*pos] == b'0' && matches!(peek(bytes, *pos, 1), b'x' | b'o' | b'b') {
        *pos += 2;
        while *pos < bytes.len() && (bytes[*pos].is_ascii_alphanumeric() || bytes[*pos] == b'_') {
            *pos += 1;
        }
        return TokenKind::Int;
    }
    let digits = |pos: &mut usize| {
        while *pos < bytes.len() && (bytes[*pos].is_ascii_digit() || bytes[*pos] == b'_') {
            *pos += 1;
        }
    };
    digits(pos);
    // Fractional part: `.` must be followed by a digit (so `1.max(2)`
    // and `0..n` lex the dot separately).
    if peek(bytes, *pos, 0) == b'.' && peek(bytes, *pos, 1).is_ascii_digit() {
        *pos += 1;
        digits(pos);
        float = true;
    }
    // Exponent: `e`/`E`, optional sign, digits.
    let (e0, e1, e2) = (
        peek(bytes, *pos, 0),
        peek(bytes, *pos, 1),
        peek(bytes, *pos, 2),
    );
    if matches!(e0, b'e' | b'E')
        && (e1.is_ascii_digit() || (matches!(e1, b'+' | b'-') && e2.is_ascii_digit()))
    {
        *pos += if e1.is_ascii_digit() { 2 } else { 3 };
        digits(pos);
        float = true;
    }
    // Suffix (`u32`, `f64`, …) folds into the literal token.
    if is_ident_start(peek(bytes, *pos, 0)) {
        if peek(bytes, *pos, 0) == b'f' {
            float = true;
        }
        while *pos < bytes.len() && is_ident_continue(bytes[*pos]) {
            *pos += 1;
        }
    }
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn spans_tile_input() {
        let src = "fn main() { let s = r#\"x\"#; /* a /* b */ c */ 'x' }";
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "gap before {t:?}");
            assert!(t.end > t.start);
            pos = t.end;
        }
        assert_eq!(pos, src.len());
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let k = kinds(r##"let a = r"x"; let b = r#"y " y"#; let r#match = 1;"##);
        assert!(k.contains(&(TokenKind::RawStr, r#"r"x""#)));
        assert!(k.contains(&(TokenKind::RawStr, r###"r#"y " y"#"###)));
        assert!(k.contains(&(TokenKind::Ident, "r#match")));
    }

    #[test]
    fn byte_literals() {
        let k = kinds(r##"b'x' b"hi" br#"raw"# b'\n'"##);
        assert_eq!(k[0].0, TokenKind::Byte);
        assert_eq!(k[1].0, TokenKind::ByteStr);
        assert_eq!(k[2].0, TokenKind::RawByteStr);
        assert_eq!(k[3].0, TokenKind::Byte);
    }

    #[test]
    fn char_vs_lifetime() {
        let k = kinds("'a' 'a 'static '_ '\\'' '+'");
        assert_eq!(
            k.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![
                TokenKind::Char,
                TokenKind::Lifetime,
                TokenKind::Lifetime,
                TokenKind::Lifetime,
                TokenKind::Char,
                TokenKind::Char,
            ]
        );
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let src = "a /* x /* y */ z */ b";
        let k = kinds(src);
        assert_eq!(k, vec![(TokenKind::Ident, "a"), (TokenKind::Ident, "b")]);
    }

    #[test]
    fn comment_hides_code_from_lints() {
        let k = kinds("// x.unwrap()\n/* panic!(\"no\") */ real");
        assert_eq!(k, vec![(TokenKind::Ident, "real")]);
    }

    #[test]
    fn numbers() {
        let k = kinds("1 1.5 1e-10 0xffu8 1_000usize 2.0f32 1..2 3.max(4)");
        assert_eq!(k[0].0, TokenKind::Int);
        assert_eq!(k[1].0, TokenKind::Float);
        assert_eq!(k[2], (TokenKind::Float, "1e-10"));
        assert_eq!(k[3], (TokenKind::Int, "0xffu8"));
        assert_eq!(k[4], (TokenKind::Int, "1_000usize"));
        assert_eq!(k[5], (TokenKind::Float, "2.0f32"));
        // `1..2` is Int, Punct, Punct, Int.
        assert_eq!(k[6], (TokenKind::Int, "1"));
        assert_eq!(k[7], (TokenKind::Punct, "."));
        // `3.max(4)`: the dot is not part of the number.
        assert!(k.contains(&(TokenKind::Ident, "max")));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b\"", "1e", "r#"] {
            let toks = lex(src);
            assert_eq!(toks.last().map(|t| t.end), Some(src.len()), "{src:?}");
        }
    }
}
