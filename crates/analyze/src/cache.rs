//! The incremental diagnostic cache (`--cache <path>`).
//!
//! One JSONL file in the `fault::checkpoint` mold: a header line
//! identifying the format and the lint set, then one record per
//! analyzed file keyed by the FNV-1a hash of its *content*. A warm run
//! looks each file up by content hash and, on a hit, skips lexing,
//! parsing, and every per-file pass — the record already holds the
//! pre-waiver findings and the [`index::FileFacts`] the workspace
//! passes need. Waiver matching and the three workspace passes re-run
//! from facts on every run (they are cross-file and cheap), which is
//! what makes warm output byte-identical to cold: the cache stores
//! *inputs* to the reporting pipeline, never its final output, so an
//! `analyze.toml` edit changes behavior with no cache invalidation.
//!
//! Tolerance contract, same as `fault::checkpoint`: a missing file, a
//! garbage file, an unparseable line, or a torn final line (the
//! classic crash-mid-append shape) all degrade to cache misses, never
//! to errors — the cache can only make a run cheaper, not wronger. A
//! header from a different format version or lint set drops the whole
//! file. Saving rewrites the file via a same-directory temp + rename,
//! so a reader never observes a half-written cache.

use crate::diagnostics::Diagnostic;
use crate::index::{self, FileFacts};
use crate::lints::{static_lint_name, LINTS, WORKSPACE_PASSES};
use fault::{Error, Result};
use std::collections::BTreeMap;
use std::path::Path;
use telemetry::json::{self, JsonObject, Value};

/// Cache format version — bump on any record-shape change.
const FORMAT: u64 = 1;

/// FNV-1a 64-bit over raw file bytes, 16 hex digits. Content-keyed, so
/// `git checkout`, touch(1), and mtime skew cannot cause stale hits.
pub(crate) fn file_hash(text: &str) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    format!("{h:016x}")
}

/// Fingerprint of the lint set that produced the cached findings: a
/// cache written by an older analyzer (different passes) is useless.
fn lint_set_id() -> String {
    let names: Vec<&str> = LINTS
        .iter()
        .map(|(n, _)| *n)
        .chain(WORKSPACE_PASSES.iter().copied())
        .collect();
    file_hash(&names.join(","))
}

/// Everything a warm run needs for one unchanged file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedFile {
    /// FNV-1a content hash of the file this record describes.
    pub content_hash: String,
    /// Pre-waiver per-file findings, in emit order.
    pub findings: Vec<Diagnostic>,
    /// Cross-file facts for the workspace passes.
    pub facts: FileFacts,
}

/// An in-memory cache, keyed by workspace-relative path.
#[derive(Debug, Default)]
pub struct Cache {
    entries: BTreeMap<String, CachedFile>,
}

impl Cache {
    /// Load a cache from disk. Never fails: any unreadable or
    /// unrecognizable state is an empty cache.
    pub fn load(path: &Path) -> Cache {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Cache::default();
        };
        let mut lines = text.lines();
        let header_ok = lines
            .next()
            .and_then(|l| json::parse(l).ok())
            .map(|v| {
                v.get("type").and_then(Value::as_str) == Some("analyze-cache")
                    && v.get("format").and_then(Value::as_u64) == Some(FORMAT)
                    && v.get("lints").and_then(Value::as_str) == Some(lint_set_id().as_str())
            })
            .unwrap_or(false);
        if !header_ok {
            return Cache::default();
        }
        let mut entries = BTreeMap::new();
        for line in lines {
            // A torn final line (crash mid-write) or any other
            // unparseable record is skipped, not fatal.
            let Ok(v) = json::parse(line) else { continue };
            let Some((path, entry)) = record_from_json(&v) else {
                continue;
            };
            entries.insert(path, entry);
        }
        Cache { entries }
    }

    /// Look up a file by path + current content hash. `Some` only when
    /// the cached record was produced from byte-identical content.
    pub(crate) fn lookup(&self, path: &str, content_hash: &str) -> Option<&CachedFile> {
        self.entries
            .get(path)
            .filter(|e| e.content_hash == content_hash)
    }

    /// Insert (or replace) the record for `path`.
    pub fn insert(&mut self, path: String, entry: CachedFile) {
        self.entries.insert(path, entry);
    }

    /// Drop records for files no longer in the analyzed set, so the
    /// cache tracks the workspace instead of growing monotonically.
    pub(crate) fn retain_paths(&mut self, keep: &dyn Fn(&str) -> bool) {
        self.entries.retain(|p, _| keep(p));
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rewrite the cache file: header plus one record per file, in
    /// path order, via temp-file + rename so readers never see a torn
    /// header. I/O failure here is a real error — the caller asked for
    /// a cache and silently not writing one would fake warm runs.
    pub fn save(&self, path: &Path) -> Result<()> {
        let mut buf = String::new();
        buf.push_str(
            &JsonObject::new()
                .str("type", "analyze-cache")
                .uint("format", FORMAT)
                .str("lints", &lint_set_id())
                .finish(),
        );
        buf.push('\n');
        for (file_path, entry) in &self.entries {
            buf.push_str(&record_to_json(file_path, entry));
            buf.push('\n');
        }
        let tmp = path.with_extension("tmp");
        let name = |p: &Path| p.display().to_string();
        std::fs::write(&tmp, &buf).map_err(|e| Error::io(name(&tmp), e))?;
        std::fs::rename(&tmp, path).map_err(|e| Error::io(name(path), e))
    }
}

fn diag_to_json(d: &Diagnostic) -> String {
    JsonObject::new()
        .str("lint", d.lint)
        .usize("line", d.line)
        .usize("col", d.col)
        .usize("len", d.len)
        .str("message", &d.message)
        .str("excerpt", &d.excerpt)
        .finish()
}

fn diag_from_json(path: &str, v: &Value) -> Option<Diagnostic> {
    // The lint name must map back to the live registry's 'static str;
    // an unknown name means a foreign lint set and drops the record.
    let lint = static_lint_name(v.get("lint")?.as_str()?)?;
    Some(Diagnostic::from_parts(
        lint,
        path.to_string(),
        v.get("line")?.as_u64()? as usize,
        v.get("col")?.as_u64()? as usize,
        v.get("len")?.as_u64()? as usize,
        v.get("message")?.as_str()?.to_string(),
        v.get("excerpt")?.as_str()?.to_string(),
    ))
}

fn record_to_json(path: &str, e: &CachedFile) -> String {
    let mut findings = String::from("[");
    for (i, d) in e.findings.iter().enumerate() {
        if i > 0 {
            findings.push(',');
        }
        findings.push_str(&diag_to_json(d));
    }
    findings.push(']');
    JsonObject::new()
        .str("type", "file")
        .str("path", path)
        .str("hash", &e.content_hash)
        .raw("findings", &findings)
        .raw("facts", &index::facts_to_json(&e.facts))
        .finish()
}

fn record_from_json(v: &Value) -> Option<(String, CachedFile)> {
    if v.get("type")?.as_str()? != "file" {
        return None;
    }
    let path = v.get("path")?.as_str()?.to_string();
    let content_hash = v.get("hash")?.as_str()?.to_string();
    let findings_v = match v.get("findings")? {
        Value::Arr(items) => items,
        _ => return None,
    };
    let mut findings = Vec::with_capacity(findings_v.len());
    for fv in findings_v {
        findings.push(diag_from_json(&path, fv)?);
    }
    let facts = index::facts_from_json(&path, v.get("facts")?)?;
    Some((
        path,
        CachedFile {
            content_hash,
            findings,
            facts,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{extract_facts, role_of};
    use crate::source::SourceFile;

    fn entry(path: &str, src: &str) -> CachedFile {
        let file = SourceFile::new(path.into(), src.into());
        let tokens = crate::lexer::lex(&file.text);
        let findings = crate::analyze_source(&file, false);
        let facts = extract_facts(&file, &tokens, role_of(path));
        CachedFile {
            content_hash: file_hash(src),
            findings,
            facts,
        }
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = std::env::temp_dir().join("analyze-cache-roundtrip");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("cache.jsonl");
        let src = "pub fn f(n: usize) -> u32 {\n    n as u32\n}\n";
        let mut cache = Cache::default();
        cache.insert(
            "crates/x/src/lib.rs".into(),
            entry("crates/x/src/lib.rs", src),
        );
        cache.save(&path).expect("save");
        let back = Cache::load(&path);
        let hit = back
            .lookup("crates/x/src/lib.rs", &file_hash(src))
            .expect("content-hash hit");
        assert_eq!(hit.findings.len(), 1);
        assert_eq!(hit.findings[0].lint, "lossy-cast");
        assert_eq!(
            hit.findings[0].hash,
            crate::analyze_source(
                &SourceFile::new("crates/x/src/lib.rs".into(), src.into()),
                false
            )[0]
            .hash,
            "cached diagnostic reproduces the waiver-pinning hash exactly"
        );
        assert!(
            back.lookup("crates/x/src/lib.rs", &file_hash("changed"))
                .is_none(),
            "content change misses"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_garbage_and_torn_files_load_empty_or_partial() {
        let dir = std::env::temp_dir().join("analyze-cache-tolerance");
        std::fs::create_dir_all(&dir).expect("temp dir");

        assert!(
            Cache::load(&dir.join("nope.jsonl")).is_empty(),
            "missing file"
        );

        let garbage = dir.join("garbage.jsonl");
        std::fs::write(&garbage, "not json at all\n{]\n").expect("write");
        assert!(Cache::load(&garbage).is_empty(), "garbage file");

        // A valid header + record, then a torn final line: the intact
        // record must survive.
        let src = "pub fn f(n: usize) -> u32 {\n    n as u32\n}\n";
        let mut cache = Cache::default();
        cache.insert(
            "crates/x/src/lib.rs".into(),
            entry("crates/x/src/lib.rs", src),
        );
        let torn = dir.join("torn.jsonl");
        cache.save(&torn).expect("save");
        let mut text = std::fs::read_to_string(&torn).expect("read back");
        text.push_str("{\"type\":\"file\",\"path\":\"crates/y/src/l"); // torn mid-append
        std::fs::write(&torn, &text).expect("re-write");
        let back = Cache::load(&torn);
        assert_eq!(back.len(), 1, "intact record survives a torn tail");
        assert!(back
            .lookup("crates/x/src/lib.rs", &file_hash(src))
            .is_some());

        std::fs::remove_file(&garbage).ok();
        std::fs::remove_file(&torn).ok();
    }

    #[test]
    fn foreign_header_drops_the_cache() {
        let dir = std::env::temp_dir().join("analyze-cache-header");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("foreign.jsonl");
        let src = "pub fn f(n: usize) -> u32 {\n    n as u32\n}\n";
        let mut cache = Cache::default();
        cache.insert(
            "crates/x/src/lib.rs".into(),
            entry("crates/x/src/lib.rs", src),
        );
        cache.save(&path).expect("save");
        let text = std::fs::read_to_string(&path).expect("read");
        // Simulate a cache written by an analyzer with another lint set.
        let rewritten = text.replacen(&lint_set_id(), &file_hash("other-lints"), 1);
        std::fs::write(&path, rewritten).expect("write");
        assert!(
            Cache::load(&path).is_empty(),
            "foreign lint set is a full miss"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn retain_paths_drops_deleted_files() {
        let src = "pub fn f() {}\n";
        let mut cache = Cache::default();
        cache.insert(
            "crates/a/src/lib.rs".into(),
            entry("crates/a/src/lib.rs", src),
        );
        cache.insert(
            "crates/b/src/lib.rs".into(),
            entry("crates/b/src/lib.rs", src),
        );
        cache.retain_paths(&|p| p.starts_with("crates/a/"));
        assert_eq!(cache.len(), 1);
    }
}
