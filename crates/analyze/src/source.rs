//! Source-file model: text, path, line index, and excerpt rendering.

/// One loaded source file plus the precomputed line index the
/// diagnostics renderer and waiver hasher need.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across OSes,
    /// used verbatim in diagnostics and `analyze.toml` waivers).
    pub path: String,
    /// Full file contents.
    pub text: String,
    /// Byte offset of the start of each line (line 1 is `starts[0]`).
    line_starts: Vec<usize>,
}

impl SourceFile {
    pub fn new(path: String, text: String) -> SourceFile {
        let mut line_starts = vec![0];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceFile {
            path,
            text,
            line_starts,
        }
    }

    /// 1-based `(line, column)` for a byte offset. Columns count bytes,
    /// matching what editors and `rustc` report for ASCII source.
    pub(crate) fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// The full text of a 1-based line, without its trailing newline.
    pub fn line_text(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|&e| e - 1)
            .unwrap_or(self.text.len());
        self.text[start..end.max(start)].trim_end_matches('\r')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_round_trips() {
        let f = SourceFile::new("x.rs".into(), "ab\ncde\n\nf".into());
        assert_eq!(f.line_col(0), (1, 1));
        assert_eq!(f.line_col(1), (1, 2));
        assert_eq!(f.line_col(3), (2, 1));
        assert_eq!(f.line_col(5), (2, 3));
        assert_eq!(f.line_col(7), (3, 1));
        assert_eq!(f.line_col(8), (4, 1));
        assert_eq!(f.line_text(1), "ab");
        assert_eq!(f.line_text(2), "cde");
        assert_eq!(f.line_text(3), "");
        assert_eq!(f.line_text(4), "f");
    }
}
