//! `--fix` — mechanical rewrites for the two lints whose fix is
//! unambiguous.
//!
//! * `float-order`: `partial_cmp` → `total_cmp`, and when the call is
//!   the usual `.partial_cmp(&b).unwrap()` / `.expect("…")` idiom the
//!   trailing panic call is deleted too (`total_cmp` returns
//!   `Ordering`, not `Option`).
//! * `bare-assert`: a message-less `assert!`/`assert_eq!`/`assert_ne!`
//!   gains `, "invariant violated: <condition>"` — the condition text
//!   itself, condensed, so the panic names what broke without a human
//!   inventing prose.
//!
//! Sites under a *valid* waiver are left alone: the waiver documents a
//! reviewed decision to keep the code as-is, and rewriting it would
//! strand the waiver as stale. Fixing is idempotent by construction —
//! a fixed site no longer matches its lint's detector — and the test
//! suite pins that by re-running the analyzer over fixer output.

use crate::diagnostics::Diagnostic;
use crate::lexer::{self, TokenKind};
use crate::lints::FileCx;
use crate::source::SourceFile;
use crate::waiver::Waiver;
use fault::{Error, Result};
use std::path::{Path, PathBuf};

/// What a fix run did.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct FixSummary {
    /// Files rewritten on disk.
    pub files_changed: usize,
    /// Individual sites fixed.
    pub fixes: usize,
}

/// One byte-span rewrite inside a file.
struct Edit {
    start: usize,
    end: usize,
    replacement: String,
}

/// Apply the mechanical fixes to `files` (absolute paths under
/// `root`), skipping sites excused by a valid waiver. Returns what
/// changed; files without fixable sites are untouched.
pub fn fix_files(root: &Path, files: &[PathBuf], waivers: &[Waiver]) -> Result<FixSummary> {
    let mut summary = FixSummary::default();
    for path in files {
        let text =
            std::fs::read_to_string(path).map_err(|e| Error::io(path.display().to_string(), e))?;
        let rel = crate::relative_path(root, path);
        let is_main = rel.ends_with("src/main.rs") || rel.contains("src/bin/");
        let file = SourceFile::new(rel, text);
        let (fixed, n) = fix_source(&file, is_main, waivers);
        if n == 0 {
            continue;
        }
        std::fs::write(path, fixed).map_err(|e| Error::io(path.display().to_string(), e))?;
        summary.files_changed += 1;
        summary.fixes += n;
    }
    Ok(summary)
}

/// Fix one in-memory file; returns the rewritten text and fix count.
/// The building block `fix_files` and the idempotence tests share.
pub(crate) fn fix_source(file: &SourceFile, is_main: bool, waivers: &[Waiver]) -> (String, usize) {
    let edits = plan_edits(file, is_main, waivers);
    let n = edits.len();
    (apply_edits(&file.text, &edits), n)
}

fn plan_edits(file: &SourceFile, is_main: bool, waivers: &[Waiver]) -> Vec<Edit> {
    let tokens = lexer::lex(&file.text);
    let cx = FileCx::new(file, &tokens, is_main);
    let mut edits = Vec::new();
    plan_float_order(&cx, waivers, &mut edits);
    plan_bare_assert(&cx, waivers, &mut edits);
    // Reverse span order, so earlier edits' offsets stay valid.
    edits.sort_by_key(|e| std::cmp::Reverse(e.start));
    edits
}

/// Is this site excused by a valid (hash-matching) waiver? Mirrors the
/// driver's waiver matching: same lint, path, line, agreeing hash.
fn waived(cx: &FileCx<'_>, waivers: &[Waiver], lint: &'static str, from: usize, to: usize) -> bool {
    let start = cx.code[from].start;
    let end = cx.code[to.min(cx.code.len() - 1)].end;
    let d = Diagnostic::new(
        lint,
        cx.file,
        start,
        end.saturating_sub(start),
        String::new(),
    );
    waivers
        .iter()
        .any(|w| w.lint == d.lint && w.path == d.path && w.line == d.line && w.hash == d.hash)
}

fn plan_float_order(cx: &FileCx<'_>, waivers: &[Waiver], edits: &mut Vec<Edit>) {
    for i in 0..cx.code.len() {
        // Mirror of float_order::check's detector.
        if cx.in_test(i) || cx.kind(i) != TokenKind::Ident || cx.text(i) != "partial_cmp" {
            continue;
        }
        if i > 0 && cx.is(i - 1, "fn") {
            continue;
        }
        if waived(cx, waivers, "float-order", i, i) {
            continue;
        }
        edits.push(Edit {
            start: cx.code[i].start,
            end: cx.code[i].end,
            replacement: "total_cmp".into(),
        });
        // `.partial_cmp(&b).unwrap()` / `.expect("…")`: the Option
        // unwrapping dies with the Option.
        if !cx.is(i + 1, "(") {
            continue;
        }
        let Some(close) = cx.matching_close(i + 1) else {
            continue;
        };
        let tail_end = if cx.is(close + 1, ".")
            && cx.is(close + 2, "unwrap")
            && cx.is(close + 3, "(")
            && cx.is(close + 4, ")")
        {
            Some(close + 4)
        } else if cx.is(close + 1, ".")
            && cx.is(close + 2, "expect")
            && cx.is(close + 3, "(")
            && close + 4 < cx.code.len()
            && matches!(cx.kind(close + 4), TokenKind::Str | TokenKind::RawStr)
            && cx.is(close + 5, ")")
        {
            Some(close + 5)
        } else {
            None
        };
        if let Some(last) = tail_end {
            edits.push(Edit {
                start: cx.code[close].end,
                end: cx.code[last].end,
                replacement: String::new(),
            });
        }
    }
}

fn plan_bare_assert(cx: &FileCx<'_>, waivers: &[Waiver], edits: &mut Vec<Edit>) {
    for i in 0..cx.code.len() {
        // Mirror of bare_assert::check's detector.
        if cx.in_test(i) || cx.kind(i) != TokenKind::Ident {
            continue;
        }
        if !matches!(cx.text(i), "assert" | "assert_eq" | "assert_ne") {
            continue;
        }
        if !cx.is(i + 1, "!") {
            continue;
        }
        let open = i + 2;
        if open >= cx.code.len() || !matches!(cx.text(open), "(" | "[" | "{") {
            continue;
        }
        let Some(close) = cx.matching_close(open) else {
            continue;
        };
        let has_message = (open + 1..close).any(|j| {
            matches!(cx.kind(j), TokenKind::Str | TokenKind::RawStr)
                && cx.text(j).contains(|c: char| c.is_alphanumeric())
        });
        if has_message || close == open + 1 {
            continue; // messaged, or degenerate `assert!()`
        }
        if waived(cx, waivers, "bare-assert", i, i + 1) {
            continue;
        }
        let condition = &cx.file.text[cx.code[open].end..cx.code[close].start];
        edits.push(Edit {
            start: cx.code[close].start,
            end: cx.code[close].start,
            replacement: format!(", \"invariant violated: {}\"", condense(condition)),
        });
    }
}

/// Collapse a condition expression into a short, string-literal-safe
/// description: whitespace squeezed, quotes/backslashes escaped,
/// truncated on a char boundary.
fn condense(condition: &str) -> String {
    let collapsed: Vec<&str> = condition.split_whitespace().collect();
    let mut s = collapsed.join(" ");
    const MAX: usize = 60;
    if s.chars().count() > MAX {
        s = s.chars().take(MAX).collect::<String>() + "...";
    }
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn apply_edits(text: &str, edits: &[Edit]) -> String {
    let mut out = text.to_string();
    // Edits arrive in reverse span order; replace back-to-front.
    for e in edits {
        out.replace_range(e.start..e.end, &e.replacement);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_file(text: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs".into(), text.into())
    }

    #[test]
    fn float_order_rewrites_and_drops_unwrap() {
        let src = "\
pub fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs.sort_by(|a, b| a.partial_cmp(b).expect(\"not NaN\"));
    xs.sort_by(f64::total_cmp);
}
";
        let (fixed, n) = fix_source(&lib_file(src), false, &[]);
        assert_eq!(n, 4, "two renames + two tail deletions");
        assert!(fixed.contains("a.total_cmp(b));"), "{fixed}");
        assert!(!fixed.contains("partial_cmp"), "{fixed}");
        assert!(!fixed.contains("unwrap"), "{fixed}");
        assert!(!fixed.contains("expect"), "{fixed}");
    }

    #[test]
    fn bare_assert_gains_an_invariant_message() {
        let src = "\
pub fn f(n: usize, m: usize) {
    assert!(n > 0);
    assert_eq!(n, m);
    assert!(n < 10, \"n = {n} out of range\");
}
";
        let (fixed, n) = fix_source(&lib_file(src), false, &[]);
        assert_eq!(n, 2, "messaged assert untouched");
        assert!(
            fixed.contains("assert!(n > 0, \"invariant violated: n > 0\");"),
            "{fixed}"
        );
        assert!(
            fixed.contains("assert_eq!(n, m, \"invariant violated: n, m\");"),
            "{fixed}"
        );
    }

    #[test]
    fn fixing_is_idempotent_and_silences_the_lints() {
        let src = "\
pub fn f(xs: &mut [f64], n: usize) {
    assert!(n > 0);
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
";
        let (fixed, n1) = fix_source(&lib_file(src), false, &[]);
        assert!(n1 > 0);
        let (fixed2, n2) = fix_source(&lib_file(&fixed), false, &[]);
        assert_eq!(n2, 0, "second pass finds nothing");
        assert_eq!(fixed, fixed2);
        // The analyzer agrees: its own output is clean for these lints.
        let diags = crate::analyze_source(&lib_file(&fixed), false);
        assert!(
            diags
                .iter()
                .all(|d| d.lint != "float-order" && d.lint != "bare-assert"),
            "{diags:?}"
        );
    }

    #[test]
    fn waived_sites_are_left_alone() {
        let src = "pub fn f(a: &u32, b: &u32) -> std::cmp::Ordering {\n    a.partial_cmp(b).unwrap()\n}\n";
        let file = lib_file(src);
        let d = crate::analyze_source(&file, false)
            .into_iter()
            .find(|d| d.lint == "float-order")
            .expect("detector fires");
        let w = Waiver {
            lint: "float-order".into(),
            path: d.path.clone(),
            line: d.line,
            hash: d.hash.clone(),
            reason: "u32 ordering is total; partial_cmp is fine here".into(),
            defined_at: 1,
        };
        let (fixed, n) = fix_source(&file, false, &[w]);
        assert_eq!(n, 0, "valid waiver suppresses the fix");
        assert_eq!(fixed, src);
    }

    #[test]
    fn test_regions_are_exempt_from_fixing() {
        let src = "\
pub fn f() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        assert!(1 + 1 == 2);
    }
}
";
        let (fixed, n) = fix_source(&lib_file(src), false, &[]);
        assert_eq!(n, 0);
        assert_eq!(fixed, src);
    }

    #[test]
    fn condense_escapes_and_truncates() {
        assert_eq!(condense("a  ==\n    b"), "a == b");
        assert_eq!(condense("s != \"x\""), "s != \\\"x\\\"");
        let long = "x".repeat(100);
        let c = condense(&long);
        assert!(c.ends_with("..."));
        assert!(c.len() <= 64);
    }
}
