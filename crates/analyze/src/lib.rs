//! `analyze` — perfpredict's workspace-native static-analysis engine.
//!
//! PRs 2–4 bought three hard invariants: no panicking escape hatches in
//! library code (everything fallible returns the typed `fault::Error`),
//! deterministic numerics (total float orderings, byte-identical serve
//! output for any worker count), and no silent narrowing casts. This
//! crate is what *enforces* them. It replaces the comment-blind,
//! single-line awk heuristic in `scripts/lint-unwrap.sh` with a real
//! lexer ([`lexer`]: raw strings, nested block comments, char vs.
//! lifetime disambiguation, spans that exactly tile the input) plus
//! `#[cfg(test)]` region tracking ([`regions`]), and runs seven lint
//! passes over the token stream ([`lints`]):
//!
//! | lint | invariant |
//! |---|---|
//! | `panic-policy` | no `unwrap`/`panic!`/`todo!`/`unimplemented!`/undocumented `expect` in library code |
//! | `bare-assert` | library asserts name the violated invariant (multi-line aware) |
//! | `float-order` | `total_cmp`, never `partial_cmp`, on floats |
//! | `nondet-iter` | hash-map iteration order never reaches output or accumulation |
//! | `lossy-cast` | truncating `as` casts are typed away or argued safe |
//! | `error-policy` | exits only in `src/main.rs`; public fallible fns return `fault::Error` |
//! | `unsafe-region` | every `unsafe` region carries a `// SAFETY:` comment and a per-site waiver |
//!
//! Findings render as `file:line:col` diagnostics with a source excerpt,
//! or as JSONL (`--format json`) in the telemetry-manifest line shape.
//! Deliberate exceptions live in `analyze.toml` ([`waiver`]): each entry
//! carries a one-line justification and the flagged line's content hash,
//! so a waiver goes stale — and fails the run — the moment the code
//! under it changes. The analyzer is self-hosting: CI runs it over this
//! workspace (including this crate) with zero unwaived findings.

pub mod diagnostics;
pub mod lexer;
pub mod lints;
pub mod regions;
pub mod source;
pub mod waiver;
pub mod walk;

use diagnostics::Diagnostic;
use fault::{Error, Result};
use lints::{FileCx, LINTS};
use source::SourceFile;
use std::path::{Path, PathBuf};
use waiver::Waiver;

/// Outcome of analyzing a set of files.
pub struct Report {
    /// Unwaived findings plus stale-waiver diagnostics, in file order.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings suppressed by a valid waiver.
    pub waived: usize,
    /// Files scanned.
    pub files: usize,
}

impl Report {
    /// True when nothing is wrong: no findings, no stale waivers.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Run every lint pass over one in-memory file. The building block for
/// both the driver and the fixture tests.
pub fn analyze_source(file: &SourceFile, is_main: bool) -> Vec<Diagnostic> {
    let tokens = lexer::lex(&file.text);
    let cx = FileCx::new(file, &tokens, is_main);
    let mut out = Vec::new();
    for (_, pass) in LINTS {
        pass(&cx, &mut out);
    }
    out.sort_by_key(|d| (d.line, d.col));
    out
}

/// Analyze `files` (paths under `root`), applying `waivers`.
///
/// Waiver semantics: a waiver matches every finding with the same
/// `(lint, path, line)` whose content hash agrees. A hash mismatch or
/// a waiver matching no finding is *stale* and produces a
/// `stale-waiver` diagnostic — both directions fail, so waivers track
/// the code they excuse or die.
pub fn analyze_files(root: &Path, files: &[PathBuf], waivers: &[Waiver]) -> Result<Report> {
    let mut diagnostics = Vec::new();
    let mut waived = 0usize;
    let mut used = vec![false; waivers.len()];
    for path in files {
        let text =
            std::fs::read_to_string(path).map_err(|e| Error::io(path.display().to_string(), e))?;
        let rel = relative_path(root, path);
        // Binary entry points (src/main.rs and src/bin/*.rs) own their
        // process and may call `std::process::exit`.
        let is_main = rel.ends_with("src/main.rs") || rel.contains("src/bin/");
        let file = SourceFile::new(rel, text);
        for d in analyze_source(&file, is_main) {
            match match_waiver(waivers, &d) {
                WaiverMatch::Valid(i) => {
                    used[i] = true;
                    waived += 1;
                }
                WaiverMatch::Stale(i) => {
                    used[i] = true; // stale, but reported as such below
                    diagnostics.push(stale_waiver_diag(
                        &waivers[i],
                        format!(
                            "waiver hash {} no longer matches the code at {}:{} (now {}) — \
                             the line changed; re-justify or fix the finding",
                            waivers[i].hash, d.path, d.line, d.hash
                        ),
                    ));
                    diagnostics.push(d);
                }
                WaiverMatch::None => diagnostics.push(d),
            }
        }
    }
    for (i, w) in waivers.iter().enumerate() {
        if !used[i] {
            diagnostics.push(stale_waiver_diag(
                w,
                format!(
                    "waiver matches no finding ({} at {}:{}) — the code it excused moved or \
                     was fixed; delete the entry",
                    w.lint, w.path, w.line
                ),
            ));
        }
    }
    Ok(Report {
        diagnostics,
        waived,
        files: files.len(),
    })
}

/// Convenience: discover the workspace's lint roots under `root`, load
/// `<root>/analyze.toml` if present, and analyze everything.
pub fn analyze_workspace(root: &Path) -> Result<Report> {
    let files = walk::workspace_files(root)?;
    let waiver_path = root.join("analyze.toml");
    let waivers = if waiver_path.is_file() {
        let text = std::fs::read_to_string(&waiver_path)
            .map_err(|e| Error::io(waiver_path.display().to_string(), e))?;
        waiver::parse(&text, "analyze.toml")?
    } else {
        Vec::new()
    };
    analyze_files(root, &files, &waivers)
}

enum WaiverMatch {
    Valid(usize),
    Stale(usize),
    None,
}

fn match_waiver(waivers: &[Waiver], d: &Diagnostic) -> WaiverMatch {
    for (i, w) in waivers.iter().enumerate() {
        if w.lint == d.lint && w.path == d.path && w.line == d.line {
            return if w.hash == d.hash {
                WaiverMatch::Valid(i)
            } else {
                WaiverMatch::Stale(i)
            };
        }
    }
    WaiverMatch::None
}

fn stale_waiver_diag(w: &Waiver, message: String) -> Diagnostic {
    Diagnostic {
        lint: "stale-waiver",
        path: "analyze.toml".into(),
        line: w.defined_at,
        col: 1,
        len: 10, // the `[[waiver]]` header
        message,
        excerpt: "[[waiver]]".into(),
        hash: w.hash.clone(),
    }
}

/// Workspace-relative path with `/` separators.
fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut out = String::new();
    for comp in rel.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(&comp.as_os_str().to_string_lossy());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_file(text: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs".into(), text.into())
    }

    #[test]
    fn passes_compose_over_one_file() {
        let src = "\
pub fn f(m: &std::collections::HashMap<u32, f64>, n: usize) -> f64 {
    let k = n as u32;
    for (_, v) in m {
        assert!(*v > 0.0);
    }
    k as f64
}
";
        let out = analyze_source(&lib_file(src), false);
        let lints: Vec<&str> = out.iter().map(|d| d.lint).collect();
        assert!(lints.contains(&"lossy-cast"), "{lints:?}");
        assert!(lints.contains(&"nondet-iter"), "{lints:?}");
        assert!(lints.contains(&"bare-assert"), "{lints:?}");
    }

    #[test]
    fn waiver_matching_is_hash_pinned() {
        let src = "pub fn f(n: usize) -> u32 {\n    n as u32\n}\n";
        let file = lib_file(src);
        let d = &analyze_source(&file, false)[0];
        let good = Waiver {
            lint: "lossy-cast".into(),
            path: d.path.clone(),
            line: d.line,
            hash: d.hash.clone(),
            reason: "test".into(),
            defined_at: 1,
        };
        assert!(matches!(
            match_waiver(std::slice::from_ref(&good), d),
            WaiverMatch::Valid(0)
        ));
        let stale = Waiver {
            hash: "0000000000000000".into(),
            ..good
        };
        assert!(matches!(match_waiver(&[stale], d), WaiverMatch::Stale(0)));
    }
}
