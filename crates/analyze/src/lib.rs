//! `analyze` — perfpredict's workspace-native static-analysis engine.
//!
//! PRs 2–4 bought three hard invariants: no panicking escape hatches in
//! library code (everything fallible returns the typed `fault::Error`),
//! deterministic numerics (total float orderings, byte-identical serve
//! output for any worker count), and no silent narrowing casts. This
//! crate is what *enforces* them. It replaces the comment-blind,
//! single-line awk heuristic in `scripts/lint-unwrap.sh` with a real
//! lexer ([`lexer`]: raw strings, nested block comments, char vs.
//! lifetime disambiguation, spans that exactly tile the input) plus
//! `#[cfg(test)]` region tracking ([`regions`]), and runs seven lint
//! passes over the token stream ([`lints`]):
//!
//! | lint | invariant |
//! |---|---|
//! | `panic-policy` | no `unwrap`/`panic!`/`todo!`/`unimplemented!`/undocumented `expect` in library code |
//! | `bare-assert` | library asserts name the violated invariant (multi-line aware) |
//! | `float-order` | `total_cmp`, never `partial_cmp`, on floats |
//! | `nondet-iter` | hash-map iteration order never reaches output or accumulation |
//! | `lossy-cast` | truncating `as` casts are typed away or argued safe |
//! | `error-policy` | exits only in `src/main.rs`; public fallible fns return `fault::Error` |
//! | `unsafe-region` | every `unsafe` region carries a `// SAFETY:` comment and a per-site waiver |
//!
//! Findings render as `file:line:col` diagnostics with a source excerpt,
//! or as JSONL (`--format json`) in the telemetry-manifest line shape.
//! Deliberate exceptions live in `analyze.toml` ([`waiver`]): each entry
//! carries a one-line justification and the flagged line's content hash,
//! so a waiver goes stale — and fails the run — the moment the code
//! under it changes. The analyzer is self-hosting: CI runs it over this
//! workspace (including this crate) with zero unwaived findings.

pub mod cache;
pub mod diagnostics;
pub mod fix;
pub mod index;
pub mod lexer;
pub mod lints;
pub mod regions;
pub mod source;
pub mod syntax;
pub mod waiver;
pub mod walk;

use cache::{Cache, CachedFile};
use diagnostics::Diagnostic;
use fault::{Error, Result};
use index::{FileFacts, FileRole};
use lints::{FileCx, LINTS};
use source::SourceFile;
use std::path::{Path, PathBuf};
use waiver::{Config, Waiver};

/// Knobs for a workspace analysis run.
#[derive(Debug, Default)]
pub struct AnalyzeOptions {
    /// Diagnostic cache path (`--cache`). `None` disables caching.
    pub cache_path: Option<PathBuf>,
}

/// Outcome of analyzing a set of files.
pub struct Report {
    /// Unwaived findings plus stale-waiver diagnostics, sorted by
    /// (path, line, col, lint); stale-waiver entries follow.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings suppressed by a valid waiver (count; `--show-waived`
    /// renders [`waived_diagnostics`](Self::waived_diagnostics)).
    pub waived: usize,
    /// The suppressed findings themselves, same sort order.
    pub waived_diagnostics: Vec<Diagnostic>,
    /// Files scanned (lintable files; reference files not included).
    pub files: usize,
    /// Files served from the diagnostic cache this run.
    pub cache_hits: usize,
    /// Files lexed/parsed/analyzed from scratch this run.
    pub cache_misses: usize,
}

impl Report {
    /// True when nothing is wrong: no findings, no stale waivers.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Run every lint pass over one in-memory file. The building block for
/// both the driver and the fixture tests.
pub fn analyze_source(file: &SourceFile, is_main: bool) -> Vec<Diagnostic> {
    let tokens = lexer::lex(&file.text);
    let cx = FileCx::new(file, &tokens, is_main);
    let mut out = Vec::new();
    for (_, pass) in LINTS {
        pass(&cx, &mut out);
    }
    out.sort_by_key(|d| (d.line, d.col));
    out
}

/// Analyze `files` (paths under `root`), applying `waivers`. Explicit
/// file lists run the seven per-file passes only — the three workspace
/// passes need the whole file set and run in
/// [`analyze_workspace_with`].
///
/// Waiver semantics: a waiver matches every finding with the same
/// `(lint, path, line)` whose content hash agrees. A hash mismatch or
/// a waiver matching no finding is *stale* and produces a
/// `stale-waiver` diagnostic — both directions fail, so waivers track
/// the code they excuse or die.
pub fn analyze_files(root: &Path, files: &[PathBuf], waivers: &[Waiver]) -> Result<Report> {
    let mut findings = Vec::new();
    for path in files {
        let text =
            std::fs::read_to_string(path).map_err(|e| Error::io(path.display().to_string(), e))?;
        let rel = relative_path(root, path);
        // Binary entry points (src/main.rs and src/bin/*.rs) own their
        // process and may call `std::process::exit`.
        let is_main = rel.ends_with("src/main.rs") || rel.contains("src/bin/");
        let file = SourceFile::new(rel, text);
        findings.extend(analyze_source(&file, is_main));
    }
    let mut report = apply_waivers(findings, waivers);
    report.files = files.len();
    Ok(report)
}

/// Convenience: discover the workspace's lint roots under `root`, load
/// `<root>/analyze.toml` if present, and analyze everything — all ten
/// passes, no cache.
pub fn analyze_workspace(root: &Path) -> Result<Report> {
    analyze_workspace_with(root, &AnalyzeOptions::default())
}

/// The full workspace pipeline: per-file lints + fact extraction over
/// the lintable set, fact-only extraction over the reference set
/// (tests/benches/examples), the three cross-file passes, waiver
/// matching, and — when [`AnalyzeOptions::cache_path`] is set — the
/// incremental diagnostic cache.
///
/// The cache stores *pre-waiver* findings and facts keyed by file
/// content hash; waiver matching and the workspace passes re-run from
/// facts every time. That split is what guarantees a warm run's output
/// is byte-identical to a cold run: cached or not, the reporting
/// pipeline sees the same inputs.
pub fn analyze_workspace_with(root: &Path, options: &AnalyzeOptions) -> Result<Report> {
    let files = walk::workspace_files(root)?;
    let ref_files = walk::reference_files(root)?;
    let config = load_config(root)?;

    let mut cache = match &options.cache_path {
        Some(p) => Cache::load(p),
        None => Cache::default(),
    };
    let (mut hits, mut misses) = (0usize, 0usize);
    let mut findings: Vec<Diagnostic> = Vec::new();
    let mut facts: Vec<FileFacts> = Vec::new();
    let mut live_paths: Vec<String> = Vec::new();

    for path in files.iter().chain(ref_files.iter()) {
        let text =
            std::fs::read_to_string(path).map_err(|e| Error::io(path.display().to_string(), e))?;
        let rel = relative_path(root, path);
        let role = index::role_of(&rel);
        let content_hash = cache::file_hash(&text);
        live_paths.push(rel.clone());
        if let Some(entry) = cache.lookup(&rel, &content_hash) {
            hits += 1;
            findings.extend(entry.findings.iter().cloned());
            facts.push(entry.facts.clone());
            continue;
        }
        misses += 1;
        let file = SourceFile::new(rel.clone(), text);
        let tokens = lexer::lex(&file.text);
        // Reference files feed the index only; lint passes never see
        // them (harness code plays by looser rules).
        let file_findings = if role == FileRole::Reference {
            Vec::new()
        } else {
            let cx = FileCx::new(&file, &tokens, role == FileRole::Binary);
            let mut out = Vec::new();
            for (_, pass) in LINTS {
                pass(&cx, &mut out);
            }
            out.sort_by_key(|d| (d.line, d.col));
            out
        };
        let file_facts = index::extract_facts(&file, &tokens, role);
        findings.extend(file_findings.iter().cloned());
        facts.push(file_facts.clone());
        cache.insert(
            rel,
            CachedFile {
                content_hash,
                findings: file_findings,
                facts: file_facts,
            },
        );
    }

    findings.extend(index::check_workspace(&facts, &config.envs, "analyze.toml"));
    // One deterministic global order before waiver matching, so cold
    // and warm runs (and any cache state in between) render
    // byte-identically.
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.lint).cmp(&(&b.path, b.line, b.col, b.lint)));

    if let Some(p) = &options.cache_path {
        cache.retain_paths(&|path| live_paths.iter().any(|l| l == path));
        cache.save(p)?;
    }
    telemetry::counter_add("analyze.cache.hit", u64::try_from(hits).unwrap_or(u64::MAX));
    telemetry::counter_add(
        "analyze.cache.miss",
        u64::try_from(misses).unwrap_or(u64::MAX),
    );

    let mut report = apply_waivers(findings, &config.waivers);
    report.files = files.len();
    report.cache_hits = hits;
    report.cache_misses = misses;
    Ok(report)
}

/// Load `<root>/analyze.toml` (waivers + `[[env]]` registry), or an
/// empty config when the file does not exist.
pub fn load_config(root: &Path) -> Result<Config> {
    let path = root.join("analyze.toml");
    if !path.is_file() {
        return Ok(Config::default());
    }
    let text =
        std::fs::read_to_string(&path).map_err(|e| Error::io(path.display().to_string(), e))?;
    waiver::parse_config(&text, "analyze.toml")
}

/// Match `findings` against `waivers`: valid waivers suppress (but are
/// kept for `--show-waived`), hash mismatches and unmatched waivers
/// surface as `stale-waiver` diagnostics appended after the findings.
fn apply_waivers(findings: Vec<Diagnostic>, waivers: &[Waiver]) -> Report {
    let mut diagnostics = Vec::new();
    let mut waived_diagnostics = Vec::new();
    let mut used = vec![false; waivers.len()];
    for d in findings {
        match match_waiver(waivers, &d) {
            WaiverMatch::Valid(i) => {
                used[i] = true;
                waived_diagnostics.push(d);
            }
            WaiverMatch::Stale(i) => {
                used[i] = true; // stale, but reported as such below
                diagnostics.push(stale_waiver_diag(
                    &waivers[i],
                    format!(
                        "waiver hash {} no longer matches the code at {}:{} (now {}) — \
                         the line changed; re-justify or fix the finding",
                        waivers[i].hash, d.path, d.line, d.hash
                    ),
                ));
                diagnostics.push(d);
            }
            WaiverMatch::None => diagnostics.push(d),
        }
    }
    for (i, w) in waivers.iter().enumerate() {
        if !used[i] {
            diagnostics.push(stale_waiver_diag(
                w,
                format!(
                    "waiver matches no finding ({} at {}:{}) — the code it excused moved or \
                     was fixed; delete the entry",
                    w.lint, w.path, w.line
                ),
            ));
        }
    }
    Report {
        diagnostics,
        waived: waived_diagnostics.len(),
        waived_diagnostics,
        files: 0,
        cache_hits: 0,
        cache_misses: 0,
    }
}

enum WaiverMatch {
    Valid(usize),
    Stale(usize),
    None,
}

fn match_waiver(waivers: &[Waiver], d: &Diagnostic) -> WaiverMatch {
    for (i, w) in waivers.iter().enumerate() {
        if w.lint == d.lint && w.path == d.path && w.line == d.line {
            return if w.hash == d.hash {
                WaiverMatch::Valid(i)
            } else {
                WaiverMatch::Stale(i)
            };
        }
    }
    WaiverMatch::None
}

fn stale_waiver_diag(w: &Waiver, message: String) -> Diagnostic {
    Diagnostic {
        lint: "stale-waiver",
        path: "analyze.toml".into(),
        line: w.defined_at,
        col: 1,
        len: 10, // the `[[waiver]]` header
        message,
        excerpt: "[[waiver]]".into(),
        hash: w.hash.clone(),
    }
}

/// Workspace-relative path with `/` separators.
fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut out = String::new();
    for comp in rel.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(&comp.as_os_str().to_string_lossy());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_file(text: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs".into(), text.into())
    }

    #[test]
    fn passes_compose_over_one_file() {
        let src = "\
pub fn f(m: &std::collections::HashMap<u32, f64>, n: usize) -> f64 {
    let k = n as u32;
    for (_, v) in m {
        assert!(*v > 0.0);
    }
    k as f64
}
";
        let out = analyze_source(&lib_file(src), false);
        let lints: Vec<&str> = out.iter().map(|d| d.lint).collect();
        assert!(lints.contains(&"lossy-cast"), "{lints:?}");
        assert!(lints.contains(&"nondet-iter"), "{lints:?}");
        assert!(lints.contains(&"bare-assert"), "{lints:?}");
    }

    #[test]
    fn waiver_matching_is_hash_pinned() {
        let src = "pub fn f(n: usize) -> u32 {\n    n as u32\n}\n";
        let file = lib_file(src);
        let d = &analyze_source(&file, false)[0];
        let good = Waiver {
            lint: "lossy-cast".into(),
            path: d.path.clone(),
            line: d.line,
            hash: d.hash.clone(),
            reason: "test".into(),
            defined_at: 1,
        };
        assert!(matches!(
            match_waiver(std::slice::from_ref(&good), d),
            WaiverMatch::Valid(0)
        ));
        let stale = Waiver {
            hash: "0000000000000000".into(),
            ..good
        };
        assert!(matches!(match_waiver(&[stale], d), WaiverMatch::Stale(0)));
    }
}
