//! Item-level syntax on top of the lexer.
//!
//! [`parse`] lifts the flat token stream into a tree of *items* — `fn`,
//! `struct`, `enum`, `trait`, `impl`, `mod`, `use`, `const`, `static`,
//! `type`, `macro_rules!`, `extern` blocks, and item-position macro
//! invocations — each carrying its visibility, attributes, name, and
//! byte span. Everything between items (trivia, inner attributes,
//! tokens the parser does not recognise) becomes a [`Node::Gap`], so
//! the node spans **exactly tile** the file: every byte belongs to
//! exactly one top-level node, and inside an item with a brace body the
//! children tile the body interior the same way. Like the lexer, the
//! parser is *total*: it never fails, and arbitrary byte soup parses to
//! a (possibly gap-heavy) tiling. Both guarantees are property-tested
//! in `tests/syntax_prop.rs`.
//!
//! The parser deliberately stops at the item level — no expressions, no
//! types beyond signature token ranges — because that is exactly what
//! the workspace passes ([`crate::index`]) need: which public names a
//! crate defines, where their signatures sit, and which attribute gates
//! cover them.

use crate::lexer::{Token, TokenKind};

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Struct,
    Enum,
    Union,
    Trait,
    /// `impl Type { … }` or `impl Trait for Type { … }`.
    Impl,
    Mod,
    Use,
    Const,
    Static,
    TypeAlias,
    /// `macro_rules! name { … }`.
    MacroDef,
    /// `extern crate name;` or `extern "C" { … }` foreign block.
    Extern,
    /// An item-position macro invocation (`thread_local! { … }`).
    MacroCall,
}

/// Declared visibility of an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// `pub` — part of the crate's public API.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)` — internally scoped.
    Scoped,
    /// No `pub` at all.
    Private,
}

/// One parsed item. `span` covers the item's leading attributes through
/// its terminator (`;` or closing `}`); `body` is the interior byte
/// range of a brace body when the item has one, and `children` tile it.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// The item's declared name; `None` for `impl` blocks, `use`
    /// declarations, and `extern "…" { … }` foreign blocks.
    pub name: Option<String>,
    pub vis: Vis,
    /// Raw text of each outer attribute (`#[…]`), in order.
    pub attrs: Vec<String>,
    /// Half-open byte span of the whole item, attributes included.
    pub span: (usize, usize),
    /// Byte offset one past the signature: the `{` of the body or the
    /// terminating `;` — where a rendered signature would stop.
    pub sig_end: usize,
    /// Interior of the brace body (between `{` and `}`), if any.
    pub body: Option<(usize, usize)>,
    /// Items/gaps tiling `body` for `mod`/`impl`/`trait`/`extern`
    /// bodies. Empty for leaf items and for bodies left unparsed
    /// (`fn` bodies are expression soup, not items).
    pub children: Vec<Node>,
    /// For `impl` items: true when this is a trait impl (`impl T for U`),
    /// whose members are dictated by the trait, not API choices.
    pub is_trait_impl: bool,
}

/// One node of the file tiling: an item or the bytes between items.
#[derive(Debug, Clone)]
pub enum Node {
    Item(Box<Item>),
    /// Bytes no item claims: trivia, inner attributes, stray tokens.
    Gap(usize, usize),
}

impl Node {
    /// Byte span of this node.
    pub fn span(&self) -> (usize, usize) {
        match self {
            Node::Item(it) => it.span,
            Node::Gap(s, e) => (*s, *e),
        }
    }
}

/// Parse `src` (lexed as `tokens`) into a node list tiling
/// `[0, src.len())`. Total: never fails, never panics.
pub fn parse(src: &str, tokens: &[Token]) -> Vec<Node> {
    let code: Vec<Token> = tokens.iter().filter(|t| !t.is_trivia()).copied().collect();
    let mut p = Parser { src, code: &code };
    p.parse_range(0, code.len(), 0, src.len())
}

/// Walk every item in a parse (depth-first), calling `f` with the item
/// and the chain of enclosing items (outermost first).
pub fn visit_items<'a>(nodes: &'a [Node], f: &mut impl FnMut(&'a Item, &[&'a Item])) {
    fn go<'a>(
        nodes: &'a [Node],
        stack: &mut Vec<&'a Item>,
        f: &mut impl FnMut(&'a Item, &[&'a Item]),
    ) {
        for n in nodes {
            if let Node::Item(it) = n {
                f(it, stack);
                stack.push(it);
                go(&it.children, stack, f);
                stack.pop();
            }
        }
    }
    go(nodes, &mut Vec::new(), f);
}

struct Parser<'a> {
    src: &'a str,
    code: &'a [Token],
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &'a str {
        self.code[i].text(self.src)
    }

    fn is(&self, i: usize, t: &str) -> bool {
        i < self.code.len() && self.text(i) == t
    }

    fn kind(&self, i: usize) -> Option<TokenKind> {
        self.code.get(i).map(|t| t.kind)
    }

    /// Parse code tokens `[lo, hi)` covering bytes `[byte_lo, byte_hi)`
    /// into a tiling node list.
    fn parse_range(&mut self, lo: usize, hi: usize, byte_lo: usize, byte_hi: usize) -> Vec<Node> {
        let mut nodes = Vec::new();
        let mut cursor = byte_lo;
        let mut i = lo;
        while i < hi {
            match self.try_item(i, hi) {
                Some((item, next)) => {
                    let (s, e) = item.span;
                    if s > cursor {
                        nodes.push(Node::Gap(cursor, s));
                    }
                    cursor = e;
                    nodes.push(Node::Item(Box::new(item)));
                    i = next;
                }
                None => {
                    // Not an item start: the token joins the current gap.
                    // Attributes (`#![…]` inner, or `#[…]` followed by
                    // something unrecognisable) are swallowed whole so
                    // their `[`…`]` contents cannot masquerade as items.
                    let attr_open = if self.is(i, "#") && self.is(i + 1, "!") && self.is(i + 2, "[")
                    {
                        Some(i + 2)
                    } else if self.is(i, "#") && self.is(i + 1, "[") {
                        Some(i + 1)
                    } else {
                        None
                    };
                    match attr_open {
                        Some(open) => {
                            i = self
                                .matching_close(open, hi, "[", "]")
                                .map_or(hi, |j| j + 1)
                        }
                        None => i += 1,
                    }
                }
            }
        }
        if cursor < byte_hi {
            nodes.push(Node::Gap(cursor, byte_hi));
        }
        nodes
    }

    /// Token index of the delimiter closing the opener at `open`,
    /// scanning no further than `hi`. Counts only the opener's class.
    fn matching_close(&self, open: usize, hi: usize, o: &str, c: &str) -> Option<usize> {
        let mut depth = 0usize;
        for j in open..hi {
            let t = self.text(j);
            if t == o {
                depth += 1;
            } else if t == c {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
        None
    }

    /// Try to parse one item whose first token (attribute `#`, `pub`,
    /// qualifier, or item keyword) is at `i`. Returns the item and the
    /// index of the first token after it.
    fn try_item(&mut self, i: usize, hi: usize) -> Option<(Item, usize)> {
        let start_byte = self.code[i].start;
        let mut j = i;

        // Outer attributes: `#[…]`, any number. (`#![…]` is an inner
        // attribute and not an item start — bail to the gap path.)
        let mut attrs = Vec::new();
        while self.is(j, "#") && self.is(j + 1, "[") {
            let close = self.matching_close(j + 1, hi, "[", "]")?;
            attrs.push(self.src[self.code[j].start..self.code[close].end].to_string());
            j = close + 1;
        }

        // Visibility.
        let mut vis = Vis::Private;
        if self.is(j, "pub") {
            vis = Vis::Pub;
            j += 1;
            if self.is(j, "(") {
                let close = self.matching_close(j, hi, "(", ")")?;
                vis = Vis::Scoped;
                j = close + 1;
            }
        }

        // Qualifiers before `fn` (`const`/`async`/`unsafe`/`extern "C"`).
        // `const`/`extern` also *start* items, so look ahead before
        // treating them as qualifiers.
        let mut k = j;
        loop {
            match self.code.get(k).map(|t| t.text(self.src)) {
                Some("async") => k += 1,
                Some("unsafe") => {
                    // `unsafe fn`/`unsafe impl`/`unsafe trait`/`unsafe extern`.
                    k += 1;
                }
                Some("const") if self.peek_is_fn_chain(k + 1) => k += 1,
                Some("extern")
                    if self.kind(k + 1) == Some(TokenKind::Str) && self.is_kw(k + 2, "fn") =>
                {
                    k += 2;
                }
                _ => break,
            }
        }

        let kw = self.code.get(k).map(|t| t.text(self.src))?;
        let (item, next) = match kw {
            "fn" => self.item_fn(k, hi)?,
            "struct" => self.item_struct(k, hi)?,
            "enum" | "union" => self.item_braced(
                k,
                hi,
                if kw == "enum" {
                    ItemKind::Enum
                } else {
                    ItemKind::Union
                },
            )?,
            "trait" => self.item_container(k, hi, ItemKind::Trait)?,
            "impl" => self.item_container(k, hi, ItemKind::Impl)?,
            "mod" => self.item_mod(k, hi)?,
            "use" => self.item_to_semi(k, hi, ItemKind::Use, false)?,
            "const" | "static" => self.item_to_semi(
                k,
                hi,
                if kw == "const" {
                    ItemKind::Const
                } else {
                    ItemKind::Static
                },
                true,
            )?,
            "type" => self.item_to_semi(k, hi, ItemKind::TypeAlias, true)?,
            "macro_rules" if self.is(k + 1, "!") => self.item_macro_def(k, hi)?,
            "extern" => self.item_extern(k, hi)?,
            _ if self.kind(k) == Some(TokenKind::Ident)
                && self.is(k + 1, "!")
                && vis == Vis::Private
                && attrs.is_empty()
                && k == j =>
            {
                self.item_macro_call(k, hi)?
            }
            _ => return None,
        };
        let mut item = item;
        item.vis = vis;
        item.attrs = attrs;
        item.span.0 = start_byte;
        Some((item, next))
    }

    /// After a possible `const` qualifier: does a `fn` (possibly behind
    /// more qualifiers) follow? Distinguishes `const fn` from
    /// `const NAME: T = …`.
    fn peek_is_fn_chain(&self, mut k: usize) -> bool {
        loop {
            match self.code.get(k).map(|t| t.text(self.src)) {
                Some("fn") => return true,
                Some("async" | "unsafe") => k += 1,
                Some("extern") => {
                    k += 1;
                    if self.kind(k) == Some(TokenKind::Str) {
                        k += 1;
                    }
                }
                _ => return false,
            }
        }
    }

    fn is_kw(&self, i: usize, kw: &str) -> bool {
        self.is(i, kw)
    }

    fn ident_after(&self, i: usize) -> Option<String> {
        (self.kind(i) == Some(TokenKind::Ident)).then(|| self.text(i).to_string())
    }

    /// Scan from `from` for the first `{` or `;` at delimiter depth 0,
    /// ignoring `<…>` generic angles (tracked shallowly, `->` excluded).
    fn body_or_semi(&self, from: usize, hi: usize) -> Option<(usize, bool)> {
        let (mut paren, mut bracket) = (0i32, 0i32);
        let mut j = from;
        while j < hi {
            match self.text(j) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" if paren <= 0 && bracket <= 0 => return Some((j, true)),
                ";" if paren <= 0 && bracket <= 0 => return Some((j, false)),
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// Build the common tail of an item with a brace body at `open`:
    /// returns `(body interior, span end, next token index)`.
    fn close_braced(&mut self, open: usize, hi: usize) -> ((usize, usize), usize, usize) {
        match self.matching_close(open, hi, "{", "}") {
            Some(close) => (
                (self.code[open].end, self.code[close].start),
                self.code[close].end,
                close + 1,
            ),
            // Unterminated body: runs to the end of the region.
            None => {
                let end = self
                    .code
                    .get(hi.saturating_sub(1))
                    .map_or(self.src.len(), |t| t.end);
                ((self.code[open].end, end), end, hi)
            }
        }
    }

    fn item_fn(&mut self, kw: usize, hi: usize) -> Option<(Item, usize)> {
        let name = self.ident_after(kw + 1);
        let (at, is_brace) = self.body_or_semi(kw + 1, hi)?;
        let mut item = Item {
            kind: ItemKind::Fn,
            name,
            vis: Vis::Private,
            attrs: Vec::new(),
            span: (self.code[kw].start, 0),
            sig_end: self.code[at].start,
            body: None,
            children: Vec::new(),
            is_trait_impl: false,
        };
        if is_brace {
            // Fn bodies are expressions, not items: span over, no children.
            let (body, end, next) = self.close_braced(at, hi);
            item.body = Some(body);
            item.span.1 = end;
            Some((item, next))
        } else {
            item.span.1 = self.code[at].end;
            Some((item, at + 1))
        }
    }

    fn item_struct(&mut self, kw: usize, hi: usize) -> Option<(Item, usize)> {
        let name = self.ident_after(kw + 1);
        let (at, is_brace) = self.body_or_semi(kw + 1, hi)?;
        let mut item = Item {
            kind: ItemKind::Struct,
            name,
            vis: Vis::Private,
            attrs: Vec::new(),
            span: (self.code[kw].start, 0),
            sig_end: self.code[at].start,
            body: None,
            children: Vec::new(),
            is_trait_impl: false,
        };
        if is_brace {
            let (body, end, next) = self.close_braced(at, hi);
            item.body = Some(body);
            item.span.1 = end;
            Some((item, next))
        } else {
            // Tuple struct `struct X(…);` or unit struct `struct X;` —
            // body_or_semi already skipped the parenthesised fields.
            item.span.1 = self.code[at].end;
            Some((item, at + 1))
        }
    }

    fn item_braced(&mut self, kw: usize, hi: usize, kind: ItemKind) -> Option<(Item, usize)> {
        let name = self.ident_after(kw + 1);
        let (at, is_brace) = self.body_or_semi(kw + 1, hi)?;
        if !is_brace {
            return None; // `enum X;` is not Rust; let the gap take it
        }
        let (body, end, next) = self.close_braced(at, hi);
        Some((
            Item {
                kind,
                name,
                vis: Vis::Private,
                attrs: Vec::new(),
                span: (self.code[kw].start, end),
                sig_end: self.code[at].start,
                body: Some(body),
                children: Vec::new(),
                is_trait_impl: false,
            },
            next,
        ))
    }

    /// `trait`/`impl`: brace body whose members are parsed as children.
    fn item_container(&mut self, kw: usize, hi: usize, kind: ItemKind) -> Option<(Item, usize)> {
        let name = if kind == ItemKind::Trait {
            self.ident_after(kw + 1)
        } else {
            None
        };
        let (at, is_brace) = self.body_or_semi(kw + 1, hi)?;
        // `impl` headers always end in a body; a trait alias
        // (`trait X = Y;`) ends at `;` with no members.
        if !is_brace {
            return Some((
                Item {
                    kind,
                    name,
                    vis: Vis::Private,
                    attrs: Vec::new(),
                    span: (self.code[kw].start, self.code[at].end),
                    sig_end: self.code[at].start,
                    body: None,
                    children: Vec::new(),
                    is_trait_impl: false,
                },
                at + 1,
            ));
        }
        let is_trait_impl = kind == ItemKind::Impl && (kw + 1..at).any(|j| self.text(j) == "for");
        let (body, end, next) = self.close_braced(at, hi);
        let inner_tokens = self.token_range_inside(at, next.saturating_sub(1), hi);
        let children = self.parse_range(inner_tokens.0, inner_tokens.1, body.0, body.1);
        Some((
            Item {
                kind,
                name,
                vis: Vis::Private,
                attrs: Vec::new(),
                span: (self.code[kw].start, end),
                sig_end: self.code[at].start,
                body: Some(body),
                children,
                is_trait_impl,
            },
            next,
        ))
    }

    fn item_mod(&mut self, kw: usize, hi: usize) -> Option<(Item, usize)> {
        let name = self.ident_after(kw + 1);
        let (at, is_brace) = self.body_or_semi(kw + 1, hi)?;
        if !is_brace {
            return Some((
                Item {
                    kind: ItemKind::Mod,
                    name,
                    vis: Vis::Private,
                    attrs: Vec::new(),
                    span: (self.code[kw].start, self.code[at].end),
                    sig_end: self.code[at].start,
                    body: None,
                    children: Vec::new(),
                    is_trait_impl: false,
                },
                at + 1,
            ));
        }
        let (body, end, next) = self.close_braced(at, hi);
        let inner_tokens = self.token_range_inside(at, next.saturating_sub(1), hi);
        let children = self.parse_range(inner_tokens.0, inner_tokens.1, body.0, body.1);
        Some((
            Item {
                kind: ItemKind::Mod,
                name,
                vis: Vis::Private,
                attrs: Vec::new(),
                span: (self.code[kw].start, end),
                sig_end: self.code[at].start,
                body: Some(body),
                children,
                is_trait_impl: false,
            },
            next,
        ))
    }

    /// Token index range strictly inside the braces `open_tok … close_tok`.
    fn token_range_inside(&self, open_tok: usize, close_tok: usize, hi: usize) -> (usize, usize) {
        (open_tok + 1, close_tok.min(hi).max(open_tok + 1))
    }

    /// Items terminated by `;` (`use`, `const`, `static`, `type`).
    fn item_to_semi(
        &mut self,
        kw: usize,
        hi: usize,
        kind: ItemKind,
        named: bool,
    ) -> Option<(Item, usize)> {
        // `static mut NAME` / `type X<…>` — the name is the first ident
        // after the keyword (skipping `mut`).
        let name_idx = if self.is(kw + 1, "mut") {
            kw + 2
        } else {
            kw + 1
        };
        let name = named.then(|| self.ident_after(name_idx)).flatten();
        // Associated `type X = …;` in traits may carry bounds; `const`
        // initialisers may contain braces (`const A: [u8; 2] = [0; 2];`
        // or block expressions). Scan to the first top-level `;`,
        // stepping over any brace body found on the way.
        let mut j = kw + 1;
        let (mut paren, mut bracket, mut brace) = (0i32, 0i32, 0i32);
        let semi = loop {
            if j >= hi {
                break None;
            }
            match self.text(j) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" => brace += 1,
                "}" => brace -= 1,
                ";" if paren <= 0 && bracket <= 0 && brace <= 0 => break Some(j),
                _ => {}
            }
            j += 1;
        };
        let semi = semi?;
        Some((
            Item {
                kind,
                name,
                vis: Vis::Private,
                attrs: Vec::new(),
                span: (self.code[kw].start, self.code[semi].end),
                sig_end: self.code[semi].start,
                body: None,
                children: Vec::new(),
                is_trait_impl: false,
            },
            semi + 1,
        ))
    }

    fn item_macro_def(&mut self, kw: usize, hi: usize) -> Option<(Item, usize)> {
        // `macro_rules ! name <delim> … <close>` (+ `;` for non-brace).
        let name = self.ident_after(kw + 2)?;
        let open = kw + 3;
        let (o, c) = match self.code.get(open).map(|t| t.text(self.src)) {
            Some("{") => ("{", "}"),
            Some("(") => ("(", ")"),
            Some("[") => ("[", "]"),
            _ => return None,
        };
        let close = self.matching_close(open, hi, o, c)?;
        // Paren/bracket bodies need a trailing `;`.
        let (end_tok, next) = if o != "{" && self.is(close + 1, ";") {
            (close + 1, close + 2)
        } else {
            (close, close + 1)
        };
        Some((
            Item {
                kind: ItemKind::MacroDef,
                name: Some(name),
                vis: Vis::Private,
                attrs: Vec::new(),
                span: (self.code[kw].start, self.code[end_tok].end),
                sig_end: self.code[open].start,
                body: None,
                children: Vec::new(),
                is_trait_impl: false,
            },
            next,
        ))
    }

    fn item_extern(&mut self, kw: usize, hi: usize) -> Option<(Item, usize)> {
        if self.is(kw + 1, "crate") {
            return self
                .item_to_semi(kw, hi, ItemKind::Extern, false)
                .map(|(mut it, n)| {
                    it.name = self.ident_after(kw + 2);
                    (it, n)
                });
        }
        // `extern "C" { … }` foreign block.
        let open = if self.kind(kw + 1) == Some(TokenKind::Str) {
            kw + 2
        } else {
            kw + 1
        };
        if !self.is(open, "{") {
            return None;
        }
        let (body, end, next) = self.close_braced(open, hi);
        let inner = self.token_range_inside(open, next.saturating_sub(1), hi);
        let children = self.parse_range(inner.0, inner.1, body.0, body.1);
        Some((
            Item {
                kind: ItemKind::Extern,
                name: None,
                vis: Vis::Private,
                attrs: Vec::new(),
                span: (self.code[kw].start, end),
                sig_end: self.code[open].start,
                body: Some(body),
                children,
                is_trait_impl: false,
            },
            next,
        ))
    }

    /// Item-position macro invocation: `name ! ( … );` / `name ! { … }`.
    fn item_macro_call(&mut self, kw: usize, hi: usize) -> Option<(Item, usize)> {
        let open = kw + 2;
        let (o, c) = match self.code.get(open).map(|t| t.text(self.src)) {
            Some("{") => ("{", "}"),
            Some("(") => ("(", ")"),
            Some("[") => ("[", "]"),
            _ => return None,
        };
        let close = self.matching_close(open, hi, o, c)?;
        let (end_tok, next) = if o != "{" && self.is(close + 1, ";") {
            (close + 1, close + 2)
        } else {
            (close, close + 1)
        };
        Some((
            Item {
                kind: ItemKind::MacroCall,
                name: self.ident_after(kw),
                vis: Vis::Private,
                attrs: Vec::new(),
                span: (self.code[kw].start, self.code[end_tok].end),
                sig_end: self.code[open].start,
                body: None,
                children: Vec::new(),
                is_trait_impl: false,
            },
            next,
        ))
    }
}

/// Check the tiling invariant over a parse of `src`: top-level nodes
/// tile `[0, len)` and every container's children tile its body.
/// Returns a typed description of the first violation, for tests.
pub fn check_tiling(src: &str, nodes: &[Node]) -> fault::Result<()> {
    fn check(nodes: &[Node], lo: usize, hi: usize) -> fault::Result<()> {
        let violation = |msg: String| Err(fault::Error::invalid(msg));
        let mut cursor = lo;
        for n in nodes {
            let (s, e) = n.span();
            if s != cursor {
                return violation(format!(
                    "gap/overlap: node starts at {s}, cursor at {cursor}"
                ));
            }
            if e < s || e > hi {
                return violation(format!("node span ({s},{e}) escapes region ({lo},{hi})"));
            }
            if let Node::Item(it) = n {
                if let Some((bs, be)) = it.body {
                    if !(s <= bs && be <= e) {
                        return violation(format!("body ({bs},{be}) outside item span ({s},{e})"));
                    }
                    if !it.children.is_empty() {
                        check(&it.children, bs, be)?;
                    }
                }
            }
            cursor = e;
        }
        if cursor != hi {
            return violation(format!("tail uncovered: cursor {cursor}, region end {hi}"));
        }
        Ok(())
    }
    check(nodes, 0, src.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Vec<Node> {
        let nodes = parse(src, &lex(src));
        check_tiling(src, &nodes).expect("tiling holds on test fixtures");
        nodes
    }

    fn items(nodes: &[Node]) -> Vec<&Item> {
        nodes
            .iter()
            .filter_map(|n| match n {
                Node::Item(it) => Some(it.as_ref()),
                Node::Gap(..) => None,
            })
            .collect()
    }

    #[test]
    fn parses_top_level_items_with_vis_and_names() {
        let src = "\
//! doc
use std::fmt;

pub struct Point { x: f64, y: f64 }

pub(crate) fn helper(n: usize) -> usize { n + 1 }

pub fn api() {}

const LIMIT: usize = 10;
";
        let nodes = parse_src(src);
        let its = items(&nodes);
        let summary: Vec<(ItemKind, Option<&str>, Vis)> = its
            .iter()
            .map(|it| (it.kind, it.name.as_deref(), it.vis))
            .collect();
        assert_eq!(
            summary,
            vec![
                (ItemKind::Use, None, Vis::Private),
                (ItemKind::Struct, Some("Point"), Vis::Pub),
                (ItemKind::Fn, Some("helper"), Vis::Scoped),
                (ItemKind::Fn, Some("api"), Vis::Pub),
                (ItemKind::Const, Some("LIMIT"), Vis::Private),
            ]
        );
    }

    #[test]
    fn mod_and_impl_children_are_parsed() {
        let src = "\
pub mod outer {
    pub fn inner() {}
    fn private() {}
}
struct S;
impl S {
    pub fn method(&self) -> usize { 1 }
}
impl Clone for S {
    fn clone(&self) -> S { S }
}
";
        let nodes = parse_src(src);
        let its = items(&nodes);
        assert_eq!(its[0].kind, ItemKind::Mod);
        let mod_children = items(&its[0].children);
        assert_eq!(mod_children.len(), 2);
        assert_eq!(mod_children[0].name.as_deref(), Some("inner"));
        assert_eq!(mod_children[0].vis, Vis::Pub);
        let inherent = its[2];
        assert_eq!(inherent.kind, ItemKind::Impl);
        assert!(!inherent.is_trait_impl);
        assert_eq!(items(&inherent.children)[0].name.as_deref(), Some("method"));
        let trait_impl = its[3];
        assert!(trait_impl.is_trait_impl, "impl Clone for S is a trait impl");
    }

    #[test]
    fn attributes_attach_to_their_item() {
        let src = "#[derive(Debug)]\n#[repr(C)]\npub struct S(u8);\n";
        let nodes = parse_src(src);
        let its = items(&nodes);
        assert_eq!(its[0].attrs, vec!["#[derive(Debug)]", "#[repr(C)]"]);
        assert_eq!(its[0].span.0, 0, "span starts at the first attribute");
    }

    #[test]
    fn qualified_fns_parse() {
        let src = "\
pub async fn a() {}
pub const fn b() -> usize { 1 }
pub unsafe fn c() {}
pub extern \"C\" fn d() {}
pub const unsafe extern \"C\" fn e() {}
";
        let nodes = parse_src(src);
        let its = items(&nodes);
        let names: Vec<_> = its
            .iter()
            .map(|it| it.name.as_deref().unwrap_or("?"))
            .collect();
        assert_eq!(names, vec!["a", "b", "c", "d", "e"]);
        assert!(its
            .iter()
            .all(|it| it.kind == ItemKind::Fn && it.vis == Vis::Pub));
    }

    #[test]
    fn const_item_vs_const_fn() {
        let src = "pub const N: usize = 3;\npub const fn f() {}\n";
        let nodes = parse_src(src);
        let its = items(&nodes);
        assert_eq!(its[0].kind, ItemKind::Const);
        assert_eq!(its[0].name.as_deref(), Some("N"));
        assert_eq!(its[1].kind, ItemKind::Fn);
        assert_eq!(its[1].name.as_deref(), Some("f"));
    }

    #[test]
    fn macro_def_and_item_macro_call() {
        let src = "macro_rules! m { () => {}; }\nthread_local! { static X: u8 = 0; }\n";
        let nodes = parse_src(src);
        let its = items(&nodes);
        assert_eq!(its[0].kind, ItemKind::MacroDef);
        assert_eq!(its[0].name.as_deref(), Some("m"));
        assert_eq!(its[1].kind, ItemKind::MacroCall);
        assert_eq!(its[1].name.as_deref(), Some("thread_local"));
    }

    #[test]
    fn fn_bodies_are_not_parsed_as_items() {
        // The struct-like `let` statements inside a body must not
        // produce child items or derail the next top-level item.
        let src = "fn a() { let s = Struct { x: 1 }; if x { y() } }\npub fn b() {}\n";
        let nodes = parse_src(src);
        let its = items(&nodes);
        assert_eq!(its.len(), 2);
        assert!(its[0].children.is_empty());
        assert_eq!(its[1].name.as_deref(), Some("b"));
    }

    #[test]
    fn totality_on_garbage() {
        for src in [
            "",
            "pub",
            "pub fn",
            "fn f(",
            "struct",
            "impl {",
            "mod m {",
            "}}}{{{",
            "#[attr",
            "#![inner]\nfn f() {}",
            "🦀 pub fn ok() {} 🦀",
        ] {
            let nodes = parse(src, &lex(src));
            check_tiling(src, &nodes).unwrap_or_else(|e| panic!("{src:?}: {e}"));
        }
    }

    #[test]
    fn visit_items_reports_nesting() {
        let src = "pub mod m { pub fn f() {} }\n";
        let nodes = parse_src(src);
        let mut seen = Vec::new();
        visit_items(&nodes, &mut |it, stack| {
            seen.push((it.name.clone(), stack.len()));
        });
        assert_eq!(seen, vec![(Some("m".into()), 0), (Some("f".into()), 1)]);
    }
}
