//! `error-policy` — failures leave the workspace only as typed errors.
//!
//! Two rules:
//!
//! * `std::process::exit` belongs in `src/main.rs` and nowhere else.
//!   The CLI maps `fault::Error` to the documented exit codes (2/3/4/5)
//!   in exactly one place; a library that exits directly bypasses both
//!   the mapping and every caller's cleanup (checkpoint flushes,
//!   telemetry sinks).
//! * A `pub fn` that returns a two-parameter `Result<_, E>` must use an
//!   error type whose name is `Error` (in practice `fault::Error`; a
//!   crate-local re-export keeps the name). Single-parameter `Result<T>`
//!   is assumed to be the `fault::Result` alias. Stringly-typed or
//!   ad-hoc error enums in public signatures fragment the exit-code
//!   mapping and are flagged; genuinely foreign signatures (trait
//!   impls constrained elsewhere) can be waived.
//!
//! `pub(crate)`/`pub(super)` functions are internal API and exempt.

use super::FileCx;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;

pub fn check(cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
    for i in 0..cx.code.len() {
        if cx.in_test(i) || cx.kind(i) != TokenKind::Ident {
            continue;
        }
        match cx.text(i) {
            "process"
                if !cx.is_main
                    && cx.is(i + 1, ":")
                    && cx.is(i + 2, ":")
                    && cx.is(i + 3, "exit") =>
            {
                cx.emit(
                    out,
                    "error-policy",
                    i,
                    i + 3,
                    "`std::process::exit` outside `src/main.rs` — return a typed \
                     `fault::Error` and let the binary map it to an exit code"
                        .into(),
                );
            }
            "pub" => {
                if let Some(fn_idx) = fn_after_qualifiers(cx, i) {
                    check_signature(cx, i, fn_idx, out);
                }
            }
            _ => {}
        }
    }
}

/// Index of the `fn` token of a plain-`pub` function item at `pub_idx`,
/// skipping the qualifiers Rust allows in between (`async`, `const`,
/// `unsafe`, `extern "C"` — in any legal combination). `None` for
/// `pub(crate)`/`pub(super)` (internal API, exempt) and for non-fn
/// items (`pub struct`, `pub use`, `pub const NAME`, …).
fn fn_after_qualifiers(cx: &FileCx<'_>, pub_idx: usize) -> Option<usize> {
    let mut j = pub_idx + 1;
    while j < cx.code.len() {
        match cx.text(j) {
            "fn" => return Some(j),
            "async" | "unsafe" => j += 1,
            // `const` is a qualifier only if a `fn` eventually follows;
            // `pub const NAME: u32` bails at `NAME` on the next round.
            "const" => j += 1,
            "extern" => {
                j += 1;
                // Optional ABI string: `extern "C" fn`.
                if j < cx.code.len() && matches!(cx.kind(j), TokenKind::Str | TokenKind::RawStr) {
                    j += 1;
                }
            }
            _ => return None,
        }
    }
    None
}

/// Inspect one `pub … fn` signature; `fn_idx` is the `fn` token.
fn check_signature(cx: &FileCx<'_>, pub_idx: usize, fn_idx: usize, out: &mut Vec<Diagnostic>) {
    let name_idx = fn_idx + 1;
    if name_idx >= cx.code.len() || cx.kind(name_idx) != TokenKind::Ident {
        return;
    }
    // Find the parameter list `(`, skipping generics. `<`/`>` depth
    // tracking must ignore `->` arrows inside Fn-trait bounds.
    let mut j = name_idx + 1;
    let mut angle = 0i32;
    let params_open = loop {
        if j >= cx.code.len() {
            return;
        }
        match cx.text(j) {
            "<" => angle += 1,
            ">" if !cx.is(j.wrapping_sub(1), "-") => angle -= 1,
            "(" if angle <= 0 => break j,
            "{" | ";" => return,
            _ => {}
        }
        j += 1;
    };
    let Some(params_close) = cx.matching_close(params_open) else {
        return;
    };
    // Return type present?
    if !cx.is(params_close + 1, "-") || !cx.is(params_close + 2, ">") {
        return;
    }
    // Collect the return-type token range up to the body/`;`/`where`.
    let ret_start = params_close + 3;
    let mut ret_end = ret_start;
    while ret_end < cx.code.len() && !matches!(cx.text(ret_end), "{" | ";" | "where") {
        ret_end += 1;
    }
    // Find `Result <` in the return type and isolate its second type
    // parameter, if it has one.
    for r in ret_start..ret_end {
        if cx.kind(r) == TokenKind::Ident && cx.text(r) == "Result" && cx.is(r + 1, "<") {
            if let Some(err_ident) = second_type_param(cx, r + 1, ret_end) {
                if err_ident != "Error" {
                    cx.emit(
                        out,
                        "error-policy",
                        pub_idx,
                        name_idx,
                        format!(
                            "public fallible fn `{}` returns `Result<_, {err_ident}>` — \
                             public fallible signatures use `fault::Error` (or the \
                             single-parameter `fault::Result` alias)",
                            cx.text(name_idx)
                        ),
                    );
                }
            }
            return; // only the outermost Result is policed
        }
    }
}

/// The final path-segment ident of the second top-level type parameter
/// of the generic list opening at `open` (`<`), or `None` for a
/// single-parameter `Result<T>`.
fn second_type_param(cx: &FileCx<'_>, open: usize, limit: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut comma_at = None;
    let mut close_at = None;
    let mut j = open;
    while j < limit {
        match cx.text(j) {
            "<" => angle += 1,
            ">" if !cx.is(j.wrapping_sub(1), "-") => {
                angle -= 1;
                if angle == 0 {
                    close_at = Some(j);
                    break;
                }
            }
            "(" => paren += 1,
            ")" => paren -= 1,
            "," if angle == 1 && paren == 0 && comma_at.is_none() => comma_at = Some(j),
            _ => {}
        }
        j += 1;
    }
    let close = close_at?;
    let comma = comma_at?;
    // Last ident token of the second parameter's tokens.
    (comma + 1..close)
        .rev()
        .find(|&k| cx.kind(k) == TokenKind::Ident)
        .map(|k| cx.text(k).to_string())
}
