//! `float-order` — deterministic float comparisons only.
//!
//! The select method ranks models by cross-validated error; a
//! `partial_cmp`-based sort is both panic-prone (the usual
//! `.partial_cmp(..).unwrap()` idiom) and order-unstable once a NaN
//! slips in, which silently reorders model rankings between runs.
//! PR 2 moved every comparison to `f64::total_cmp`; this pass keeps
//! new code on that path by flagging any use of `partial_cmp` in
//! non-test code, whether as a method call or a path
//! (`f64::partial_cmp`). On the rare non-float type where
//! `partial_cmp` is the right tool, waive the site in `analyze.toml`
//! with the justification.

use super::FileCx;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;

pub fn check(cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
    for i in 0..cx.code.len() {
        if cx.in_test(i) || cx.kind(i) != TokenKind::Ident {
            continue;
        }
        if cx.text(i) != "partial_cmp" {
            continue;
        }
        // Skip the definition site of a `partial_cmp` impl (`fn
        // partial_cmp`) — only uses are flagged.
        if i > 0 && cx.is(i - 1, "fn") {
            continue;
        }
        cx.emit(
            out,
            "float-order",
            i,
            i,
            "`partial_cmp` — use `total_cmp` for floats so ordering is total and \
             deterministic (waive in analyze.toml if this is a non-float type)"
                .into(),
        );
    }
}
