//! `unsafe-region` — every `unsafe` region is a reviewed, waived site.
//!
//! The workspace is safe Rust except for the explicit SIMD kernels in
//! `crates/compat/simd`, where `std::arch` intrinsics force `unsafe`.
//! This pass flags **every** `unsafe` token in non-test code — there is
//! no way to write an unflagged `unsafe` — so each accepted site must
//! carry an `analyze.toml` waiver with a per-site safety argument, and
//! the content hash makes the waiver go stale the moment the region's
//! first line changes.
//!
//! The message distinguishes two cases so review effort lands where it
//! matters:
//!
//! * the region has a `// SAFETY:` comment on the same or the nearest
//!   preceding comment line — the finding asks for a waiver pinning the
//!   argument;
//! * it does not — the finding demands the comment first. A waiver for
//!   an uncommented site would pin a justification the code itself
//!   does not carry, so the message says to write the comment, not the
//!   waiver.

use super::FileCx;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;

/// True when `line` (1-based) or the run of `//` comment lines directly
/// above it carries a `SAFETY:` marker.
fn has_safety_comment(cx: &FileCx<'_>, line: usize) -> bool {
    // Same line, anywhere before or after the keyword (e.g. a trailing
    // `// SAFETY: ...` on the unsafe line itself).
    if cx.file.line_text(line).contains("SAFETY:") {
        return true;
    }
    // Walk the contiguous block of `//` comment (or attribute) lines
    // directly above; blank line or code ends the search.
    let mut l = line;
    while l > 1 {
        l -= 1;
        let text = cx.file.line_text(l).trim();
        if text.starts_with("//") {
            if text.contains("SAFETY:") {
                return true;
            }
        } else if text.starts_with("#[") || text.starts_with("#!") {
            // Attributes sit between the comment and the item.
            continue;
        } else {
            return false;
        }
    }
    false
}

pub fn check(cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
    for i in 0..cx.code.len() {
        if cx.in_test(i) || cx.kind(i) != TokenKind::Ident || cx.text(i) != "unsafe" {
            continue;
        }
        let (line, _) = cx.file.line_col(cx.code[i].start);
        let message = if has_safety_comment(cx, line) {
            "`unsafe` region — argue the safety contract in an analyze.toml waiver \
             (the // SAFETY: comment is the argument; the waiver pins it to this line)"
                .to_string()
        } else {
            "`unsafe` region without a // SAFETY: comment — document why every \
             invariant the compiler stops checking here still holds"
                .to_string()
        };
        cx.emit(out, "unsafe-region", i, i, message);
    }
}
