//! `lossy-cast` — every truncating `as` cast is either typed away or
//! argued safe in `analyze.toml`.
//!
//! `as` never fails: integer→integer wraps, float→integer saturates,
//! `f64`→`f32` rounds. In a pipeline whose whole value is numeric
//! trust, a silently wrapped row count or saturated index is the worst
//! kind of bug — wrong *and* quiet (PR 4 found exactly this shape in
//! `dse::data` and converted the sites to `try_into` + typed
//! `fault::Error`). This pass flags any `as` cast in non-test code
//! whose **target** can lose information:
//!
//! * all integer targets (`u8…u128`, `i8…i128`, `usize`, `isize`) —
//!   the source may be wider, signed differently, or a float;
//! * `f32` — halves the mantissa of anything interesting;
//! * `f64` — when the *source* is recognizably a 64-bit-or-wider
//!   integer, which `f64`'s 53-bit mantissa cannot hold exactly.
//!
//! The old blanket `as f64` exemption wrongly excused that last class:
//! a `u64 as f64` above 2^53 rounds silently (nanosecond totals and
//! generated-space cardinalities get there). The token stream cannot
//! see types, so the 64-bit-source judgment is a same-file heuristic —
//! the cast source is flagged when it is:
//!
//! * a chained cast through a wide type (`x as u64 as f64`),
//! * an integer literal with a wide suffix (`1u64 as f64`),
//! * an identifier ascribed a wide type anywhere in the file
//!   (`let n: u64`, `count: usize` in params/fields),
//! * a call of `len`/`count`/`capacity` (usize by definition) or of a
//!   same-file `fn` whose return type is wide.
//!
//! Narrow sources (`u32 as f64` and below) stay exempt: they are
//! always exact. A flagged site that is provably below 2^53 (bounded
//! dims, clamped counters) carries a one-line waiver in
//! `analyze.toml`, pinned to the line's content hash, same as every
//! other in-range argument.

use super::{numeric_type, FileCx};
use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;
use std::collections::BTreeSet;

/// Integer types `f64` cannot represent exactly.
fn wide_int(text: &str) -> bool {
    matches!(text, "u64" | "i64" | "usize" | "isize" | "u128" | "i128")
}

/// Built-in methods that return `usize` (or `u64` for iterators) no
/// matter the receiver.
fn usize_method(text: &str) -> bool {
    matches!(text, "len" | "count" | "capacity")
}

/// Identifiers the file itself ties to a wide integer type: `x: u64`
/// ascriptions (lets, params, struct fields) and `fn f(..) -> u64`
/// return types.
fn wide_idents(cx: &FileCx<'_>) -> BTreeSet<String> {
    let mut wide = BTreeSet::new();
    for i in 0..cx.code.len() {
        if cx.kind(i) != TokenKind::Ident {
            continue;
        }
        // `name : u64` — one ascription anywhere marks the name for
        // the whole file (scoping is beyond a token heuristic; a
        // false hit is a waiver, not a miss).
        if cx.is(i + 1, ":")
            && !cx.is(i + 2, ":")
            && i + 2 < cx.code.len()
            && wide_int(cx.text(i + 2))
        {
            wide.insert(cx.text(i).to_string());
        }
        // `fn name ( … ) -> u64` — calls of `name` yield a wide value.
        if i >= 1 && cx.is(i - 1, "fn") && cx.is(i + 1, "(") {
            if let Some(close) = cx.matching_close(i + 1) {
                if cx.is(close + 1, "-")
                    && cx.is(close + 2, ">")
                    && close + 3 < cx.code.len()
                    && wide_int(cx.text(close + 3))
                {
                    wide.insert(cx.text(i).to_string());
                }
            }
        }
    }
    wide
}

/// Does the expression ending at code token `i` (inclusive) have a
/// recognizably 64-bit-or-wider integer source?
fn wide_source(cx: &FileCx<'_>, i: usize, wide: &BTreeSet<String>) -> bool {
    match cx.kind(i) {
        // `… as u64 as f64` — chained through a wide type.
        TokenKind::Ident if wide_int(cx.text(i)) => true,
        // `n as f64` with `n: u64` ascribed somewhere in this file.
        TokenKind::Ident => wide.contains(cx.text(i)),
        // `123u64 as f64` / `1_000_000usize as f64`.
        TokenKind::Int => {
            let t = cx.text(i);
            ["u64", "i64", "usize", "isize", "u128", "i128"]
                .iter()
                .any(|s| t.ends_with(s))
        }
        // `xs.len() as f64`, `wide_fn(…) as f64`: walk back over the
        // call's parens to the callee name.
        TokenKind::Punct if cx.text(i) == ")" => {
            let mut depth = 0usize;
            let mut j = i;
            loop {
                match cx.text(j) {
                    ")" => depth += 1,
                    "(" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j == 0 {
                    return false;
                }
                j -= 1;
            }
            j >= 1
                && cx.kind(j - 1) == TokenKind::Ident
                && (usize_method(cx.text(j - 1)) || wide.contains(cx.text(j - 1)))
        }
        _ => false,
    }
}

pub fn check(cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
    let wide = wide_idents(cx);
    for i in 0..cx.code.len() {
        if cx.in_test(i) || cx.kind(i) != TokenKind::Ident || cx.text(i) != "as" {
            continue;
        }
        // `as` must be an operator here, not `use x as y` renaming or
        // a stray ident: the next token is the target type and must be
        // a primitive numeric type name.
        let Some(target) = (i + 1 < cx.code.len()).then(|| cx.text(i + 1)) else {
            continue;
        };
        if !numeric_type(target) {
            continue;
        }
        // `use … as u8`-style renames would be bizarre but legal; rule
        // them out by requiring the previous token to be expression-
        // like (ident, literal, or closing delimiter).
        if i == 0 {
            continue;
        }
        let prev_ok = matches!(
            cx.kind(i - 1),
            TokenKind::Ident | TokenKind::Int | TokenKind::Float
        ) || matches!(cx.text(i - 1), ")" | "]");
        if !prev_ok {
            continue;
        }
        if target == "f64" {
            // Exempt unless the source is recognizably 64-bit+.
            if !wide_source(cx, i - 1, &wide) {
                continue;
            }
            cx.emit(
                out,
                "lossy-cast",
                i,
                i + 1,
                "`as f64` from a 64-bit integer source — values above 2^53 round silently; \
                 use a checked narrowing first, or waive with the bound that keeps this exact"
                    .into(),
            );
            continue;
        }
        cx.emit(
            out,
            "lossy-cast",
            i,
            i + 1,
            format!(
                "`as {target}` can truncate or wrap — use `try_into` with a typed \
                 `fault::Error`, or waive with a proof the value is in range"
            ),
        );
    }
}
