//! `lossy-cast` — every truncating `as` cast is either typed away or
//! argued safe in `analyze.toml`.
//!
//! `as` never fails: integer→integer wraps, float→integer saturates,
//! `f64`→`f32` rounds. In a pipeline whose whole value is numeric
//! trust, a silently wrapped row count or saturated index is the worst
//! kind of bug — wrong *and* quiet (PR 4 found exactly this shape in
//! `dse::data` and converted the sites to `try_into` + typed
//! `fault::Error`). This pass flags any `as` cast in non-test code
//! whose **target** can lose information:
//!
//! * all integer targets (`u8…u128`, `i8…i128`, `usize`, `isize`) —
//!   the source may be wider, signed differently, or a float;
//! * `f32` — halves the mantissa of anything interesting.
//!
//! `as f64` is deliberately exempt: the token stream cannot see source
//! types, and in this workspace every integer that reaches arithmetic
//! is a row/column/config count far below 2^53, where `usize → f64` is
//! exact. That policy is documented in DESIGN.md §10; a cast whose
//! source could exceed 2^53 must not hide behind it.
//!
//! Casts that are provably in range (enum codes, clamped indices,
//! dimensions bounded by construction) carry a one-line justification
//! in `analyze.toml`, pinned to the line's content hash so the waiver
//! dies when the code changes.

use super::{numeric_type, FileCx};
use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;

pub fn check(cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
    for i in 0..cx.code.len() {
        if cx.in_test(i) || cx.kind(i) != TokenKind::Ident || cx.text(i) != "as" {
            continue;
        }
        // `as` must be an operator here, not `use x as y` renaming or
        // a stray ident: the next token is the target type and must be
        // a primitive numeric type name.
        let Some(target) = (i + 1 < cx.code.len()).then(|| cx.text(i + 1)) else {
            continue;
        };
        if !numeric_type(target) || target == "f64" {
            continue;
        }
        // `use … as u8`-style renames would be bizarre but legal; rule
        // them out by requiring the previous token to be expression-
        // like (ident, literal, or closing delimiter).
        if i == 0 {
            continue;
        }
        let prev_ok = matches!(
            cx.kind(i - 1),
            TokenKind::Ident | TokenKind::Int | TokenKind::Float
        ) || matches!(cx.text(i - 1), ")" | "]");
        if !prev_ok {
            continue;
        }
        cx.emit(
            out,
            "lossy-cast",
            i,
            i + 1,
            format!(
                "`as {target}` can truncate or wrap — use `try_into` with a typed \
                 `fault::Error`, or waive with a proof the value is in range"
            ),
        );
    }
}
