//! The lint registry and the per-file context passes run against.
//!
//! Each pass is a plain function over [`FileCx`]: the lexed token
//! stream (trivia already filtered out, spans preserved), the test
//! regions to skip, and the source file for spans/excerpts. Passes
//! append [`Diagnostic`]s; waiver matching happens later in the
//! driver, so passes stay pure detectors.
//!
//! To add a pass: write `fn check(cx: &FileCx, out: &mut Vec<Diagnostic>)`
//! in a new module, give it a kebab-case name, and append it to
//! [`LINTS`]. The fixture corpus (`tests/fixtures/<name>/`) and
//! golden test pick it up by name.

pub mod bare_assert;
pub mod error_policy;
pub mod float_order;
pub mod lossy_cast;
pub mod nondet_iter;
pub mod panic_policy;
pub mod unsafe_region;

use crate::diagnostics::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::regions::TestRegions;
use crate::source::SourceFile;

/// A lint pass: inspects one file, appends findings.
pub type LintFn = fn(&FileCx<'_>, &mut Vec<Diagnostic>);

/// Every per-file pass the analyzer runs, in reporting order.
pub const LINTS: &[(&str, LintFn)] = &[
    ("panic-policy", panic_policy::check),
    ("bare-assert", bare_assert::check),
    ("float-order", float_order::check),
    ("nondet-iter", nondet_iter::check),
    ("lossy-cast", lossy_cast::check),
    ("error-policy", error_policy::check),
    ("unsafe-region", unsafe_region::check),
];

/// The workspace-level passes (`analyze::index`): they run once over
/// the cross-file fact index, not per file, but share the same waiver
/// machinery and count toward the full lint set in `--list-lints`.
pub const WORKSPACE_PASSES: &[&str] = &["dead-pub-api", "env-registry", "nondet-source"];

/// Map a lint name parsed back out of JSON (diagnostic cache records)
/// to its `'static` registry string. `None` means the cache was
/// written by a different lint set and must be treated as a miss.
pub(crate) fn static_lint_name(name: &str) -> Option<&'static str> {
    LINTS
        .iter()
        .map(|(n, _)| *n)
        .chain(WORKSPACE_PASSES.iter().copied())
        .find(|n| *n == name)
}

/// Everything a pass needs to inspect one file.
pub struct FileCx<'a> {
    /// The file (path, text, line index).
    pub file: &'a SourceFile,
    /// Code tokens only — trivia (whitespace/comments) removed, so
    /// `code[i + 1]` is the next *meaningful* token. Spans still index
    /// the original text.
    pub code: Vec<Token>,
    /// Test-gated byte ranges; findings inside them are suppressed.
    pub regions: TestRegions,
    /// True for a crate's `src/main.rs` (binary entry point), where
    /// `error-policy` permits `std::process::exit`.
    pub is_main: bool,
}

impl<'a> FileCx<'a> {
    /// Build the context for one file from its full token stream.
    pub fn new(file: &'a SourceFile, tokens: &[Token], is_main: bool) -> FileCx<'a> {
        let regions = crate::regions::test_regions(&file.text, tokens);
        let code = tokens.iter().filter(|t| !t.is_trivia()).copied().collect();
        FileCx {
            file,
            code,
            regions,
            is_main,
        }
    }

    /// Text of code token `i`.
    pub fn text(&self, i: usize) -> &str {
        self.code[i].text(&self.file.text)
    }

    /// Kind of code token `i`.
    pub fn kind(&self, i: usize) -> TokenKind {
        self.code[i].kind
    }

    /// True if code token `i` lies in a test-gated region.
    pub(crate) fn in_test(&self, i: usize) -> bool {
        self.regions.contains(self.code[i].start)
    }

    /// Does token `i` exist and carry exactly this text?
    pub(crate) fn is(&self, i: usize, text: &str) -> bool {
        i < self.code.len() && self.text(i) == text
    }

    /// Emit a diagnostic anchored on code tokens `[from, to]`.
    pub fn emit(
        &self,
        out: &mut Vec<Diagnostic>,
        lint: &'static str,
        from: usize,
        to: usize,
        message: String,
    ) {
        let start = self.code[from].start;
        let end = self.code[to.min(self.code.len() - 1)].end;
        out.push(Diagnostic::new(
            lint,
            self.file,
            start,
            end.saturating_sub(start),
            message,
        ));
    }

    /// Index of the delimiter matching the opener at `open_idx`
    /// (`(`/`)`, `[`/`]`, `{`/`}`), or `None` if unbalanced. Only the
    /// opener's own delimiter class is counted, so `(a[0])` from the
    /// `(` matches the final `)`.
    pub(crate) fn matching_close(&self, open_idx: usize) -> Option<usize> {
        let (open, close) = match self.text(open_idx) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return None,
        };
        let mut depth = 0usize;
        for i in open_idx..self.code.len() {
            let t = self.text(i);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
        }
        None
    }

    /// Index of the statement-terminating `;` at delimiter depth 0,
    /// scanning forward from `from` (exclusive of nested bodies), or
    /// the last token if none is found. A `{` at depth 0 also ends the
    /// statement scan (block expression / loop body boundary).
    pub(crate) fn statement_end(&self, from: usize) -> usize {
        let (mut p, mut b, mut c) = (0i32, 0i32, 0i32);
        for i in from..self.code.len() {
            match self.text(i) {
                "(" => p += 1,
                ")" => p -= 1,
                "[" => b += 1,
                "]" => b -= 1,
                "{" => c += 1,
                "}" => c -= 1,
                ";" if p <= 0 && b <= 0 && c <= 0 => return i,
                _ => {}
            }
            if c < 0 || p < 0 || b < 0 {
                return i;
            }
        }
        self.code.len().saturating_sub(1)
    }
}

/// Is this identifier one of Rust's primitive numeric types that an
/// `as` cast can target?
pub(crate) fn numeric_type(text: &str) -> bool {
    matches!(
        text,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
            | "f32"
            | "f64"
    )
}
