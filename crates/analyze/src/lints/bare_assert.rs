//! `bare-assert` — library asserts must name the violated invariant.
//!
//! An `assert!` that does belong in library code is a true invariant;
//! when it fires in production the message is all the operator gets,
//! so a bare condition is not acceptable. This pass flags
//! `assert!`/`assert_eq!`/`assert_ne!` invocations in non-test code
//! whose argument list contains no string literal.
//!
//! Unlike the awk heuristic this replaces, the scan is multi-line:
//! the macro's delimiters are matched over the token stream, so a
//! message on line three of a wrapped assert counts, and a genuinely
//! message-less multi-line assert no longer slips through.
//! `debug_assert*` and `prop_assert*` stay exempt (debug-only and
//! test-only respectively).

use super::FileCx;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;

pub fn check(cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
    for i in 0..cx.code.len() {
        if cx.in_test(i) || cx.kind(i) != TokenKind::Ident {
            continue;
        }
        if !matches!(cx.text(i), "assert" | "assert_eq" | "assert_ne") {
            continue;
        }
        if !cx.is(i + 1, "!") {
            continue;
        }
        let open = i + 2;
        if open >= cx.code.len() || !matches!(cx.text(open), "(" | "[" | "{") {
            continue;
        }
        let Some(close) = cx.matching_close(open) else {
            continue; // unbalanced — the file will not compile anyway
        };
        let has_message = (open + 1..close).any(|j| {
            matches!(cx.kind(j), TokenKind::Str | TokenKind::RawStr)
                && cx.text(j).contains(|c: char| c.is_alphanumeric())
        });
        if !has_message {
            cx.emit(
                out,
                "bare-assert",
                i,
                i + 1,
                format!(
                    "`{}!` without a message — name the violated invariant so the \
                     panic is actionable",
                    cx.text(i)
                ),
            );
        }
    }
}
