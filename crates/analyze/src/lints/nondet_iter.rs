//! `nondet-iter` — hash-order must never reach output or accumulation.
//!
//! The serve layer promises byte-identical output for any worker
//! count, and model selection promises identical rankings for a given
//! seed. Both promises die silently the moment a `HashMap`/`HashSet`
//! iteration order leaks into an output stream, a float accumulation,
//! or a fitting path — the program stays correct-looking and merely
//! stops being reproducible. This pass makes the guarantee structural:
//!
//! 1. It collects every binding, field, or parameter in the file whose
//!    ascribed type names `HashMap`/`HashSet`, plus `let` bindings
//!    initialised from `HashMap::…`/`HashSet::…` constructors.
//! 2. It flags order-producing calls on those names (`iter`, `keys`,
//!    `values`, `drain`, `into_iter`, …) and `for … in [&[mut]] name`
//!    loops over them.
//! 3. A site is suppressed when a sort intervenes nearby — a
//!    `sort*` call or a `BTreeMap`/`BTreeSet` collection in the same
//!    or the immediately following statements — because then the hash
//!    order is laundered into a total order before anyone observes it.
//!
//! Keyed lookups (`get`, `entry`, `contains_key`, `insert`, `remove`)
//! are order-free and never flagged. Sites that iterate but provably
//! cannot leak order (e.g. re-keying into another map) are waived in
//! `analyze.toml` with that argument spelled out.

use super::FileCx;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;
use std::collections::BTreeSet;

/// Methods on a hash collection that expose iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Idents whose presence near the iteration site launders the order.
const SORTERS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
];

pub fn check(cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
    let names = hash_names(cx);
    if names.is_empty() {
        return;
    }
    for i in 0..cx.code.len() {
        if cx.in_test(i) || cx.kind(i) != TokenKind::Ident {
            continue;
        }
        if !names.contains(cx.text(i)) {
            continue;
        }
        // `name.iter()` / `name.values()` / … method-chain iteration.
        let chained = cx.is(i + 1, ".")
            && i + 2 < cx.code.len()
            && ITER_METHODS.contains(&cx.text(i + 2))
            && cx.is(i + 3, "(");
        // `for … in &name {` / `for … in name {` — the name is the last
        // token of the loop-header expression.
        let for_iterated = cx.is(i + 1, "{") && in_for_header(cx, i);
        if (chained || for_iterated) && !sorted_nearby(cx, i) {
            let to = if chained { i + 3 } else { i };
            cx.emit(
                out,
                "nondet-iter",
                i,
                to,
                format!(
                    "iteration over hash collection `{}` — hash order is nondeterministic; \
                     sort the results, use a BTreeMap/BTreeSet, or waive with the argument \
                     that order cannot reach output",
                    cx.text(i)
                ),
            );
        }
    }
}

/// All identifiers in this file bound to a `HashMap`/`HashSet` type,
/// found by walking backwards from each occurrence of the type name
/// through type-position tokens to the `name :` ascription (covers
/// `let`, fields, and params) or through `=` to a `let name =
/// HashMap::…` initializer.
fn hash_names(cx: &FileCx<'_>) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..cx.code.len() {
        if cx.kind(i) != TokenKind::Ident || !matches!(cx.text(i), "HashMap" | "HashSet") {
            continue;
        }
        let mut saw_colon = false;
        let mut j = i;
        while j > 0 {
            j -= 1;
            match cx.text(j) {
                ":" => saw_colon = true,
                "<" | "&" | "mut" | "dyn" => {}
                "std" | "collections" => {}
                "=" if !saw_colon => {
                    // `name = HashMap::…` initializer form.
                    if j > 0 && cx.kind(j - 1) == TokenKind::Ident {
                        names.insert(cx.text(j - 1).to_string());
                    }
                    break;
                }
                _ => {
                    if saw_colon && cx.kind(j) == TokenKind::Ident {
                        names.insert(cx.text(j).to_string());
                    }
                    break;
                }
            }
        }
    }
    names
}

/// Is token `i` (an ident directly followed by `{`) the tail of a
/// `for … in …` loop-header expression? Scan back for a `for` with an
/// `in` between, without crossing a statement boundary.
fn in_for_header(cx: &FileCx<'_>, i: usize) -> bool {
    let mut saw_in = false;
    let mut j = i;
    let lo = i.saturating_sub(40);
    while j > lo {
        j -= 1;
        match cx.text(j) {
            "in" => saw_in = true,
            "for" => return saw_in,
            ";" | "{" | "}" => return false,
            _ => {}
        }
    }
    false
}

/// Does a sort (or B-tree collection) appear near the iteration site —
/// inside the rest of its statement (including a loop body) or the two
/// statements that follow at the same nesting depth? The window never
/// escapes the enclosing scope, so a sort in the *next* function
/// cannot launder this site's order.
fn sorted_nearby(cx: &FileCx<'_>, i: usize) -> bool {
    let mut semis = 0;
    let mut depth = 0i32;
    let window_end = cx.code.len().min(i + 150);
    for j in i..window_end {
        let t = cx.text(j);
        if cx.kind(j) == TokenKind::Ident && SORTERS.contains(&t) {
            return true;
        }
        match t {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return false; // left the enclosing scope
                }
            }
            ";" if depth == 0 => {
                semis += 1;
                if semis > 2 {
                    return false;
                }
            }
            _ => {}
        }
    }
    false
}
