//! `nondet-iter` — hash-order must never reach output or accumulation.
//!
//! The serve layer promises byte-identical output for any worker
//! count, and model selection promises identical rankings for a given
//! seed. Both promises die silently the moment a `HashMap`/`HashSet`
//! iteration order leaks into an output stream, a float accumulation,
//! or a fitting path — the program stays correct-looking and merely
//! stops being reproducible. This pass makes the guarantee structural:
//!
//! 1. It collects every binding, field, or parameter in the file whose
//!    ascribed type names `HashMap`/`HashSet`, plus `let` bindings
//!    initialised from `HashMap::…`/`HashSet::…` constructors.
//! 2. It flags order-producing calls on those names (`iter`, `keys`,
//!    `values`, `drain`, `into_iter`, …) and `for … in [&[mut]] name`
//!    loops over them.
//! 3. A site is suppressed when a sort intervenes before the order can
//!    escape: a `.sort*(…)` method call or `BTreeMap`/`BTreeSet`
//!    collection inside the flagged statement itself (chain or loop
//!    body), or in one of the next two statements *linked* to the
//!    flagged one by a shared identifier — then the hash order is
//!    laundered into a total order before anyone observes it. The link
//!    requirement means a sort on an unrelated vector, or a binding
//!    merely named `sort`, does not excuse a real hash-order leak.
//!
//! Keyed lookups (`get`, `entry`, `contains_key`, `insert`, `remove`)
//! are order-free and never flagged. Sites that iterate but provably
//! cannot leak order (e.g. re-keying into another map) are waived in
//! `analyze.toml` with that argument spelled out.

use super::FileCx;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;
use std::collections::BTreeSet;

/// Methods on a hash collection that expose iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Method names that impose a total order on the receiver in place.
const SORT_METHODS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

pub fn check(cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
    let names = hash_names(cx);
    if names.is_empty() {
        return;
    }
    for i in 0..cx.code.len() {
        if cx.in_test(i) || cx.kind(i) != TokenKind::Ident {
            continue;
        }
        if !names.contains(cx.text(i)) {
            continue;
        }
        // `name.iter()` / `name.values()` / … method-chain iteration.
        let chained = cx.is(i + 1, ".")
            && i + 2 < cx.code.len()
            && ITER_METHODS.contains(&cx.text(i + 2))
            && cx.is(i + 3, "(");
        // `for … in &name {` / `for … in name {` — the name is the last
        // token of the loop-header expression.
        let for_iterated = cx.is(i + 1, "{") && in_for_header(cx, i);
        if (chained || for_iterated) && !sorted_nearby(cx, i) {
            let to = if chained { i + 3 } else { i };
            cx.emit(
                out,
                "nondet-iter",
                i,
                to,
                format!(
                    "iteration over hash collection `{}` — hash order is nondeterministic; \
                     sort the results, use a BTreeMap/BTreeSet, or waive with the argument \
                     that order cannot reach output",
                    cx.text(i)
                ),
            );
        }
    }
}

/// All identifiers in this file bound to a `HashMap`/`HashSet` type,
/// found by walking backwards from each occurrence of the type name
/// through type-position tokens to the `name :` ascription (covers
/// `let`, fields, and params) or through `=` to a `let name =
/// HashMap::…` initializer.
fn hash_names(cx: &FileCx<'_>) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..cx.code.len() {
        if cx.kind(i) != TokenKind::Ident || !matches!(cx.text(i), "HashMap" | "HashSet") {
            continue;
        }
        let mut saw_colon = false;
        let mut j = i;
        while j > 0 {
            j -= 1;
            match cx.text(j) {
                ":" => saw_colon = true,
                "<" | "&" | "mut" | "dyn" => {}
                "std" | "collections" => {}
                "=" if !saw_colon => {
                    // `name = HashMap::…` initializer form.
                    if j > 0 && cx.kind(j - 1) == TokenKind::Ident {
                        names.insert(cx.text(j - 1).to_string());
                    }
                    break;
                }
                _ => {
                    if saw_colon && cx.kind(j) == TokenKind::Ident {
                        names.insert(cx.text(j).to_string());
                    }
                    break;
                }
            }
        }
    }
    names
}

/// Is token `i` (an ident directly followed by `{`) the tail of a
/// `for … in …` loop-header expression? Scan back for a `for` with an
/// `in` between, without crossing a statement boundary.
fn in_for_header(cx: &FileCx<'_>, i: usize) -> bool {
    let mut saw_in = false;
    let mut j = i;
    let lo = i.saturating_sub(40);
    while j > lo {
        j -= 1;
        match cx.text(j) {
            "in" => saw_in = true,
            "for" => return saw_in,
            ";" | "{" | "}" => return false,
            _ => {}
        }
    }
    false
}

/// Is token `j` a sorter in effective position: a `sort*` *method
/// call* (`.sort_unstable()`, `.sort_by(…)`) or a `BTreeMap`/`BTreeSet`
/// type name (ascription or `collect::<BTreeMap<_, _>>` turbofish)?
/// A binding merely *named* `sort` is neither.
fn sorter_at(cx: &FileCx<'_>, j: usize) -> bool {
    if cx.kind(j) != TokenKind::Ident {
        return false;
    }
    match cx.text(j) {
        "BTreeMap" | "BTreeSet" => true,
        t if SORT_METHODS.contains(&t) => j > 0 && cx.is(j - 1, ".") && cx.is(j + 1, "("),
        _ => false,
    }
}

/// Identifiers too generic to establish a link between statements —
/// keywords and ubiquitous type names that would connect nearly any
/// two adjacent statements.
fn too_generic(t: &str) -> bool {
    matches!(
        t,
        "let"
            | "mut"
            | "in"
            | "for"
            | "if"
            | "else"
            | "while"
            | "loop"
            | "match"
            | "as"
            | "ref"
            | "move"
            | "return"
            | "fn"
            | "pub"
            | "use"
            | "where"
            | "self"
            | "Self"
            | "Some"
            | "None"
            | "Ok"
            | "Err"
            | "Vec"
            | "String"
            | "str"
    ) || crate::lints::numeric_type(t)
}

/// Start of the statement containing token `i`: the token after the
/// nearest preceding `;`/`{`/`}`, bounded at 60 tokens back.
fn statement_start(cx: &FileCx<'_>, i: usize) -> usize {
    let lo = i.saturating_sub(60);
    let mut j = i;
    while j > lo {
        if matches!(cx.text(j - 1), ";" | "{" | "}") {
            return j;
        }
        j -= 1;
    }
    j
}

/// Does a sort launder this site's order before anyone observes it?
/// Two placements count:
///
/// * inside the remainder of the flagged statement — the method chain
///   itself (`….collect::<BTreeMap<_, _>>()`) or a loop body;
/// * in one of the next two statements at the same nesting depth,
///   provided that statement is *linked* to the flagged one: it
///   mentions an identifier the flagged statement bound or used
///   (`let v: Vec<_> = m.keys().collect(); v.sort();`).
///
/// Only non-method-position identifiers (bindings, paths, types — not
/// `.iter`, `.push`) establish links, and only sorters in effective
/// position (see [`sorter_at`]) count, so an unrelated `other.sort()`
/// or a variable named `sort` near a real leak suppresses nothing.
/// The window never escapes the enclosing scope, so a sort in the
/// *next* function cannot launder this site's order.
fn sorted_nearby(cx: &FileCx<'_>, i: usize) -> bool {
    // Link set: identifiers of the flagged statement, growing as the
    // forward scan walks the rest of that statement (incl. loop body).
    let mut linked: BTreeSet<&str> = BTreeSet::new();
    for k in statement_start(cx, i)..i {
        if cx.kind(k) == TokenKind::Ident
            && !cx.is(k.wrapping_sub(1), ".")
            && !too_generic(cx.text(k))
        {
            linked.insert(cx.text(k));
        }
    }
    let window_end = cx.code.len().min(i + 150);
    let (mut paren, mut bracket, mut brace) = (0i32, 0i32, 0i32);
    let mut in_flagged_stmt = true;
    let mut boundaries = 0; // statement ends seen: flagged + 2 followers
    let mut stmt_sorter = false;
    let mut stmt_linked = false;
    for j in i..window_end {
        let t = cx.text(j);
        if sorter_at(cx, j) {
            if in_flagged_stmt {
                return true;
            }
            stmt_sorter = true;
        }
        if cx.kind(j) == TokenKind::Ident && !cx.is(j.wrapping_sub(1), ".") && !too_generic(t) {
            if in_flagged_stmt {
                linked.insert(t);
            } else if linked.contains(t) {
                stmt_linked = true;
            }
        }
        let mut stmt_boundary = false;
        match t {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" => brace += 1,
            "}" => {
                brace -= 1;
                if brace < 0 {
                    return false; // left the enclosing scope
                }
                // A `}` back at depth 0 closes a block statement
                // (loop/if body) — a statement end with no `;`.
                stmt_boundary = brace == 0 && paren <= 0 && bracket <= 0;
            }
            ";" if paren <= 0 && bracket <= 0 && brace == 0 => stmt_boundary = true,
            _ => {}
        }
        if stmt_boundary {
            if in_flagged_stmt {
                in_flagged_stmt = false;
            } else {
                if stmt_sorter && stmt_linked {
                    return true;
                }
                stmt_sorter = false;
                stmt_linked = false;
            }
            boundaries += 1;
            if boundaries > 2 {
                return false;
            }
        }
    }
    stmt_sorter && stmt_linked
}
