//! `panic-policy` — no panicking escape hatches in library code.
//!
//! PR 2 made every fallible path return the typed `fault::Error`
//! hierarchy; this pass keeps it that way. In non-test code it flags:
//!
//! * `.unwrap()` — propagate with `?`, recover, or `expect("invariant")`
//! * `panic!`, `todo!`, `unimplemented!` — return a typed error instead
//! * `.expect(…)` whose argument is not a non-empty string literal —
//!   an `expect` is only acceptable when it *documents* the invariant
//!   it relies on, so a computed or empty message defeats the point
//!
//! `unreachable!` is deliberately allowed: it marks arms the type
//! system cannot rule out but logic does, and converting those to
//! errors would invent failure paths that cannot happen.

use super::FileCx;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;

pub fn check(cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
    for i in 0..cx.code.len() {
        if cx.in_test(i) || cx.kind(i) != TokenKind::Ident {
            continue;
        }
        match cx.text(i) {
            "unwrap" if i > 0 && cx.is(i - 1, ".") && cx.is(i + 1, "(") && cx.is(i + 2, ")") => {
                cx.emit(
                    out,
                    "panic-policy",
                    i - 1,
                    i + 2,
                    "`.unwrap()` in library code — propagate with `?`, recover, or \
                     `expect(\"<documented invariant>\")`"
                        .into(),
                );
            }
            // UFCS/path form: `Option::unwrap(x)` / `Result::unwrap(r)`
            // panics exactly like the method form.
            "unwrap" if i >= 2 && cx.is(i - 1, ":") && cx.is(i - 2, ":") && cx.is(i + 1, "(") => {
                cx.emit(
                    out,
                    "panic-policy",
                    i - 2,
                    i + 1,
                    "path-form `unwrap(…)` in library code — propagate with `?`, recover, \
                     or `expect(\"<documented invariant>\")`"
                        .into(),
                );
            }
            name @ ("panic" | "todo" | "unimplemented") if cx.is(i + 1, "!") => {
                cx.emit(
                    out,
                    "panic-policy",
                    i,
                    i + 1,
                    format!("`{name}!` in library code — return a typed `fault::Error` instead"),
                );
            }
            "expect" if i > 0 && cx.is(i - 1, ".") && cx.is(i + 1, "(") => {
                // The argument must *be* a string literal (not merely
                // contain one): a non-empty message token right after
                // the `(`, followed by `)` or a format argument list.
                let arg = i + 2;
                let documented = arg < cx.code.len()
                    && matches!(cx.kind(arg), TokenKind::Str | TokenKind::RawStr)
                    && cx.text(arg).contains(|c: char| c.is_alphanumeric());
                if !documented {
                    cx.emit(
                        out,
                        "panic-policy",
                        i - 1,
                        i + 1,
                        "`.expect()` without a literal message — the message must document \
                         the invariant that makes this infallible"
                            .into(),
                    );
                }
            }
            _ => {}
        }
    }
}
