//! `analyze.toml` — span-pinned waivers with content hashes.
//!
//! A waiver grants one finding at one location, and only while the
//! flagged line's content is unchanged:
//!
//! ```toml
//! [[waiver]]
//! lint = "lossy-cast"
//! path = "crates/linalg/src/matrix.rs"
//! line = 42
//! hash = "9f8e7d6c5b4a3f21"          # content hash from the diagnostic
//! reason = "dims come from Table::shape, bounded by construction"
//! ```
//!
//! All five keys are required and `reason` must be a real justification
//! (non-empty, not a `TODO`). Staleness is two-sided and fatal:
//!
//! * a finding whose waiver hash no longer matches the line text means
//!   the code changed under the waiver — the waiver is reported stale
//!   and the finding stands;
//! * a waiver that matches no finding at all means the code it excused
//!   moved or disappeared — reported stale so dead waivers cannot
//!   accumulate and silently excuse future findings.
//!
//! The hash comes straight off the diagnostic (`--format json` emits
//! it, as does `--emit-waivers`), so pinning a reviewed finding is
//! copy-paste, not archaeology.
//!
//! The env-var registry lives in the same file: every
//! `std::env::var("PERFPREDICT_*")` read in the workspace must match a
//! declared `[[env]]` entry with a one-line doc string, so runtime
//! knobs cannot accumulate undocumented:
//!
//! ```toml
//! [[env]]
//! name = "PERFPREDICT_NN_SCALAR"
//! doc = "1 = force the per-sample scalar NN path (bit-exactness oracle)"
//! ```
//!
//! The `env-registry` pass enforces both directions (see
//! [`crate::index`]): an undeclared read is a finding at the read site,
//! and a declared entry no process reads is stale, exactly like a
//! waiver matching no finding.
//!
//! The parser is a deliberate TOML subset (`[[waiver]]`/`[[env]]`
//! tables with string/integer scalars and `#` comments) — enough for
//! this file format, zero dependencies, and strict about anything it
//! does not understand.

use fault::{Error, Result};

/// One parsed waiver entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    pub lint: String,
    pub path: String,
    pub line: usize,
    pub hash: String,
    pub reason: String,
    /// Line in `analyze.toml` where this entry starts (for messages).
    pub defined_at: usize,
}

/// One declared environment variable from the `[[env]]` registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvDecl {
    pub name: String,
    pub doc: String,
    /// Line in `analyze.toml` where this entry starts (for messages).
    pub defined_at: usize,
}

/// Everything `analyze.toml` configures.
#[derive(Debug, Clone, Default)]
pub struct Config {
    pub waivers: Vec<Waiver>,
    pub envs: Vec<EnvDecl>,
}

/// Parse the waiver file text into waivers only — the historical
/// surface, kept for callers that lint ad-hoc file lists where the env
/// registry does not apply.
pub fn parse(text: &str, source_name: &str) -> Result<Vec<Waiver>> {
    parse_config(text, source_name).map(|c| c.waivers)
}

/// Parse the full config: `[[waiver]]` and `[[env]]` tables. Strict:
/// unknown keys, missing keys, empty/TODO reasons and docs, and
/// malformed lines are `Error::InvalidInput`.
pub fn parse_config(text: &str, source_name: &str) -> Result<Config> {
    let mut config = Config::default();
    let mut current: Option<Partial> = None;
    let finish = |p: Partial, config: &mut Config| -> Result<()> {
        match p {
            Partial::Waiver(w) => config.waivers.push(w.finish(source_name)?),
            Partial::Env(e) => config.envs.push(e.finish(source_name)?),
        }
        Ok(())
    };
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[waiver]]" || line == "[[env]]" {
            if let Some(p) = current.take() {
                finish(p, &mut config)?;
            }
            current = Some(if line == "[[waiver]]" {
                Partial::Waiver(PartialWaiver::new(lineno))
            } else {
                Partial::Env(PartialEnv::new(lineno))
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(Error::invalid(format!(
                "{source_name}:{lineno}: expected `key = value`, `[[waiver]]`, or `[[env]]`, \
                 got `{line}`"
            )));
        };
        let Some(p) = current.as_mut() else {
            return Err(Error::invalid(format!(
                "{source_name}:{lineno}: `{}` before the first [[waiver]]/[[env]] table",
                key.trim()
            )));
        };
        match p {
            Partial::Waiver(w) => w.set(key.trim(), value.trim(), source_name, lineno)?,
            Partial::Env(e) => e.set(key.trim(), value.trim(), source_name, lineno)?,
        }
    }
    if let Some(p) = current.take() {
        finish(p, &mut config)?;
    }
    Ok(config)
}

enum Partial {
    Waiver(PartialWaiver),
    Env(PartialEnv),
}

#[derive(Default)]
struct PartialEnv {
    defined_at: usize,
    name: Option<String>,
    doc: Option<String>,
}

impl PartialEnv {
    fn new(defined_at: usize) -> PartialEnv {
        PartialEnv {
            defined_at,
            ..PartialEnv::default()
        }
    }

    fn set(&mut self, key: &str, value: &str, src: &str, lineno: usize) -> Result<()> {
        let unquote = |v: &str| -> Result<String> {
            let inner = v
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| {
                    Error::invalid(format!("{src}:{lineno}: `{key}` must be a quoted string"))
                })?;
            Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
        };
        match key {
            "name" => self.name = Some(unquote(value)?),
            "doc" => self.doc = Some(unquote(value)?),
            other => {
                return Err(Error::invalid(format!(
                    "{src}:{lineno}: unknown env key `{other}` (expected name/doc)"
                )))
            }
        }
        Ok(())
    }

    fn finish(self, src: &str) -> Result<EnvDecl> {
        let at = self.defined_at;
        let missing = |k: &str| {
            Error::invalid(format!(
                "{src}:{at}: env entry is missing required key `{k}`"
            ))
        };
        let e = EnvDecl {
            name: self.name.ok_or_else(|| missing("name"))?,
            doc: self.doc.ok_or_else(|| missing("doc"))?,
            defined_at: at,
        };
        if e.name.trim().is_empty() || e.name.contains(|c: char| c.is_whitespace()) {
            return Err(Error::invalid(format!(
                "{src}:{at}: env `name` must be a single non-empty variable name"
            )));
        }
        let d = e.doc.trim();
        if d.is_empty()
            || d.eq_ignore_ascii_case("todo")
            || d.to_ascii_lowercase().contains("todo:")
        {
            return Err(Error::invalid(format!(
                "{src}:{at}: env `doc` must be a real one-line description, not empty/TODO"
            )));
        }
        Ok(e)
    }
}

/// Strip a `#` comment, respecting `"…"` strings. Escapes are tracked
/// only inside a string, and `\\` is consumed as a complete pair, so a
/// string ending in an escaped backslash (`"ends with \\"`) still
/// closes and the comment after it is stripped.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if in_str {
            if escaped {
                escaped = false; // this char is consumed by the escape
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == '#' {
            return &line[..i];
        }
    }
    line
}

#[derive(Default)]
struct PartialWaiver {
    defined_at: usize,
    lint: Option<String>,
    path: Option<String>,
    line: Option<usize>,
    hash: Option<String>,
    reason: Option<String>,
}

impl PartialWaiver {
    fn new(defined_at: usize) -> PartialWaiver {
        PartialWaiver {
            defined_at,
            ..PartialWaiver::default()
        }
    }

    fn set(&mut self, key: &str, value: &str, src: &str, lineno: usize) -> Result<()> {
        let unquote = |v: &str| -> Result<String> {
            let inner = v
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| {
                    Error::invalid(format!("{src}:{lineno}: `{key}` must be a quoted string"))
                })?;
            Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
        };
        match key {
            "lint" => self.lint = Some(unquote(value)?),
            "path" => self.path = Some(unquote(value)?),
            "hash" => self.hash = Some(unquote(value)?),
            "reason" => self.reason = Some(unquote(value)?),
            "line" => {
                self.line = Some(value.parse::<usize>().map_err(|_| {
                    Error::invalid(format!("{src}:{lineno}: `line` must be an integer"))
                })?)
            }
            other => {
                return Err(Error::invalid(format!(
                    "{src}:{lineno}: unknown waiver key `{other}`"
                )))
            }
        }
        Ok(())
    }

    fn finish(self, src: &str) -> Result<Waiver> {
        let at = self.defined_at;
        let missing =
            |k: &str| Error::invalid(format!("{src}:{at}: waiver is missing required key `{k}`"));
        let w = Waiver {
            lint: self.lint.ok_or_else(|| missing("lint"))?,
            path: self.path.ok_or_else(|| missing("path"))?,
            line: self.line.ok_or_else(|| missing("line"))?,
            hash: self.hash.ok_or_else(|| missing("hash"))?,
            reason: self.reason.ok_or_else(|| missing("reason"))?,
            defined_at: at,
        };
        let r = w.reason.trim();
        if r.is_empty()
            || r.eq_ignore_ascii_case("todo")
            || r.to_ascii_lowercase().contains("todo:")
        {
            return Err(Error::invalid(format!(
                "{src}:{at}: waiver reason must be a real justification, not empty/TODO"
            )));
        }
        if w.hash.len() != 16 || !w.hash.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(Error::invalid(format!(
                "{src}:{at}: waiver hash must be 16 hex digits (copy it from the diagnostic)"
            )));
        }
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# header comment
[[waiver]]
lint = "lossy-cast"
path = "crates/x/src/y.rs"
line = 42                       # trailing comment
hash = "0123456789abcdef"
reason = "k is a column index, bounded by Table::width() <= 64"
"#;

    #[test]
    fn parses_a_valid_entry() {
        let w = parse(GOOD, "analyze.toml").expect("fixture parses");
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].lint, "lossy-cast");
        assert_eq!(w[0].line, 42);
        assert_eq!(w[0].hash, "0123456789abcdef");
    }

    #[test]
    fn rejects_missing_reason_and_todo_reason() {
        let no_reason = GOOD.replace(
            "reason = \"k is a column index, bounded by Table::width() <= 64\"",
            "",
        );
        assert!(parse(&no_reason, "t").is_err(), "missing reason must fail");
        let todo = GOOD.replace(
            "k is a column index, bounded by Table::width() <= 64",
            "TODO",
        );
        assert!(parse(&todo, "t").is_err(), "TODO reason must fail");
    }

    #[test]
    fn rejects_bad_hash_and_unknown_keys() {
        let bad_hash = GOOD.replace("0123456789abcdef", "xyz");
        assert!(parse(&bad_hash, "t").is_err(), "non-hex hash must fail");
        let unknown = GOOD.replace("line = 42", "spam = 42");
        assert!(parse(&unknown, "t").is_err(), "unknown key must fail");
    }

    #[test]
    fn rejects_keys_outside_a_table() {
        assert!(parse("lint = \"x\"\n", "t").is_err());
    }

    #[test]
    fn strip_comment_handles_escapes() {
        // Escaped backslash before the closing quote: the string still
        // closes and the trailing comment is stripped.
        assert_eq!(
            strip_comment(r#"reason = "ends with \\" # note"#).trim_end(),
            r#"reason = "ends with \\""#
        );
        // Escaped quote stays inside the string; `#` after it strips.
        assert_eq!(
            strip_comment(r#"reason = "a \" b" # note"#).trim_end(),
            r#"reason = "a \" b""#
        );
        // A `#` inside the string is content, not a comment.
        assert_eq!(
            strip_comment(r#"reason = "issue #42, see tracker""#),
            r#"reason = "issue #42, see tracker""#
        );
        // Double escaped backslash pair, then a real comment.
        assert_eq!(
            strip_comment(r#"path = "a\\\\" # four"#).trim_end(),
            r#"path = "a\\\\""#
        );
    }

    #[test]
    fn env_table_parses_alongside_waivers() {
        let text = format!(
            "{GOOD}\n[[env]]\nname = \"PERFPREDICT_LOG\"\ndoc = \"console sink verbosity\"\n"
        );
        let c = parse_config(&text, "analyze.toml").expect("mixed tables parse");
        assert_eq!(c.waivers.len(), 1);
        assert_eq!(c.envs.len(), 1);
        assert_eq!(c.envs[0].name, "PERFPREDICT_LOG");
        assert_eq!(c.envs[0].doc, "console sink verbosity");
    }

    #[test]
    fn env_table_rejects_todo_doc_and_bad_name() {
        let todo = "[[env]]\nname = \"PERFPREDICT_X\"\ndoc = \"TODO\"\n";
        assert!(parse_config(todo, "t").is_err(), "TODO doc must fail");
        let spaced = "[[env]]\nname = \"TWO WORDS\"\ndoc = \"d\"\n";
        assert!(
            parse_config(spaced, "t").is_err(),
            "name with space must fail"
        );
        let missing = "[[env]]\nname = \"PERFPREDICT_X\"\n";
        assert!(parse_config(missing, "t").is_err(), "missing doc must fail");
        let unknown = "[[env]]\nname = \"PERFPREDICT_X\"\ndoc = \"d\"\nreason = \"x\"\n";
        assert!(
            parse_config(unknown, "t").is_err(),
            "waiver key in env must fail"
        );
    }

    #[test]
    fn escaped_backslash_reason_round_trips() {
        let text = "[[waiver]]\nlint = \"lossy-cast\"\npath = \"c/x.rs\"\nline = 1\n\
                    hash = \"0123456789abcdef\"\nreason = \"ends with \\\\\" # cmt\n";
        let w = parse(text, "t").expect("escaped backslash before closing quote parses");
        assert_eq!(w[0].reason, "ends with \\");
    }
}
