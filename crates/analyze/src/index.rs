//! Cross-crate symbol index and the workspace-level passes.
//!
//! The seven token-stream lints see one file at a time; the three
//! passes here need the whole workspace:
//!
//! * `dead-pub-api` — a `pub` item never referenced outside its
//!   defining crate (integration tests, benches, and examples count as
//!   outside consumers) is unowned API surface: demote it, delete it,
//!   or waive it as deliberately exported.
//! * `env-registry` — every `std::env::var("PERFPREDICT_*")` read must
//!   match a declared `[[env]]` entry in `analyze.toml` carrying a
//!   one-line doc string, and every declared entry must still be read
//!   somewhere. Undocumented runtime knobs (the `PERFPREDICT_NN_SCALAR`
//!   class) get flagged at the read site; dead declarations get flagged
//!   at the declaration.
//! * `nondet-source` — wall-clock reads (`Instant::now`,
//!   `SystemTime::now`) and entropy-derived RNG seeding
//!   (`from_entropy`, `thread_rng`, `OsRng`) in library code are how
//!   nondeterminism reaches result-bearing paths (the PR 9 seed-stream
//!   bug class). Telemetry is the sanctioned consumer of wall-clock
//!   time, so `crates/telemetry` itself and statements that mention
//!   `telemetry` (the `telemetry::enabled().then(Instant::now)` gating
//!   idiom) are exempt, as are binary entry points (`src/main.rs`,
//!   `src/bin/*`), whose timing is operational, not result-bearing.
//!   Everything else needs a per-site waiver arguing the value never
//!   shapes an output (deadlines, latency accounting).
//!
//! Extraction is per-file and pure ([`extract_facts`] →
//! [`FileFacts`]), so the diagnostic cache can persist facts alongside
//! per-file findings and warm runs skip lexing entirely; the passes
//! ([`check_workspace`]) then run over facts alone, cached or fresh.

use crate::diagnostics::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::lints::FileCx;
use crate::source::SourceFile;
use crate::syntax::{self, ItemKind, Vis};
use crate::waiver::EnvDecl;
use std::collections::{BTreeMap, BTreeSet};
use telemetry::json::{self, JsonObject, Value};

/// How a file participates in analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Lintable library source (`src/**` minus entry points).
    Library,
    /// A binary entry point (`src/main.rs`, `src/bin/*`): linted, but
    /// exempt from `error-policy` exits and `nondet-source`.
    Binary,
    /// Tests/benches/examples: never linted, but their identifier uses
    /// count as external references for `dead-pub-api`.
    Reference,
}

/// Classify a workspace-relative path into its [`FileRole`].
pub fn role_of(path: &str) -> FileRole {
    if path.ends_with("src/main.rs") || path.contains("src/bin/") {
        FileRole::Binary
    } else if path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
        || path.starts_with("tests/")
        || path.starts_with("benches/")
        || path.starts_with("examples/")
    {
        FileRole::Reference
    } else {
        FileRole::Library
    }
}

/// The crate a workspace-relative path belongs to: `crates/<name>/…`
/// (compat members keep their own names), everything else — root
/// `src/`, root `tests/`, `examples/` — is the root crate.
pub(crate) fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        let name = parts.next().unwrap_or("perfpredict");
        if name == "compat" {
            return format!("compat/{}", parts.next().unwrap_or("?"));
        }
        return name.to_string();
    }
    "perfpredict".to_string()
}

/// A resolved source location, self-contained so cached facts can
/// rebuild byte-identical diagnostics without the file text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    pub line: usize,
    pub col: usize,
    pub len: usize,
    pub excerpt: String,
}

/// One public item eligible for `dead-pub-api`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubItem {
    pub name: String,
    /// Human label for the message (`fn`, `struct`, …).
    pub kind: String,
    pub site: Site,
    /// Identifiers appearing in the item's API surface — its signature
    /// for functions, its whole definition for type-defining items
    /// (fields and variants are API). A live item keeps every name in
    /// its surface alive: callers reach those types through inference
    /// without ever writing their names.
    pub sig_refs: Vec<String>,
}

/// One `env::var("PERFPREDICT_*")` read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvRead {
    pub name: String,
    pub site: Site,
}

/// One nondeterminism source reaching library code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NondetSite {
    /// What was called (`Instant::now`, `from_entropy`, …).
    pub what: String,
    pub site: Site,
}

/// Everything the workspace passes need to know about one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileFacts {
    pub path: String,
    pub crate_name: String,
    pub role: FileRole,
    pub pub_items: Vec<PubItem>,
    /// Distinct identifiers appearing anywhere in the file (tests
    /// included — a test is a legitimate consumer of public API).
    pub refs: Vec<String>,
    /// Identifiers inside `#[macro_export]` macro bodies. Exported
    /// macros expand at downstream call sites, so every name they
    /// mention is referenced from outside the defining crate.
    pub macro_refs: Vec<String>,
    pub env_reads: Vec<EnvRead>,
    pub nondet: Vec<NondetSite>,
}

fn site_for(cx: &FileCx<'_>, from: usize, to: usize) -> Site {
    let start = cx.code[from].start;
    let end = cx.code[to.min(cx.code.len() - 1)].end;
    let (line, col) = cx.file.line_col(start);
    Site {
        line,
        col,
        len: end.saturating_sub(start).max(1),
        excerpt: cx.file.line_text(line).to_string(),
    }
}

/// Extract the workspace-relevant facts from one file.
pub fn extract_facts(file: &SourceFile, tokens: &[Token], role: FileRole) -> FileFacts {
    let crate_name = crate_of(&file.path);
    let cx = FileCx::new(file, tokens, role == FileRole::Binary);

    let mut refs: BTreeSet<String> = BTreeSet::new();
    for i in 0..cx.code.len() {
        if cx.kind(i) == TokenKind::Ident {
            refs.insert(cx.text(i).to_string());
        }
    }

    let mut facts = FileFacts {
        path: file.path.clone(),
        crate_name,
        role,
        pub_items: Vec::new(),
        refs: refs.into_iter().collect(),
        macro_refs: Vec::new(),
        env_reads: Vec::new(),
        nondet: Vec::new(),
    };
    if role == FileRole::Reference {
        // Reference files contribute identifiers only.
        return facts;
    }

    collect_pub_items(&cx, tokens, &mut facts);
    collect_env_reads(&cx, &mut facts);
    if facts.crate_name != "telemetry" && role != FileRole::Binary {
        collect_nondet(&cx, &mut facts);
    }
    facts
}

fn kind_label(kind: ItemKind) -> Option<&'static str> {
    Some(match kind {
        ItemKind::Fn => "fn",
        ItemKind::Struct => "struct",
        ItemKind::Enum => "enum",
        ItemKind::Union => "union",
        ItemKind::Trait => "trait",
        ItemKind::Mod => "mod",
        ItemKind::Const => "const",
        ItemKind::Static => "static",
        ItemKind::TypeAlias => "type",
        ItemKind::MacroDef => "macro",
        // Unnamed / structural / alias items are not API definitions
        // the pass can own: `use` re-exports count as references to
        // their leaves, impls are covered via their methods.
        ItemKind::Impl | ItemKind::Use | ItemKind::Extern | ItemKind::MacroCall => return None,
    })
}

/// Distinct identifiers among the code tokens whose spans fall inside
/// `[lo, hi)`, minus `exclude` (an item's own name must not keep it
/// alive).
fn idents_in_range(cx: &FileCx<'_>, lo: usize, hi: usize, exclude: &str) -> Vec<String> {
    let mut set = BTreeSet::new();
    for i in 0..cx.code.len() {
        let t = &cx.code[i];
        if t.start >= lo && t.end <= hi && t.kind == TokenKind::Ident {
            let text = cx.text(i);
            if text != exclude {
                set.insert(text.to_string());
            }
        }
    }
    set.into_iter().collect()
}

fn collect_pub_items(cx: &FileCx<'_>, tokens: &[Token], facts: &mut FileFacts) {
    let nodes = syntax::parse(&cx.file.text, tokens);
    syntax::visit_items(&nodes, &mut |item, stack| {
        if item.kind == ItemKind::MacroDef && item.attrs.iter().any(|a| a.contains("macro_export"))
        {
            // Exported macro bodies are textually public API: whatever
            // they name is referenced wherever the macro is used.
            facts
                .macro_refs
                .extend(idents_in_range(cx, item.span.0, item.span.1, ""));
            facts.macro_refs.sort();
            facts.macro_refs.dedup();
        }
        if item.vis != Vis::Pub {
            return;
        }
        // Reachability along the ancestor chain: every enclosing mod
        // must itself be `pub`; an inherent impl passes visibility
        // through; anything else (trait bodies — members belong to the
        // trait; trait impls — members belong to the contract; fn
        // bodies) makes the item ineligible.
        for anc in stack {
            let transparent = match anc.kind {
                ItemKind::Mod => anc.vis == Vis::Pub,
                ItemKind::Impl => !anc.is_trait_impl,
                _ => false,
            };
            if !transparent {
                return;
            }
        }
        let Some(kind) = kind_label(item.kind) else {
            return;
        };
        let Some(name) = item.name.clone() else {
            return;
        };
        if name == "main" {
            return;
        }
        if cx.regions.contains(item.span.0) {
            return; // test-gated helpers are not API
        }
        // Items the author already marked as deliberately unused or
        // hidden are out of scope for an API-surface lint.
        if item
            .attrs
            .iter()
            .any(|a| a.contains("allow(dead_code)") || a.contains("doc(hidden)"))
        {
            return;
        }
        // Anchor on the visibility/keyword line, past any attribute
        // block — that is where a reader (and a waiver hash) looks.
        let anchor = sig_anchor(cx, item);
        let (line, col) = cx.file.line_col(anchor);
        let excerpt = cx.file.line_text(line).to_string();
        // API surface for liveness propagation: a function exposes its
        // signature; a type-defining item exposes its whole body
        // (fields, variants, and trait-method signatures are all
        // reachable by downstream code that never writes their names).
        let surface_end = match item.kind {
            ItemKind::Struct
            | ItemKind::Enum
            | ItemKind::Union
            | ItemKind::Trait
            | ItemKind::Const
            | ItemKind::Static
            | ItemKind::TypeAlias => item.span.1,
            _ => item.sig_end,
        };
        facts.pub_items.push(PubItem {
            name: name.clone(),
            kind: kind.to_string(),
            site: Site {
                line,
                col,
                len: item.sig_end.saturating_sub(anchor).max(1),
                excerpt,
            },
            sig_refs: idents_in_range(cx, item.span.0, surface_end, &name),
        });
    });
}

/// Byte offset of the `pub` keyword line of an item — the span start
/// minus any leading attributes (which sit on their own lines).
fn sig_anchor(cx: &FileCx<'_>, item: &syntax::Item) -> usize {
    // Find the first non-attribute, non-trivia token at or after the
    // item's span start.
    let mut pos = item.span.0;
    for attr in &item.attrs {
        // Attributes are contiguous from span.0 modulo trivia; step
        // past each one by searching for its text.
        if let Some(found) =
            cx.file.text[pos..item.span.1.min(cx.file.text.len())].find(attr.as_str())
        {
            pos = pos + found + attr.len();
        }
    }
    // Skip trivia to the visibility/keyword token.
    let rest = &cx.file.text[pos..];
    let trimmed = rest.len() - rest.trim_start().len();
    (pos + trimmed).min(cx.file.text.len().saturating_sub(1))
}

fn collect_env_reads(cx: &FileCx<'_>, facts: &mut FileFacts) {
    for i in 0..cx.code.len() {
        if cx.in_test(i) || cx.kind(i) != TokenKind::Ident {
            continue;
        }
        if !matches!(cx.text(i), "var" | "var_os") {
            continue;
        }
        // `env :: var ( "NAME" `— the `std::` prefix is optional.
        if !(i >= 3 && cx.is(i - 1, ":") && cx.is(i - 2, ":") && cx.is(i - 3, "env")) {
            continue;
        }
        if !cx.is(i + 1, "(") {
            continue;
        }
        let arg = i + 2;
        if arg >= cx.code.len() || cx.kind(arg) != TokenKind::Str {
            continue;
        }
        let lit = cx.text(arg);
        let name = lit.trim_matches('"');
        if !name.starts_with("PERFPREDICT_") {
            continue;
        }
        facts.env_reads.push(EnvRead {
            name: name.to_string(),
            site: site_for(cx, i - 3, arg),
        });
    }
}

/// Entropy/wall-clock patterns `nondet-source` hunts for.
const ENTROPY_IDENTS: &[&str] = &["from_entropy", "thread_rng", "OsRng"];

fn collect_nondet(cx: &FileCx<'_>, facts: &mut FileFacts) {
    for i in 0..cx.code.len() {
        if cx.in_test(i) || cx.kind(i) != TokenKind::Ident {
            continue;
        }
        let text = cx.text(i);
        let (what, to) = if matches!(text, "Instant" | "SystemTime")
            && cx.is(i + 1, ":")
            && cx.is(i + 2, ":")
            && cx.is(i + 3, "now")
        {
            (format!("{text}::now"), i + 3)
        } else if ENTROPY_IDENTS.contains(&text) {
            (text.to_string(), i)
        } else {
            continue;
        };
        if statement_mentions_telemetry(cx, i) {
            continue;
        }
        facts.nondet.push(NondetSite {
            what,
            site: site_for(cx, i, to),
        });
    }
}

/// Does the statement containing token `i` mention `telemetry`? That
/// marks the sanctioned wall-clock idiom
/// (`telemetry::enabled().then(Instant::now)` and span timing).
fn statement_mentions_telemetry(cx: &FileCx<'_>, i: usize) -> bool {
    // Back to the start of the statement…
    let lo = {
        let floor = i.saturating_sub(80);
        let mut j = i;
        while j > floor && !matches!(cx.text(j - 1), ";" | "{" | "}") {
            j -= 1;
        }
        j
    };
    // …forward to its end.
    let hi = cx.statement_end(i);
    (lo..=hi.min(cx.code.len() - 1))
        .any(|j| cx.kind(j) == TokenKind::Ident && cx.text(j) == "telemetry")
}

/// Run the three workspace passes over the extracted facts. `envs` is
/// the `[[env]]` registry from `analyze.toml`; `config_path` names it
/// in stale-declaration findings.
pub fn check_workspace(
    facts: &[FileFacts],
    envs: &[EnvDecl],
    config_path: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    dead_pub_api(facts, &mut out);
    env_registry(facts, envs, config_path, &mut out);
    nondet_source(facts, &mut out);
    out
}

fn dead_pub_api(facts: &[FileFacts], out: &mut Vec<Diagnostic>) {
    // Which names does each crate's *library* reference, and which
    // names do external consumers use anywhere? Reference files
    // (tests/benches/examples) are external by construction, and so
    // are binary targets: `src/main.rs` and `src/bin/*` are separate
    // crates that can only reach the library through its public API,
    // so a binary's use is exactly the evidence `pub` asks for.
    let mut crate_refs: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut external_refs: BTreeSet<&str> = BTreeSet::new();
    for f in facts {
        let refs = f.refs.iter().map(String::as_str);
        if f.role == FileRole::Library {
            crate_refs.entry(&f.crate_name).or_default().extend(refs);
        } else {
            external_refs.extend(refs);
        }
        // Exported macros expand downstream: their bodies are external
        // references no matter which file holds them.
        external_refs.extend(f.macro_refs.iter().map(String::as_str));
    }
    // Per-crate liveness to a fixpoint. The seed is direct outside
    // reference; each live item then keeps its API surface alive —
    // `run.finish()` returns a `RunSummary` nobody ever names, but the
    // type is reachable, so flagging it would be wrong.
    let mut crate_items: BTreeMap<&str, Vec<&PubItem>> = BTreeMap::new();
    for f in facts {
        if f.role == FileRole::Library {
            crate_items
                .entry(&f.crate_name)
                .or_default()
                .extend(f.pub_items.iter());
        }
    }
    let mut alive: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (crate_name, items) in &crate_items {
        let outside_ref = |name: &str| {
            external_refs.contains(name)
                || crate_refs
                    .iter()
                    .any(|(c, refs)| c != crate_name && refs.contains(name))
        };
        let mut live: BTreeSet<&str> = items
            .iter()
            .filter(|i| outside_ref(&i.name))
            .map(|i| i.name.as_str())
            .collect();
        loop {
            let before = live.len();
            for item in items {
                if live.contains(item.name.as_str()) {
                    live.extend(item.sig_refs.iter().map(String::as_str));
                }
            }
            if live.len() == before {
                break;
            }
        }
        alive.insert(*crate_name, live);
    }
    for f in facts {
        if f.role != FileRole::Library {
            continue;
        }
        for item in &f.pub_items {
            let name = item.name.as_str();
            if alive
                .get(f.crate_name.as_str())
                .is_some_and(|live| live.contains(name))
            {
                continue;
            }
            out.push(Diagnostic::from_parts(
                "dead-pub-api",
                f.path.clone(),
                item.site.line,
                item.site.col,
                item.site.len,
                format!(
                    "pub {} `{}` is never referenced outside crate `{}` (tests/benches/examples \
                     included) — demote to pub(crate), delete it, or waive it as deliberate API \
                     surface",
                    item.kind, item.name, f.crate_name
                ),
                item.site.excerpt.clone(),
            ));
        }
    }
}

fn env_registry(
    facts: &[FileFacts],
    envs: &[EnvDecl],
    config_path: &str,
    out: &mut Vec<Diagnostic>,
) {
    let declared: BTreeMap<&str, &EnvDecl> = envs.iter().map(|e| (e.name.as_str(), e)).collect();
    let mut read: BTreeSet<&str> = BTreeSet::new();
    for f in facts {
        for r in &f.env_reads {
            read.insert(&r.name);
            if !declared.contains_key(r.name.as_str()) {
                out.push(Diagnostic::from_parts(
                    "env-registry",
                    f.path.clone(),
                    r.site.line,
                    r.site.col,
                    r.site.len,
                    format!(
                        "`{}` is read here but has no [[env]] entry in {config_path} — declare \
                         the knob with a one-line doc string so it is discoverable",
                        r.name
                    ),
                    r.site.excerpt.clone(),
                ));
            }
        }
    }
    for e in envs {
        if !read.contains(e.name.as_str()) {
            out.push(Diagnostic::from_parts(
                "env-registry",
                config_path.to_string(),
                e.defined_at,
                1,
                7,
                format!(
                    "[[env]] entry `{}` is declared but never read by any workspace code — \
                     the knob it documented is gone; delete the entry",
                    e.name
                ),
                "[[env]]".to_string(),
            ));
        }
    }
}

fn nondet_source(facts: &[FileFacts], out: &mut Vec<Diagnostic>) {
    for f in facts {
        for n in &f.nondet {
            out.push(Diagnostic::from_parts(
                "nondet-source",
                f.path.clone(),
                n.site.line,
                n.site.col,
                n.site.len,
                format!(
                    "`{}` in library code — wall-clock/entropy values must not reach \
                     result-bearing paths (the PR 9 seed-stream bug class); derive from the run \
                     seed or config, route through telemetry, or waive with the argument that \
                     this value never shapes an output",
                    n.what
                ),
                n.site.excerpt.clone(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// JSON (de)serialization for the diagnostic cache.

fn site_json(s: &Site) -> String {
    JsonObject::new()
        .usize("line", s.line)
        .usize("col", s.col)
        .usize("len", s.len)
        .str("excerpt", &s.excerpt)
        .finish()
}

fn json_array(items: impl Iterator<Item = String>) -> String {
    let mut buf = String::from("[");
    for (i, s) in items.enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&s);
    }
    buf.push(']');
    buf
}

/// Render one file's facts as a single-line JSON object.
pub(crate) fn facts_to_json(f: &FileFacts) -> String {
    let role = match f.role {
        FileRole::Library => "library",
        FileRole::Binary => "binary",
        FileRole::Reference => "reference",
    };
    JsonObject::new()
        .str("role", role)
        .raw(
            "pub_items",
            &json_array(f.pub_items.iter().map(|p| {
                JsonObject::new()
                    .str("name", &p.name)
                    .str("kind", &p.kind)
                    .raw("site", &site_json(&p.site))
                    .raw(
                        "sig_refs",
                        &json_array(
                            p.sig_refs
                                .iter()
                                .map(|r| format!("\"{}\"", json::escape(r))),
                        ),
                    )
                    .finish()
            })),
        )
        .raw(
            "refs",
            &json_array(f.refs.iter().map(|r| format!("\"{}\"", json::escape(r)))),
        )
        .raw(
            "macro_refs",
            &json_array(
                f.macro_refs
                    .iter()
                    .map(|r| format!("\"{}\"", json::escape(r))),
            ),
        )
        .raw(
            "env_reads",
            &json_array(f.env_reads.iter().map(|r| {
                JsonObject::new()
                    .str("name", &r.name)
                    .raw("site", &site_json(&r.site))
                    .finish()
            })),
        )
        .raw(
            "nondet",
            &json_array(f.nondet.iter().map(|n| {
                JsonObject::new()
                    .str("what", &n.what)
                    .raw("site", &site_json(&n.site))
                    .finish()
            })),
        )
        .finish()
}

fn site_from_json(v: &Value) -> Option<Site> {
    Some(Site {
        line: v.get("line")?.as_u64()? as usize,
        col: v.get("col")?.as_u64()? as usize,
        len: v.get("len")?.as_u64()? as usize,
        excerpt: v.get("excerpt")?.as_str()?.to_string(),
    })
}

fn arr(v: &Value) -> Option<&[Value]> {
    match v {
        Value::Arr(items) => Some(items),
        _ => None,
    }
}

/// Rebuild facts from [`facts_to_json`] output. `None` on any shape
/// mismatch — the caller treats that as a cache miss.
pub(crate) fn facts_from_json(path: &str, v: &Value) -> Option<FileFacts> {
    let role = match v.get("role")?.as_str()? {
        "library" => FileRole::Library,
        "binary" => FileRole::Binary,
        "reference" => FileRole::Reference,
        _ => return None,
    };
    let mut f = FileFacts {
        path: path.to_string(),
        crate_name: crate_of(path),
        role,
        pub_items: Vec::new(),
        refs: Vec::new(),
        macro_refs: Vec::new(),
        env_reads: Vec::new(),
        nondet: Vec::new(),
    };
    for p in arr(v.get("pub_items")?)? {
        let mut sig_refs = Vec::new();
        for r in arr(p.get("sig_refs")?)? {
            sig_refs.push(r.as_str()?.to_string());
        }
        f.pub_items.push(PubItem {
            name: p.get("name")?.as_str()?.to_string(),
            kind: p.get("kind")?.as_str()?.to_string(),
            site: site_from_json(p.get("site")?)?,
            sig_refs,
        });
    }
    for r in arr(v.get("refs")?)? {
        f.refs.push(r.as_str()?.to_string());
    }
    for r in arr(v.get("macro_refs")?)? {
        f.macro_refs.push(r.as_str()?.to_string());
    }
    for r in arr(v.get("env_reads")?)? {
        f.env_reads.push(EnvRead {
            name: r.get("name")?.as_str()?.to_string(),
            site: site_from_json(r.get("site")?)?,
        });
    }
    for n in arr(v.get("nondet")?)? {
        f.nondet.push(NondetSite {
            what: n.get("what")?.as_str()?.to_string(),
            site: site_from_json(n.get("site")?)?,
        });
    }
    Some(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn facts(path: &str, src: &str) -> FileFacts {
        let file = SourceFile::new(path.into(), src.into());
        let tokens = lex(&file.text);
        extract_facts(&file, &tokens, role_of(path))
    }

    #[test]
    fn roles_and_crates_classify() {
        assert_eq!(role_of("crates/x/src/lib.rs"), FileRole::Library);
        assert_eq!(role_of("crates/x/src/main.rs"), FileRole::Binary);
        assert_eq!(role_of("crates/x/src/bin/tool.rs"), FileRole::Binary);
        assert_eq!(role_of("crates/x/tests/t.rs"), FileRole::Reference);
        assert_eq!(role_of("tests/end_to_end.rs"), FileRole::Reference);
        assert_eq!(role_of("crates/bench/benches/nn.rs"), FileRole::Reference);
        assert_eq!(crate_of("crates/serve/src/core.rs"), "serve");
        assert_eq!(crate_of("crates/compat/simd/src/lib.rs"), "compat/simd");
        assert_eq!(crate_of("src/main.rs"), "perfpredict");
        assert_eq!(crate_of("tests/end_to_end.rs"), "perfpredict");
    }

    #[test]
    fn pub_items_respect_visibility_chain() {
        let src = "\
pub fn api() {}
pub(crate) fn internal() {}
fn private() {}
mod hidden { pub fn unreachable_api() {} }
pub mod open { pub fn nested_api() {} }
pub struct S;
impl S { pub fn method(&self) {} }
impl Clone for S { fn clone(&self) -> S { S } }
pub trait T { fn required(&self); }
#[cfg(test)]
mod tests { pub fn helper() {} }
";
        let f = facts("crates/x/src/lib.rs", src);
        let names: Vec<&str> = f.pub_items.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["api", "open", "nested_api", "S", "method", "T"]);
    }

    #[test]
    fn env_reads_extract_perfpredict_names_only() {
        let src = "\
pub fn f() -> bool {
    let _ = std::env::var(\"HOME\");
    std::env::var(\"PERFPREDICT_MODE\").is_ok() && std::env::var_os(\"PERFPREDICT_FLAG\").is_some()
}
";
        let f = facts("crates/x/src/lib.rs", src);
        let names: Vec<&str> = f.env_reads.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["PERFPREDICT_MODE", "PERFPREDICT_FLAG"]);
    }

    #[test]
    fn nondet_sites_respect_exemptions() {
        let lib = "\
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
pub fn gated() {
    let _t = telemetry::enabled().then(std::time::Instant::now);
}
";
        let f = facts("crates/x/src/lib.rs", lib);
        assert_eq!(f.nondet.len(), 1, "telemetry-gated statement is exempt");
        assert_eq!(f.nondet[0].what, "Instant::now");

        let in_main = facts("crates/x/src/main.rs", lib);
        assert!(in_main.nondet.is_empty(), "entry points are exempt");

        let in_telemetry = facts("crates/telemetry/src/span.rs", lib);
        assert!(in_telemetry.nondet.is_empty(), "telemetry crate is exempt");
    }

    #[test]
    fn dead_pub_api_needs_an_outside_reference() {
        let a = facts(
            "crates/a/src/lib.rs",
            "pub fn used() {}\npub fn dead() {}\npub(crate) fn scoped() {}\n",
        );
        let b = facts("crates/b/src/lib.rs", "pub fn f() { a::used(); }\n");
        let diags = check_workspace(&[a, b], &[], "analyze.toml");
        let dead: Vec<String> = diags
            .iter()
            .filter(|d| d.lint == "dead-pub-api")
            .map(|d| d.message.clone())
            .collect();
        assert_eq!(dead.len(), 2, "{dead:?}"); // `dead` in a, `f` in b
        assert!(dead[0].contains("`dead`"), "{dead:?}");
    }

    #[test]
    fn macro_bodies_and_signatures_keep_api_alive() {
        let a = facts(
            "crates/a/src/lib.rs",
            "\
pub struct Summary { pub wall: u64 }
pub fn finish() -> Summary { Summary { wall: 0 } }
pub struct Guard;
#[macro_export]
macro_rules! span { () => { $crate::Guard::default() } }
pub fn dead() {}
",
        );
        // Keyword-ish tokens (`crate`, `macro_rules`) ride along — only
        // membership matters for liveness.
        assert!(
            a.macro_refs.iter().any(|r| r == "Guard"),
            "{:?}",
            a.macro_refs
        );
        let t = facts("crates/a/tests/t.rs", "fn t() { let _s = a::finish(); }\n");
        let diags = check_workspace(&[a, t], &[], "analyze.toml");
        let dead: Vec<&str> = diags
            .iter()
            .filter(|d| d.lint == "dead-pub-api")
            .map(|d| d.message.as_str())
            .collect();
        // `finish` is named by the test; `Summary` rides its signature;
        // `Guard` is named by the exported macro body. Only `dead` dies.
        assert_eq!(dead.len(), 1, "{dead:?}");
        assert!(dead[0].contains("`dead`"), "{dead:?}");
    }

    #[test]
    fn reference_files_count_as_consumers() {
        let a = facts("crates/a/src/lib.rs", "pub fn tested_only() {}\n");
        let t = facts(
            "crates/a/tests/api.rs",
            "#[test]\nfn t() { a::tested_only(); }\n",
        );
        let diags = check_workspace(&[a, t], &[], "analyze.toml");
        assert!(
            diags.iter().all(|d| d.lint != "dead-pub-api"),
            "integration-test usage keeps the API alive: {diags:?}"
        );
    }

    #[test]
    fn env_registry_flags_both_directions() {
        let f = facts(
            "crates/x/src/lib.rs",
            "pub fn f() -> bool { std::env::var(\"PERFPREDICT_UNDECLARED\").is_ok() }\n",
        );
        let envs = vec![EnvDecl {
            name: "PERFPREDICT_GONE".into(),
            doc: "stale knob".into(),
            defined_at: 12,
        }];
        let diags = check_workspace(&[f], &envs, "analyze.toml");
        let msgs: Vec<&str> = diags
            .iter()
            .filter(|d| d.lint == "env-registry")
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(msgs.len(), 2, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("PERFPREDICT_UNDECLARED")));
        assert!(msgs.iter().any(|m| m.contains("PERFPREDICT_GONE")));
        let stale = diags
            .iter()
            .find(|d| d.message.contains("PERFPREDICT_GONE"))
            .expect("stale decl");
        assert_eq!((stale.path.as_str(), stale.line), ("analyze.toml", 12));
    }

    #[test]
    fn facts_round_trip_through_json() {
        let src = "\
pub fn api(n: u64) -> f64 { n as f64 }
pub fn clock() -> std::time::Instant { std::time::Instant::now() }
pub fn knob() -> bool { std::env::var(\"PERFPREDICT_X\").is_ok() }
";
        let f = facts("crates/x/src/lib.rs", src);
        let line = facts_to_json(&f);
        assert!(!line.contains('\n'), "cache records are single-line");
        let v = json::parse(&line).expect("facts JSON parses");
        let back = facts_from_json("crates/x/src/lib.rs", &v).expect("facts deserialize");
        assert_eq!(f, back);
    }
}
