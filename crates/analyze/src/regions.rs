//! `#[cfg(test)]` / `#[test]` region tracking.
//!
//! The lint passes only police *library* code; anything inside a
//! test-gated item is exempt. A region starts at the gating attribute
//! and runs to the end of the item it gates (the matching close brace,
//! or the terminating `;` for body-less items). This is what the old
//! awk lint could not do: it cut each file at the first `#[cfg(test)]`
//! and went blind from there, so code *after* a small test module was
//! never checked.
//!
//! Recognised gates, scanned over the lexed token stream:
//!
//! * `#[cfg(test)]` and `#[cfg(any(test, …))]` — any `cfg` attribute
//!   mentioning `test` *without* a `not`. `#[cfg(not(test))]` gates
//!   library code and is deliberately not exempted.
//! * `#[test]` / `#[bench]` on a function.
//!
//! Regions may overlap (a `#[test]` fn inside a `#[cfg(test)]` mod);
//! membership is "inside any region".

use crate::lexer::{Token, TokenKind};

/// Byte ranges (half-open) of test-gated items in one file.
pub struct TestRegions {
    ranges: Vec<(usize, usize)>,
}

impl TestRegions {
    /// True if `offset` lies inside any test-gated item.
    pub fn contains(&self, offset: usize) -> bool {
        self.ranges.iter().any(|&(s, e)| offset >= s && offset < e)
    }

    /// The detected ranges (for tests and debugging).
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }
}

/// Detect test regions. `tokens` is the full lexed stream for `src`.
pub(crate) fn test_regions(src: &str, tokens: &[Token]) -> TestRegions {
    // Work over code (non-trivia) tokens, remembering byte spans.
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_trivia()).collect();
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].text(src) == "#" && i + 1 < code.len() && code[i + 1].text(src) == "[" {
            let attr_start = code[i].start;
            let (attr_end_idx, gates_test) = scan_attribute(src, &code, i + 1);
            if gates_test {
                if let Some(region_end) = item_end(src, &code, attr_end_idx + 1) {
                    ranges.push((attr_start, region_end));
                }
            }
            i = attr_end_idx + 1;
        } else {
            i += 1;
        }
    }
    TestRegions { ranges }
}

/// Scan one `[...]` attribute starting at the `[` token index. Returns
/// the index of the matching `]` (or the last token if unterminated)
/// and whether the attribute gates test-only code.
fn scan_attribute(src: &str, code: &[&Token], open_idx: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut first_ident: Option<&str> = None;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut i = open_idx;
    while i < code.len() {
        let text = code[i].text(src);
        match text {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ if code[i].kind == TokenKind::Ident => {
                if first_ident.is_none() {
                    first_ident = Some(text);
                }
                match text {
                    "test" | "bench" => saw_test = true,
                    "not" => saw_not = true,
                    _ => {}
                }
            }
            _ => {}
        }
        i += 1;
    }
    let gates = match first_ident {
        // `#[test]`, `#[bench]` directly.
        Some("test" | "bench") => true,
        // `#[cfg(… test …)]` unless a `not` is anywhere in it — the
        // conservative reading keeps `#[cfg(not(test))]` code linted.
        Some("cfg") => saw_test && !saw_not,
        _ => false,
    };
    (i.min(code.len().saturating_sub(1)), gates)
}

/// Find the end (exclusive byte offset) of the item starting at token
/// index `from`: skip further attributes, then either the matching `}`
/// of the item's body or the first top-level `;`.
fn item_end(src: &str, code: &[&Token], mut from: usize) -> Option<usize> {
    // Skip any further `#[...]` attributes between the gate and the item.
    while from + 1 < code.len() && code[from].text(src) == "#" && code[from + 1].text(src) == "[" {
        let (end, _) = scan_attribute(src, code, from + 1);
        from = end + 1;
    }
    let (mut paren, mut bracket, mut brace) = (0i32, 0i32, 0i32);
    let mut i = from;
    while i < code.len() {
        match code[i].text(src) {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" => {
                if paren == 0 && bracket == 0 {
                    // Body start: match braces to the item's close.
                    brace = 1;
                    i += 1;
                    while i < code.len() && brace > 0 {
                        match code[i].text(src) {
                            "{" => brace += 1,
                            "}" => brace -= 1,
                            _ => {}
                        }
                        i += 1;
                    }
                    let end_tok = code.get(i.saturating_sub(1))?;
                    return Some(end_tok.end);
                }
                brace += 1;
            }
            "}" => brace -= 1,
            ";" if paren == 0 && bracket == 0 && brace == 0 => {
                return Some(code[i].end);
            }
            _ => {}
        }
        i += 1;
    }
    // Unterminated item: exempt to end of file (safe for lints — the
    // file will not compile anyway).
    Some(src.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn regions(src: &str) -> TestRegions {
        test_regions(src, &lex(src))
    }

    #[test]
    fn cfg_test_mod_is_a_region_and_code_after_is_not() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn lib2() { after(); }\n";
        let r = regions(src);
        assert_eq!(r.ranges().len(), 1);
        let unwrap_at = src.find("unwrap").expect("fixture has unwrap");
        let after_at = src.find("after").expect("fixture has after");
        assert!(r.contains(unwrap_at));
        assert!(!r.contains(after_at), "code after the test mod is linted");
    }

    #[test]
    fn test_fn_with_extra_attrs() {
        let src = "#[test]\n#[should_panic]\nfn t() { boom() }\nfn lib() {}\n";
        let r = regions(src);
        assert!(r.contains(src.find("boom").expect("fixture has boom")));
        assert!(!r.contains(src.find("lib").expect("fixture has lib")));
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn lib() { body() }\n";
        let r = regions(src);
        assert!(!r.contains(src.find("body").expect("fixture has body")));
    }

    #[test]
    fn cfg_any_including_test_is_exempt() {
        let src = "#[cfg(any(test, feature = \"slow\"))]\nfn helper() { h() }\n";
        let r = regions(src);
        assert!(r.contains(src.find("h()").expect("fixture has h()")));
    }

    #[test]
    fn bodyless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nmod tests;\nfn lib() { l() }\n";
        let r = regions(src);
        assert!(!r.contains(src.find("l()").expect("fixture has l()")));
    }

    #[test]
    fn braces_in_strings_do_not_confuse_matching() {
        let src = "#[cfg(test)]\nfn t() { let s = \"}}}\"; inner() }\nfn lib() { out() }\n";
        let r = regions(src);
        assert!(r.contains(src.find("inner").expect("fixture has inner")));
        assert!(!r.contains(src.find("out").expect("fixture has out")));
    }
}
