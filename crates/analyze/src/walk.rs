//! Workspace file discovery.
//!
//! The analyzer polices *library* source: the root `src/` tree plus
//! every `crates/*/src` tree except `crates/compat` (vendored
//! API-compatible subsets of external crates — not ours to lint).
//! One compat member IS ours and is scanned: `crates/compat/simd`,
//! the first-party SIMD kernel crate, whose `unsafe` intrinsic
//! regions are exactly what the `unsafe-region` policy exists for.
//! Integration tests, benches, and examples are harness code and are
//! not scanned; `#[cfg(test)]` regions inside scanned files are
//! exempted by the region tracker instead.
//!
//! Discovery order is sorted, so diagnostics, JSONL output, and waiver
//! matching are byte-stable run over run — the analyzer holds itself
//! to the determinism bar it enforces.

use fault::{Error, Result};
use std::path::{Path, PathBuf};

/// All `.rs` files under the default lint roots of `root`, sorted.
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = read_dir_sorted(&crates_dir)?;
        crate_dirs.retain(|p| p.is_dir() && p.file_name().map(|n| n != "compat").unwrap_or(false));
        // First-party compat member: the SIMD kernels are workspace
        // code (not a vendored stand-in) and must pass every policy,
        // unsafe-region above all.
        let simd = crates_dir.join("compat").join("simd");
        if simd.is_dir() {
            crate_dirs.push(simd);
        }
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();
    if files.is_empty() {
        // A bad --root (typo, wrong CI working directory) must not
        // masquerade as a clean run: "nothing to lint" is an error.
        return Err(Error::invalid(format!(
            "no Rust sources found under {} — expected src/ or crates/*/src; \
             is --root pointing at the workspace?",
            root.display()
        )));
    }
    Ok(files)
}

/// All `.rs` files under the workspace's *reference* roots, sorted:
/// integration tests, benches, and examples — the root `tests/`,
/// `benches/`, `examples/` trees plus each crate's (compat excluded,
/// `compat/simd` included, mirroring [`workspace_files`]). Reference
/// files are never linted, but the `dead-pub-api` pass reads their
/// identifier uses as external-consumer evidence: an API a bench or
/// integration test exercises is alive. An empty result is fine here —
/// a workspace without tests is lint-worthy, not an I/O error.
pub(crate) fn reference_files(root: &Path) -> Result<Vec<PathBuf>> {
    const REF_DIRS: &[&str] = &["tests", "benches", "examples"];
    let mut files = Vec::new();
    let mut roots: Vec<PathBuf> = vec![root.to_path_buf()];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs = read_dir_sorted(&crates_dir)?;
        crate_dirs.retain(|p| p.is_dir() && p.file_name().map(|n| n != "compat").unwrap_or(false));
        let simd = crates_dir.join("compat").join("simd");
        if simd.is_dir() {
            crate_dirs.push(simd);
        }
        roots.extend(crate_dirs);
    }
    for base in roots {
        for dir in REF_DIRS {
            let d = base.join(dir);
            if d.is_dir() {
                collect_rs(&d, &mut files)?;
            }
        }
    }
    // The analyzer's own fixture corpus is deliberate-violation test
    // data, not a real consumer of anything — its identifiers must not
    // keep workspace API alive.
    files.retain(|p| !p.components().any(|c| c.as_os_str() == "fixtures"));
    files.sort();
    Ok(files)
}

/// Recursively collect `.rs` files under `dir` (any order; caller sorts).
pub(crate) fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<()> {
    for entry in read_dir_sorted(dir)? {
        if entry.is_dir() {
            collect_rs(&entry, out)?;
        } else if entry.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(entry);
        }
    }
    Ok(())
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>> {
    let iter = std::fs::read_dir(dir).map_err(|e| Error::io(dir.display().to_string(), e))?;
    let mut entries = Vec::new();
    for entry in iter {
        let entry = entry.map_err(|e| Error::io(dir.display().to_string(), e))?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}
