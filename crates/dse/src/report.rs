//! Plain-text reporting helpers shared by the reproduction harnesses.
//!
//! Figures are emitted as aligned data series (one row per x value, one
//! column per curve) so the paper's plots can be regenerated with any
//! plotting tool; tables print directly in the paper's layout.

/// Render an aligned text table. `header` and every row must have equal
/// lengths.
///
/// Panicking wrapper over [`try_render_table`] for the reproduction
/// harnesses, whose shapes are static.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    match try_render_table(header, rows) {
        Ok(s) => s,
        Err(e) => panic!("ragged table: {e}"),
    }
}

/// Fallible table renderer. A ragged row (length differing from the
/// header) is [`fault::Error::InvalidInput`]; an empty header renders as
/// an empty string rather than underflowing the separator-width
/// arithmetic (`2 * (ncol - 1)` wraps for `ncol == 0`).
pub(crate) fn try_render_table(header: &[String], rows: &[Vec<String>]) -> fault::Result<String> {
    let ncol = header.len();
    if ncol == 0 {
        return if rows.iter().all(|r| r.is_empty()) {
            Ok(String::new())
        } else {
            Err(fault::Error::invalid("table has rows but an empty header"))
        };
    }
    if let Some((i, row)) = rows.iter().enumerate().find(|(_, r)| r.len() != ncol) {
        return Err(fault::Error::invalid(format!(
            "ragged table: row {i} has {} cells for {ncol} columns",
            row.len()
        )));
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for c in 0..ncol {
            if c > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", cells[c], width = widths[c]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    Ok(out)
}

/// Format a float with fixed decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a figure data series: x label column plus named curves.
pub fn render_series(x_label: &str, xs: &[String], curves: &[(&str, Vec<f64>)]) -> String {
    let header: Vec<String> = std::iter::once(x_label.to_string())
        .chain(curves.iter().map(|(n, _)| n.to_string()))
        .collect();
    let rows: Vec<Vec<String>> = xs
        .iter()
        .enumerate()
        .map(|(i, x)| {
            std::iter::once(x.clone())
                .chain(curves.iter().map(|(_, ys)| pct(ys[i])))
                .collect()
        })
        .collect();
    render_table(&header, &rows)
}

/// Render an adaptive-exploration trajectory as an aligned text table:
/// one row per round with the simulation budget and the adaptive vs
/// equal-budget-random MAPEs. NaN errors (acquisition-only runs) render
/// as `-`.
pub fn render_trajectory(trajectory: &[crate::adaptive::TrajectoryPoint]) -> String {
    let err = |v: f64| if v.is_nan() { "-".to_string() } else { pct(v) };
    let header: Vec<String> = ["sims", "adaptive MAPE%", "random MAPE%"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows: Vec<Vec<String>> = trajectory
        .iter()
        .map(|p| {
            vec![
                p.budget.to_string(),
                err(p.adaptive_error),
                err(p.random_error),
            ]
        })
        .collect();
    render_table(&header, &rows)
}

/// Write a CSV file (RFC-4180-style quoting for cells containing commas,
/// quotes, or newlines). Used by the harnesses to emit plot-ready data
/// alongside the text tables.
pub fn write_csv(
    path: &std::path::Path,
    header: &[String],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    use std::io::Write;
    assert!(rows.iter().all(|r| r.len() == header.len()), "ragged CSV");
    let quote = |cell: &str| -> String {
        if cell.contains([',', '"', '\n']) {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        out,
        "{}",
        header
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for row in rows {
        writeln!(
            out,
            "{}",
            row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let out = render_table(
            &["model".into(), "error".into()],
            &[
                vec!["NN-E".into(), "1.80".into()],
                vec!["LR-B".into(), "4.20".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("model"));
        assert!(lines[2].contains("NN-E"));
        // All data lines equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn series_renders_one_row_per_x() {
        let out = render_series(
            "rate%",
            &["1".into(), "2".into()],
            &[("NN-E", vec![1.8, 0.9]), ("LR-B", vec![4.1, 4.0])],
        );
        assert_eq!(out.lines().count(), 4);
        assert!(out.contains("1.80"));
        assert!(out.contains("4.00"));
    }

    #[test]
    fn csv_roundtrips_with_quoting() {
        let dir = std::env::temp_dir().join("perfpredict_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["name".into(), "value".into()],
            &[
                vec!["plain".into(), "1.5".into()],
                vec!["with,comma".into(), "quote\"d".into()],
            ],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1.5");
        assert_eq!(lines[2], "\"with,comma\",\"quote\"\"d\"");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn trajectory_renders_nan_as_dash() {
        use crate::adaptive::TrajectoryPoint;
        let out = render_trajectory(&[
            TrajectoryPoint {
                budget: 16,
                adaptive_error: 3.25,
                random_error: 4.5,
            },
            TrajectoryPoint {
                budget: 24,
                adaptive_error: f64::NAN,
                random_error: f64::NAN,
            },
        ]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].contains("3.25") && lines[2].contains("4.50"));
        assert!(lines[3].contains('-') && !lines[3].contains("NaN"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = render_table(&["a".into()], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn empty_header_renders_empty_instead_of_underflowing() {
        // Regression: `2 * (ncol - 1)` wrapped for ncol == 0 and panicked
        // in release-checked / debug builds.
        assert_eq!(try_render_table(&[], &[]).expect("empty table"), "");
        assert_eq!(render_table(&[], &[]), "");
        // Zero columns with rows of zero cells is still a zero-column table.
        assert_eq!(
            try_render_table(&[], &[vec![], vec![]]).expect("no cells"),
            ""
        );
        // Rows with cells but no header cannot be aligned to anything.
        let err = try_render_table(&[], &[vec!["x".into()]]).expect_err("cells, no header");
        assert_eq!(err.kind(), "invalid");
    }

    #[test]
    fn ragged_rows_are_typed_errors_in_the_fallible_path() {
        let err = try_render_table(&["a".into()], &[vec!["1".into(), "2".into()]])
            .expect_err("ragged row");
        assert_eq!(err.kind(), "invalid");
        assert!(err.to_string().contains("row 0"), "{err}");
        // Valid input still renders identically through both paths.
        let header = vec!["m".into(), "e".into()];
        let rows = vec![vec!["NN-E".into(), "1.8".into()]];
        assert_eq!(
            try_render_table(&header, &rows).expect("valid"),
            render_table(&header, &rows)
        );
    }
}
