//! Deterministic fault injection for robustness testing.
//!
//! Every helper here manufactures one of the failure modes the
//! fault-tolerance layer must absorb — NaN cycle counts from a broken
//! simulator, constant or collinear predictor columns, degenerate
//! targets, divergent training configurations, and checkpoint files cut
//! off mid-write. All injections are seeded, so a failing robustness
//! test reproduces byte-for-byte.
//!
//! The integration suite in `tests/fault_injection.rs` drives each
//! injector through the public `try_*` pipeline entry points and asserts
//! the contract of this PR's error layer: **every fault yields a typed
//! error, a retry, or a recorded degradation — never a panic.**

use cpusim::runner::SimResult;
use fault::{Error, Result};
use linalg::dist::{sample_indices, seeded_rng};
use mlmodels::nn::{TrainAlgo, TrainConfig};
use mlmodels::{Column, Table};

/// Poison `count` seeded-random entries of a sweep with NaN cycles —
/// the signature of a numerically broken simulator run.
pub fn nan_cycles(results: &mut [SimResult], count: usize, seed: u64) {
    let mut rng = seeded_rng(seed);
    let count = count.min(results.len());
    for idx in sample_indices(&mut rng, results.len(), count) {
        results[idx].cycles = f64::NAN;
    }
}

/// Rebuild `table` with `edit` applied to each (name, column) pair.
fn rebuild(table: &Table, edit: impl Fn(&str, &Column) -> Column) -> Table {
    let mut t = Table::new();
    for (name, col) in table.names().iter().zip(table.columns()) {
        match edit(name, col) {
            Column::Numeric(v) => t.add_numeric(name.clone(), v),
            Column::Flag(v) => t.add_flag(name.clone(), v),
            Column::Categorical { codes, levels } => t.add_categorical(name.clone(), codes, levels),
        };
    }
    t.set_target(table.target().to_vec());
    t
}

/// Copy of `table` with column `name` frozen to its first row's value —
/// a zero-variance predictor (§3.4's "no variation" case).
pub fn with_constant_column(table: &Table, name: &str) -> Table {
    rebuild(table, |n, col| {
        if n != name {
            return col.clone();
        }
        match col {
            Column::Numeric(v) => Column::Numeric(vec![v[0]; v.len()]),
            Column::Flag(v) => Column::Flag(vec![v[0]; v.len()]),
            Column::Categorical { codes, levels } => Column::Categorical {
                codes: vec![codes[0]; codes.len()],
                levels: levels.clone(),
            },
        }
    })
}

/// Copy of `table` with numeric column `name` duplicated as
/// `<name>_dup` — an exactly collinear predictor pair that makes the
/// normal equations singular.
pub fn with_collinear_column(table: &Table, name: &str) -> Table {
    let mut t = rebuild(table, |_, col| col.clone());
    match table.column(name) {
        Some(Column::Numeric(v)) => {
            t.add_numeric(format!("{name}_dup"), v.clone());
        }
        other => panic!("with_collinear_column: '{name}' is not numeric ({other:?})"),
    }
    t.set_target(table.target().to_vec());
    t
}

/// Copy of `table` with every target equal to `value` — nothing to learn.
pub fn with_constant_target(table: &Table, value: f64) -> Table {
    let mut t = rebuild(table, |_, col| col.clone());
    t.set_target(vec![value; table.n_rows()]);
    t
}

/// Copy of `table` with `count` seeded-random NaN targets.
pub fn with_nan_targets(table: &Table, count: usize, seed: u64) -> Table {
    let mut rng = seeded_rng(seed);
    let mut target = table.target().to_vec();
    let count = count.min(target.len());
    for idx in sample_indices(&mut rng, target.len(), count) {
        target[idx] = f64::NAN;
    }
    let mut t = rebuild(table, |_, col| col.clone());
    t.set_target(target);
    t
}

/// A training configuration guaranteed to diverge: plain SGD with an
/// absurd constant learning rate. Drives the weights to overflow within
/// a handful of epochs on any non-trivial data, exercising the
/// retry-then-[`Diverged`](fault::Error::Diverged) path.
pub fn divergent_train_config(seed: u64) -> TrainConfig {
    TrainConfig {
        algo: TrainAlgo::Sgd,
        learning_rate: 1e12,
        momentum: 0.99,
        epochs: 20,
        lr_decay: 1.0,
        weight_decay: 0.0,
        seed,
    }
}

/// Cut the file at `path` to its first `len` bytes — the on-disk state
/// after a kill mid-write.
pub fn truncate_file(path: &str, len: u64) -> Result<()> {
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| Error::io(path, e))?;
    file.set_len(len).map_err(|e| Error::io(path, e))?;
    Ok(())
}

/// Overwrite one line (0-based) of a JSONL file with garbage — mid-file
/// corruption that resume must *reject*, unlike a truncated tail.
pub fn corrupt_line(path: &str, line_idx: usize) -> Result<()> {
    let text = std::fs::read_to_string(path).map_err(|e| Error::io(path, e))?;
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    if line_idx >= lines.len() {
        return Err(Error::invalid(format!(
            "corrupt_line: file has {} lines, asked for {line_idx}",
            lines.len()
        )));
    }
    lines[line_idx] = "{corrupted-not-json".to_string();
    std::fs::write(path, format!("{}\n", lines.join("\n"))).map_err(|e| Error::io(path, e))?;
    Ok(())
}

/// Flip `count` seeded-random bytes of the file at `path`, leaving its
/// length unchanged — artifact corruption that only a checksum can
/// catch. The serving daemon must answer this with a quarantined
/// version, never a crash.
pub fn corrupt_artifact_bytes(path: &str, count: usize, seed: u64) -> Result<()> {
    let mut bytes = std::fs::read(path).map_err(|e| Error::io(path, e))?;
    if bytes.is_empty() {
        return Err(Error::invalid(format!(
            "corrupt_artifact_bytes: '{path}' is empty"
        )));
    }
    let mut rng = seeded_rng(seed);
    let count = count.clamp(1, bytes.len());
    for idx in sample_indices(&mut rng, bytes.len(), count) {
        // XOR into the printable-ASCII range so the file stays valid
        // UTF-8: the corruption must be caught by the artifact
        // checksum, not accidentally by a string decoder upstream.
        bytes[idx] = b'a' + (bytes[idx] ^ 0x15) % 26;
    }
    std::fs::write(path, bytes).map_err(|e| Error::io(path, e))?;
    Ok(())
}

/// Cut the final line of a JSONL text mid-frame (no trailing newline) —
/// the torn tail a killed producer leaves behind. The cut point is
/// seeded within the final line so replays reproduce byte-for-byte.
pub fn truncate_final_frame(text: &str, seed: u64) -> String {
    let trimmed = text.trim_end_matches('\n');
    let last_start = trimmed.rfind('\n').map_or(0, |i| i + 1);
    let last = &trimmed[last_start..];
    if last.len() < 2 {
        return trimmed.to_string();
    }
    let mut rng = seeded_rng(seed);
    // Keep at least one byte and drop at least one, on a char boundary.
    let candidates: Vec<usize> = last
        .char_indices()
        .map(|(i, _)| i)
        .filter(|&i| i > 0)
        .collect();
    let cut = candidates[sample_indices(&mut rng, candidates.len(), 1)[0]];
    format!("{}{}", &trimmed[..last_start], &last[..cut])
}

/// One seeded garbage frame: printable ASCII that is definitely not
/// JSON. Valid UTF-8 on purpose — it must exercise the daemon's
/// per-frame `invalid` response, not the fatal protocol path.
pub fn garbage_frame(seed: u64) -> String {
    let mut rng = seeded_rng(seed);
    let len = 8 + sample_indices(&mut rng, 24, 1)[0];
    let mut s = String::with_capacity(len + 1);
    s.push('<'); // never a valid JSON start
    for idx in sample_indices(&mut rng, 94 * len, len) {
        s.push((b' ' + (idx % 94) as u8) as char);
    }
    s
}

/// A writer wrapper that sleeps before every write — a slow downstream
/// consumer. Drives the serving daemon's backpressure path: the core
/// loop stalls on writes, the admission queue fills, and the reader
/// must shed with typed responses instead of buffering unboundedly.
pub struct SlowWriter<W> {
    inner: W,
    delay: std::time::Duration,
}

impl<W: std::io::Write> SlowWriter<W> {
    /// Wrap `inner`, sleeping `delay` before each write call.
    pub fn new(inner: W, delay: std::time::Duration) -> SlowWriter<W> {
        SlowWriter { inner, delay }
    }

    /// The wrapped writer (to inspect what was written).
    pub fn inner(&self) -> &W {
        &self.inner
    }
}

impl<W: std::io::Write> std::io::Write for SlowWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        std::thread::sleep(self.delay);
        self.inner.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_table() -> Table {
        let n = 24;
        let mut t = Table::new();
        t.add_numeric("a", (0..n).map(|i| i as f64).collect())
            .add_numeric("b", (0..n).map(|i| (i * i % 7) as f64).collect())
            .add_flag("f", (0..n).map(|i| i % 2 == 0).collect())
            .set_target((0..n).map(|i| 2.0 * i as f64 + 1.0).collect());
        t
    }

    #[test]
    fn constant_column_is_frozen() {
        let t = with_constant_column(&toy_table(), "a");
        assert!(t.column("a").expect("col a").is_constant());
        assert!(!t.column("b").expect("col b").is_constant());
    }

    #[test]
    fn collinear_column_duplicates_values() {
        let t = with_collinear_column(&toy_table(), "b");
        assert_eq!(t.column("b"), t.column("b_dup"));
        assert_eq!(t.n_cols(), 4);
    }

    #[test]
    fn nan_targets_are_seeded_and_bounded() {
        let a = with_nan_targets(&toy_table(), 5, 9);
        let b = with_nan_targets(&toy_table(), 5, 9);
        let nan_rows = |t: &Table| {
            t.target()
                .iter()
                .enumerate()
                .filter(|(_, y)| y.is_nan())
                .map(|(i, _)| i)
                .collect::<Vec<_>>()
        };
        assert_eq!(nan_rows(&a), nan_rows(&b), "same seed, same fault");
        assert_eq!(nan_rows(&a).len(), 5);
    }

    #[test]
    fn corrupt_artifact_bytes_is_seeded_and_length_preserving() {
        let dir = std::env::temp_dir().join("perfpredict-faultinject-corrupt");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("artifact.bin").to_string_lossy().into_owned();
        let original = b"PPMODEL {\"checksum\":\"abc\"}\n{\"weights\":[1,2,3]}\n".to_vec();
        std::fs::write(&path, &original).expect("write");
        corrupt_artifact_bytes(&path, 4, 7).expect("corrupt");
        let once = std::fs::read(&path).expect("read");
        assert_eq!(once.len(), original.len(), "length preserved");
        assert_ne!(once, original, "bytes actually changed");
        assert!(String::from_utf8(once.clone()).is_ok(), "stays UTF-8");
        std::fs::write(&path, &original).expect("rewrite");
        corrupt_artifact_bytes(&path, 4, 7).expect("corrupt again");
        assert_eq!(
            std::fs::read(&path).expect("read"),
            once,
            "same seed, same fault"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_final_frame_cuts_mid_line_deterministically() {
        let text = "{\"id\":\"q1\",\"x\":1}\n{\"id\":\"q2\",\"x\":2}\n";
        let cut = truncate_final_frame(text, 3);
        assert!(cut.starts_with("{\"id\":\"q1\",\"x\":1}\n"), "{cut}");
        assert!(!cut.ends_with('\n'), "torn tail has no newline");
        let last = cut.lines().last().expect("tail");
        assert!(!last.is_empty() && last.len() < "{\"id\":\"q2\",\"x\":2}".len());
        assert_eq!(truncate_final_frame(text, 3), cut, "seeded");
        assert_ne!(truncate_final_frame(text, 4), cut, "seed varies the cut");
    }

    #[test]
    fn garbage_frame_is_seeded_non_json_utf8() {
        let g = garbage_frame(11);
        assert_eq!(garbage_frame(11), g, "seeded");
        assert!(g.starts_with('<'), "{g}");
        assert!(g.is_ascii());
        assert!(telemetry::json::parse(&g).is_err(), "must not parse: {g}");
    }

    #[test]
    fn slow_writer_delays_but_preserves_bytes() {
        use std::io::Write as _;
        let mut w = SlowWriter::new(Vec::new(), std::time::Duration::from_millis(1));
        let t0 = std::time::Instant::now();
        w.write_all(b"hello").expect("write");
        w.write_all(b" world").expect("write");
        w.flush().expect("flush");
        assert!(t0.elapsed() >= std::time::Duration::from_millis(2));
        assert_eq!(w.inner(), b"hello world");
    }

    #[test]
    fn corrupt_line_rejects_out_of_range() {
        let dir = std::env::temp_dir().join("perfpredict-faultinject-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("tiny.jsonl").to_string_lossy().into_owned();
        std::fs::write(&path, "{}\n").expect("write");
        assert!(corrupt_line(&path, 3).is_err());
        corrupt_line(&path, 0).expect("in range");
        assert!(std::fs::read_to_string(&path)
            .expect("read")
            .starts_with("{corrupted"));
        let _ = std::fs::remove_file(&path);
    }
}
