//! Chronological predictive modelling (Figure 1b, §4.3).
//!
//! Train every model on the announcements of one year and predict the
//! following year's systems. The paper's headline: linear regression wins
//! (networks over-fit the training year and extrapolate poorly), LR-E best
//! on the Intel single-socket families, LR-S/LR-B best on the Opteron
//! SMPs, and everything within ~2 % on Pentium D's short, homogeneous
//! history.

use crate::data::try_table_from_announcements;
use fault::{Error, Result};
use linalg::dist::child_seed;
use linalg::stats::mape;
use mlmodels::crossval::{try_estimate_error, Dropped, ErrorEstimate};
use mlmodels::importance::{importance, Importance};
use mlmodels::{try_train, ModelKind};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use specdata::{AnnouncementSet, ProcessorFamily};

/// Configuration of a chronological experiment.
#[derive(Debug, Clone)]
pub struct ChronoConfig {
    /// Training year (the paper uses 2005 → 2006).
    pub train_year: u32,
    /// Models to evaluate (Figures 7–8 plot all nine).
    pub models: Vec<ModelKind>,
    /// Data-generation seed.
    pub data_seed: u64,
    /// Training seed.
    pub seed: u64,
    /// Whether to run §3.3 error estimation on the training year.
    pub estimate_errors: bool,
    /// Directory to export every successfully trained model into as a
    /// `.ppmodel` artifact (`None` disables export).
    pub export_models: Option<String>,
}

impl Default for ChronoConfig {
    fn default() -> Self {
        ChronoConfig {
            train_year: 2005,
            models: ModelKind::FIGURE7_ORDER.to_vec(),
            data_seed: 42,
            seed: 0xC4,
            estimate_errors: false,
            export_models: None,
        }
    }
}

/// One model's chronological prediction quality.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChronoPoint {
    /// Model evaluated.
    pub model: ModelKind,
    /// Mean percentage error on the future year.
    pub error_mean: f64,
    /// Std-dev of the percentage error (the Figure 7/8 error bars).
    pub error_std: f64,
    /// Estimated error from the training year (when requested).
    pub estimated: Option<ErrorEstimate>,
    /// Predictor importance from this trained model.
    pub importance: Vec<Importance>,
}

/// Full chronological result for one family.
#[derive(Debug, Clone)]
pub struct ChronoResult {
    /// Processor family.
    pub family: ProcessorFamily,
    /// Training rows (train year).
    pub n_train: usize,
    /// Test rows (train year + 1).
    pub n_test: usize,
    /// Per-model results, in `cfg.models` order (failed models omitted).
    pub points: Vec<ChronoPoint>,
    /// Models whose fit failed, with their recorded reasons.
    pub dropped: Vec<Dropped>,
}

impl ChronoResult {
    /// The best (lowest mean error) model and its error — Table 2's cells.
    ///
    /// Panicking wrapper over [`ChronoResult::try_best`].
    pub fn best(&self) -> (&ChronoPoint, f64) {
        match self.try_best() {
            Ok(b) => b,
            Err(e) => panic!("best model: {e}"),
        }
    }

    /// The best model among those with a finite mean error, or
    /// [`Error::NoViableModel`] when every candidate failed or scored
    /// non-finite.
    pub(crate) fn try_best(&self) -> Result<(&ChronoPoint, f64)> {
        let p = self
            .points
            .iter()
            .filter(|p| p.error_mean.is_finite())
            .min_by(|a, b| a.error_mean.total_cmp(&b.error_mean));
        match p {
            Some(p) => Ok((p, p.error_mean)),
            None => {
                let mut reasons: Vec<(String, String)> = self
                    .points
                    .iter()
                    .map(|p| {
                        (
                            p.model.abbrev().to_string(),
                            format!("non-finite mean error ({})", p.error_mean),
                        )
                    })
                    .collect();
                reasons.extend(
                    self.dropped
                        .iter()
                        .map(|d| (d.kind.abbrev().to_string(), d.detail.clone())),
                );
                Err(Error::NoViableModel { reasons })
            }
        }
    }

    /// All models within `slack` (relative) of the best — the paper lists
    /// ties like "LR-B/LR-S".
    pub fn best_set(&self, slack: f64) -> Vec<ModelKind> {
        let (_, best) = self.best();
        self.points
            .iter()
            .filter(|p| p.error_mean <= best * (1.0 + slack))
            .map(|p| p.model)
            .collect()
    }
}

/// Run the chronological experiment for one family.
///
/// Infallible-signature wrapper over [`try_run_chronological`]; panics on
/// its error paths (empty train/test years). Pipeline code uses the
/// `try_` variant.
pub fn run_chronological(family: ProcessorFamily, cfg: &ChronoConfig) -> ChronoResult {
    match try_run_chronological(family, cfg) {
        Ok(r) => r,
        Err(e) => panic!("chronological {}: {e}", family.name()),
    }
}

/// Fallible chronological experiment.
///
/// An empty training or test year is [`Error::DegenerateData`]. A model
/// whose fit fails is recorded in [`ChronoResult::dropped`] with its
/// reason instead of poisoning the family's whole result; a failed §3.3
/// estimation leaves `estimated: None` on an otherwise valid point.
pub fn try_run_chronological(family: ProcessorFamily, cfg: &ChronoConfig) -> Result<ChronoResult> {
    let _span = telemetry::span!(
        "chronological",
        family = family.name(),
        train_year = cfg.train_year,
        models = cfg.models.len(),
    );
    let set = AnnouncementSet::generate(family, cfg.data_seed);
    let (train_recs, test_recs) = set.try_chronological_split(cfg.train_year)?;
    let train_table = try_table_from_announcements(&train_recs)?;
    let test_table = try_table_from_announcements(&test_recs)?;
    if let Some(dir) = &cfg.export_models {
        std::fs::create_dir_all(dir).map_err(|e| Error::io(dir.clone(), e))?;
    }

    let progress = telemetry::Progress::new("chronological", cfg.models.len() as u64);
    type Outcome = std::result::Result<(ChronoPoint, Option<mlmodels::TrainedModel>), Dropped>;
    let outcomes: Vec<Outcome> = cfg
        .models
        .par_iter()
        .enumerate()
        .map(|(mi, &kind)| {
            let _model_span =
                telemetry::span!("model", model = kind.abbrev(), family = family.name());
            let seed = child_seed(cfg.seed, mi as u64);
            let fit = {
                let _fit_span = telemetry::span!("fit", model = kind.abbrev());
                try_train(kind, &train_table, seed)
            };
            let model = match fit {
                Ok(m) => m,
                Err(e) => {
                    telemetry::point!(
                        "chrono/drop_model",
                        model = kind.abbrev(),
                        reason = e.kind()
                    );
                    progress.inc();
                    return Err(Dropped {
                        kind,
                        reason: e.kind().to_string(),
                        detail: e.to_string(),
                    });
                }
            };
            let preds = model.predict(&test_table);
            let (error_mean, error_std) = mape(&preds, test_table.target());
            let estimated = if cfg.estimate_errors {
                let _est_span = telemetry::span!("estimate_error", model = kind.abbrev());
                match try_estimate_error(kind, &train_table, child_seed(seed, 0xE5)) {
                    Ok(est) => Some(est),
                    Err(e) => {
                        telemetry::point!(
                            "chrono/estimate_failed",
                            model = kind.abbrev(),
                            reason = e.kind()
                        );
                        None
                    }
                }
            } else {
                None
            };
            progress.inc();
            let imp = importance(&model, &train_table);
            let keep_model = cfg.export_models.is_some();
            Ok((
                ChronoPoint {
                    model: kind,
                    error_mean,
                    error_std,
                    estimated,
                    importance: imp,
                },
                keep_model.then_some(model),
            ))
        })
        .collect();

    let mut points = Vec::new();
    let mut dropped = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok((p, model)) => {
                if let (Some(dir), Some(model)) = (&cfg.export_models, model) {
                    let path = format!(
                        "{dir}/{}_{}_y{}.ppmodel",
                        family.name(),
                        p.model.abbrev(),
                        cfg.train_year
                    );
                    mlmodels::ModelArtifact::from_training(model, &train_table).save(&path)?;
                    telemetry::point!("chrono/export", model = p.model.abbrev(), path = path);
                }
                points.push(p);
            }
            Err(d) => dropped.push(d),
        }
    }

    Ok(ChronoResult {
        family,
        n_train: train_table.n_rows(),
        n_test: test_table.n_rows(),
        points,
        dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ChronoConfig {
        ChronoConfig {
            models: vec![ModelKind::LrE, ModelKind::LrB, ModelKind::NnS],
            ..Default::default()
        }
    }

    #[test]
    fn produces_results_for_each_model() {
        let r = run_chronological(ProcessorFamily::Opteron, &quick_cfg());
        assert_eq!(r.points.len(), 3);
        assert!(r.n_train > 10 && r.n_test > 10);
        for p in &r.points {
            assert!(p.error_mean.is_finite() && p.error_mean >= 0.0);
            assert!(p.error_std >= 0.0);
            assert!(!p.importance.is_empty());
        }
    }

    #[test]
    fn linear_models_predict_the_future_year_well() {
        for fam in [ProcessorFamily::Opteron, ProcessorFamily::Xeon] {
            let r = run_chronological(fam, &quick_cfg());
            let lr_best = r
                .points
                .iter()
                .filter(|p| p.model.is_linear())
                .map(|p| p.error_mean)
                .fold(f64::INFINITY, f64::min);
            assert!(
                lr_best < 10.0,
                "{}: best LR error {lr_best}% too high",
                fam.name()
            );
        }
    }

    #[test]
    fn processor_speed_dominates_importance() {
        let r = run_chronological(ProcessorFamily::Opteron, &quick_cfg());
        // For the LR-E model the top importance should be processor speed
        // (paper: standardized beta 0.915).
        let lre = r.points.iter().find(|p| p.model == ModelKind::LrE).unwrap();
        assert_eq!(
            lre.importance[0].name,
            "processor_speed_mhz",
            "importances: {:?}",
            &lre.importance[..3.min(lre.importance.len())]
        );
    }

    #[test]
    fn best_set_includes_the_minimum() {
        let r = run_chronological(ProcessorFamily::PentiumD, &quick_cfg());
        let (best_point, _) = r.best();
        assert!(r.best_set(0.1).contains(&best_point.model));
    }

    #[test]
    fn estimated_errors_present_when_requested() {
        let cfg = ChronoConfig {
            models: vec![ModelKind::LrE],
            estimate_errors: true,
            ..Default::default()
        };
        let r = run_chronological(ProcessorFamily::Opteron, &cfg);
        let est = r.points[0].estimated.expect("requested estimation");
        assert!(est.max >= est.mean);
    }

    #[test]
    fn train_year_is_configurable() {
        let cfg = ChronoConfig {
            train_year: 2004,
            models: vec![ModelKind::LrE],
            ..Default::default()
        };
        let r = run_chronological(ProcessorFamily::Opteron4, &cfg);
        assert!(r.n_train > 0 && r.n_test > 0);
    }

    #[test]
    fn empty_year_is_a_typed_error() {
        let cfg = ChronoConfig {
            train_year: 1980,
            models: vec![ModelKind::LrE],
            ..Default::default()
        };
        let err = try_run_chronological(ProcessorFamily::Opteron, &cfg).expect_err("no 1980 data");
        assert_eq!(err.kind(), "degenerate");
    }

    #[test]
    fn export_models_writes_loadable_artifacts() {
        let dir = std::env::temp_dir().join("perfpredict-chrono-export");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ChronoConfig {
            models: vec![ModelKind::LrE, ModelKind::NnS],
            export_models: Some(dir.to_string_lossy().into_owned()),
            ..Default::default()
        };
        let r = run_chronological(ProcessorFamily::Opteron, &cfg);
        assert_eq!(r.points.len(), 2);
        let mut exported: Vec<_> = std::fs::read_dir(&dir)
            .expect("export dir")
            .map(|e| e.expect("entry").path())
            .collect();
        exported.sort();
        assert_eq!(exported.len(), 2, "{exported:?}");
        for path in &exported {
            let art = mlmodels::ModelArtifact::load(&path.to_string_lossy()).expect("loadable");
            assert_eq!(art.schema.columns.len(), 32, "announcement parameter count");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deterministic_per_seeds() {
        let a = run_chronological(ProcessorFamily::Opteron2, &quick_cfg());
        let b = run_chronological(ProcessorFamily::Opteron2, &quick_cfg());
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.error_mean, y.error_mean);
        }
    }
}
