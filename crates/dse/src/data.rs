//! Adapters: simulator sweeps and SPEC announcements → model tables.
//!
//! The `try_` builders are the library path: every defect — an empty
//! sweep, a categorical vocabulary too large for its code type, a table
//! that fails validation — propagates as a typed [`fault::Error`]
//! instead of panicking. The un-prefixed wrappers keep the historical
//! panicking signatures for test and bench harnesses.

use std::collections::HashMap;

use cpusim::config::CpuConfig;
use cpusim::runner::SimResult;
use fault::{Error, Result};
use mlmodels::Table;
use specdata::Announcement;

/// Build the sampled-DSE table from sweep results: the 24 Table-1
/// parameters as predictors (branch predictor categorical, wrong-path a
/// flag, the rest numeric), simulated cycles as the target.
///
/// Panicking wrapper over [`try_table_from_sweep`].
pub fn table_from_sweep(results: &[SimResult]) -> Table {
    match try_table_from_sweep(results) {
        Ok(t) => t,
        Err(e) => panic!("sweep table: {e}"),
    }
}

/// Fallible sweep-table builder. An empty sweep or a feature list
/// missing the wrong-path flag is [`Error::DegenerateData`]; the built
/// table is validated before it is returned.
pub fn try_table_from_sweep(results: &[SimResult]) -> Result<Table> {
    if results.is_empty() {
        return Err(Error::degenerate("empty sweep"));
    }
    let configs: Vec<CpuConfig> = results.iter().map(|r| r.config).collect();
    table_from_config_rows(&configs, results.iter().map(|r| r.cycles).collect())
}

/// Feature-only table for *unlabeled* configurations, with a zero target.
///
/// Used to score acquisition candidates with a trained committee: the
/// predict surfaces transform the predictor columns through the model's
/// stored preprocessor and never read the target, so the placeholder
/// target is inert. Column names and types are identical to
/// [`try_table_from_sweep`] by construction (one shared row builder), so
/// a model trained on labeled rows can predict these rows directly.
pub(crate) fn try_table_from_configs(configs: &[CpuConfig]) -> Result<Table> {
    if configs.is_empty() {
        return Err(Error::degenerate("empty candidate set"));
    }
    table_from_config_rows(configs, vec![0.0; configs.len()])
}

/// Shared row builder behind [`try_table_from_sweep`] and
/// [`try_table_from_configs`]: the 24 Table-1 parameters as predictors
/// (branch predictor categorical, wrong-path a flag, the rest numeric),
/// with a caller-supplied target.
fn table_from_config_rows(configs: &[CpuConfig], target: Vec<f64>) -> Result<Table> {
    let mut numeric: Vec<(usize, Vec<f64>)> = Vec::new();
    let names = CpuConfig::feature_names();

    // All numeric features except the categorical bpred and the flag
    // issue_wrong_path. `CpuConfig::feature_names()` is a compile-time
    // constant list that includes "issue_wrong_path" (a unit test in
    // cpusim pins it), but a missing entry degrades to a typed error.
    let flag_idx = names
        .iter()
        .position(|&n| n == "issue_wrong_path")
        .ok_or_else(|| {
            Error::degenerate("CpuConfig feature list has no issue_wrong_path column")
        })?;
    for (j, _) in names.iter().enumerate() {
        if j == CpuConfig::BPRED_FEATURE_INDEX || j == flag_idx {
            continue;
        }
        let col: Vec<f64> = configs.iter().map(|c| c.features()[j]).collect();
        numeric.push((j, col));
    }

    let mut t = Table::new();
    for (j, col) in numeric {
        t.add_numeric(names[j], col);
    }
    t.add_flag(
        "issue_wrong_path",
        configs.iter().map(|c| c.issue_wrong_path).collect(),
    );
    t.add_categorical(
        "bpred",
        configs.iter().map(|c| c.bpred.code() as u32).collect(),
        cpusim::BranchPredictorKind::ALL
            .iter()
            .map(|b| b.name().to_string())
            .collect(),
    );
    t.set_target(target);
    t.try_validate()?;
    Ok(t)
}

/// Build a chronological-modelling table from announcements: all 32
/// parameters typed as §3.4 expects, SPECint rate as the target.
///
/// Panicking wrapper over [`try_table_from_announcements`].
pub fn table_from_announcements(records: &[&Announcement]) -> Table {
    match try_table_from_announcements(records) {
        Ok(t) => t,
        Err(e) => panic!("announcement table: {e}"),
    }
}

/// Fallible announcement-table builder. An empty record set is
/// [`Error::DegenerateData`], and a categorical vocabulary too large for
/// the `u32` code space is reported instead of silently truncated.
pub(crate) fn try_table_from_announcements(records: &[&Announcement]) -> Result<Table> {
    if records.is_empty() {
        return Err(Error::degenerate("empty announcement set"));
    }

    let mut t = Table::new();
    // The three identifier fields are categorical: sort-dedup the values
    // into a level vocabulary, then code each row through a map built
    // alongside it — no positional search, no unchecked narrowing.
    for (name, get) in [
        ("company", 0usize),
        ("system_name", 1),
        ("processor_model", 2),
    ] {
        let values: Vec<String> = records
            .iter()
            .map(|r| r.categorical_features()[get].to_string())
            .collect();
        let mut levels: Vec<String> = values.clone();
        levels.sort();
        levels.dedup();
        let mut code_of: HashMap<&str, u32> = HashMap::with_capacity(levels.len());
        for (i, level) in levels.iter().enumerate() {
            let code = u32::try_from(i).map_err(|_| {
                Error::degenerate(format!(
                    "categorical '{name}' has {} levels, exceeding the u32 code space",
                    levels.len()
                ))
            })?;
            code_of.insert(level.as_str(), code);
        }
        let codes: Vec<u32> = values
            .iter()
            .map(|v| {
                code_of.get(v.as_str()).copied().ok_or_else(|| {
                    Error::degenerate(format!(
                        "categorical '{name}': value '{v}' missing from its own level vocabulary"
                    ))
                })
            })
            .collect::<Result<_>>()?;
        t.add_categorical(name, codes, levels);
    }

    // Numeric/flag parameters. Flags keep their flag type; disk type is a
    // proper categorical.
    let num = |f: fn(&Announcement) -> f64| -> Vec<f64> { records.iter().map(|r| f(r)).collect() };
    let flag =
        |f: fn(&Announcement) -> bool| -> Vec<bool> { records.iter().map(|r| f(r)).collect() };

    t.add_numeric("bus_frequency_mhz", num(|r| r.bus_frequency_mhz));
    t.add_numeric("processor_speed_mhz", num(|r| r.processor_speed_mhz));
    t.add_flag("fpu", flag(|r| r.fpu));
    t.add_numeric("total_cores", num(|r| r.total_cores as f64));
    t.add_numeric("total_chips", num(|r| r.total_chips as f64));
    t.add_numeric("cores_per_chip", num(|r| r.cores_per_chip as f64));
    t.add_flag("smt", flag(|r| r.smt));
    t.add_flag("parallel", flag(|r| r.parallel));
    t.add_numeric("l1i_kb", num(|r| r.l1i_kb as f64));
    t.add_numeric("l1d_kb", num(|r| r.l1d_kb as f64));
    t.add_flag("l1_per_core", flag(|r| r.l1_per_core));
    t.add_numeric("l2_kb", num(|r| r.l2_kb as f64));
    t.add_flag("l2_on_chip", flag(|r| r.l2_on_chip));
    t.add_flag("l2_shared", flag(|r| r.l2_shared));
    t.add_flag("l2_unified", flag(|r| r.l2_unified));
    t.add_numeric("l3_kb", num(|r| r.l3_kb as f64));
    t.add_flag("l3_on_chip", flag(|r| r.l3_on_chip));
    t.add_flag("l3_per_core", flag(|r| r.l3_per_core));
    t.add_flag("l3_shared", flag(|r| r.l3_shared));
    t.add_flag("l3_unified", flag(|r| r.l3_unified));
    t.add_numeric("l4_kb", num(|r| r.l4_kb as f64));
    t.add_numeric("l4_shared_count", num(|r| r.l4_shared_count as f64));
    t.add_flag("l4_on_chip", flag(|r| r.l4_on_chip));
    t.add_numeric("memory_gb", num(|r| r.memory_gb));
    t.add_numeric("memory_freq_mhz", num(|r| r.memory_freq_mhz));
    t.add_numeric("disk_gb", num(|r| r.disk_gb));
    t.add_numeric("disk_rpm", num(|r| r.disk_rpm));
    t.add_categorical(
        "disk_type",
        records.iter().map(|r| r.disk_type.code() as u32).collect(),
        vec!["SCSI".into(), "SATA".into(), "IDE".into()],
    );
    t.add_numeric("extra_components", num(|r| r.extra_components as f64));

    t.set_target(records.iter().map(|r| r.specint_rate).collect());
    t.try_validate()?;
    Ok(t)
}

/// Like [`table_from_announcements`] but targeting the SPECfp2000 rate —
/// the floating-point counterpart the paper mentions in §4 ("SPECint2000
/// rate (and SPECfp2000 rate)").
pub fn table_from_announcements_fp(records: &[&Announcement]) -> Table {
    let mut t = table_from_announcements(records);
    t.set_target(records.iter().map(|r| r.specfp_rate).collect());
    t.validate();
    t
}

/// Fallible variant of [`table_from_announcements_fp`].
pub fn try_table_from_announcements_fp(records: &[&Announcement]) -> Result<Table> {
    let mut t = try_table_from_announcements(records)?;
    t.set_target(records.iter().map(|r| r.specfp_rate).collect());
    t.try_validate()?;
    Ok(t)
}

/// Like [`table_from_announcements`] but targeting one *individual*
/// application's normalized ratio instead of the overall rate — the
/// per-application estimation the paper ran but omitted for space ("we
/// have also tested individual SPEC applications and show that they can
/// also be accurately estimated").
pub fn table_from_announcements_app(records: &[&Announcement], app: usize) -> Table {
    assert!(
        records.iter().all(|r| app < r.app_ratios.len()),
        "application index {app} out of range"
    );
    let mut t = table_from_announcements(records);
    t.set_target(records.iter().map(|r| r.app_ratios[app]).collect());
    t.validate();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpusim::{sweep_design_space, Benchmark, DesignSpace, SimOptions};
    use specdata::{AnnouncementSet, ProcessorFamily};

    #[test]
    fn sweep_table_has_24_parameters() {
        let space =
            DesignSpace::from_configs(DesignSpace::table1_reduced().configs()[..12].to_vec());
        let res = sweep_design_space(&space, Benchmark::Applu, &SimOptions::quick());
        let t = table_from_sweep(&res);
        assert_eq!(t.n_cols(), 24, "Table 1 has 24 parameters");
        assert_eq!(t.n_rows(), 12);
        assert!(t.target().iter().all(|&c| c > 0.0));
        assert!(t.column("bpred").is_some());
        assert!(t.column("l2_size_kb").is_some());
    }

    #[test]
    fn announcement_table_has_32_parameters() {
        let set = AnnouncementSet::generate(ProcessorFamily::Opteron, 42);
        let refs: Vec<&Announcement> = set.records.iter().collect();
        let t = table_from_announcements(&refs);
        assert_eq!(t.n_cols(), 32, "each record provides 32 parameters");
        assert_eq!(t.n_rows(), set.len());
        assert!(t.column("processor_speed_mhz").is_some());
        assert!(t.column("company").is_some());
    }

    #[test]
    fn fp_table_targets_the_fp_rate() {
        let set = AnnouncementSet::generate(ProcessorFamily::Xeon, 42);
        let refs: Vec<&Announcement> = set.records.iter().collect();
        let t = table_from_announcements_fp(&refs);
        for (y, rec) in t.target().iter().zip(&set.records) {
            assert_eq!(*y, rec.specfp_rate);
        }
    }

    #[test]
    fn per_app_table_targets_the_ratio() {
        let set = AnnouncementSet::generate(ProcessorFamily::Opteron, 42);
        let refs: Vec<&Announcement> = set.records.iter().collect();
        let t = table_from_announcements_app(&refs, 3);
        for (y, rec) in t.target().iter().zip(&set.records) {
            assert_eq!(*y, rec.app_ratios[3]);
        }
    }

    #[test]
    fn empty_inputs_are_typed_degenerate_errors() {
        assert_eq!(
            try_table_from_sweep(&[]).expect_err("empty sweep").kind(),
            "degenerate"
        );
        assert_eq!(
            try_table_from_announcements(&[])
                .expect_err("empty set")
                .kind(),
            "degenerate"
        );
        assert_eq!(
            try_table_from_announcements_fp(&[])
                .expect_err("empty set")
                .kind(),
            "degenerate"
        );
    }

    #[test]
    fn try_builders_match_panicking_wrappers() {
        let set = AnnouncementSet::generate(ProcessorFamily::Opteron, 42);
        let refs: Vec<&Announcement> = set.records.iter().collect();
        assert_eq!(
            try_table_from_announcements(&refs).expect("valid"),
            table_from_announcements(&refs)
        );
    }

    #[test]
    fn announcement_targets_are_rates() {
        let set = AnnouncementSet::generate(ProcessorFamily::Xeon, 42);
        let refs: Vec<&Announcement> = set.records.iter().collect();
        let t = table_from_announcements(&refs);
        for (row, rec) in t.target().iter().zip(&set.records) {
            assert_eq!(*row, rec.specint_rate);
        }
    }
}
