//! Adaptive (active-learning) design-space exploration — an extension past
//! the paper's fixed random sampling (§2 closes with "there may be other
//! means of utilizing the predictive models during the design space
//! exploration").
//!
//! Instead of drawing the whole training sample up front, the explorer
//! alternates: train a small *committee* of networks on everything
//! simulated so far, find the unsimulated configurations the committee
//! disagrees on most (query-by-committee uncertainty), simulate exactly
//! those, and repeat. The result is an error trajectory comparable, at
//! equal simulation budget, with the paper's one-shot random sample.
//!
//! The loop is *lazy*: configurations are decoded from the space on demand
//! and labels are produced through [`cpusim::shard::try_simulate_indices`],
//! so on a generator-defined space of millions of points the explorer
//! simulates only the configurations it actually acquires (plus whatever
//! the chosen [`EvalMode`] needs) and never materializes the lattice.

use std::collections::{HashMap, HashSet};

use crate::data::{try_table_from_configs, try_table_from_sweep};
use cpusim::runner::SimResult;
use cpusim::{Benchmark, CpuConfig, DesignSpace};
use fault::{Error, Result};
use linalg::dist::{child_seed, seeded_rng};
use linalg::stats::{mape, std_dev};
use mlmodels::{try_train, ModelKind, Table, TrainedModel};
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Largest space the explorer will score or evaluate exhaustively. Past
/// this, candidate scoring must be capped with [`AdaptiveConfig::pool`]
/// and evaluation must use a holdout (or none) instead of the full space.
pub(crate) const MAX_EXHAUSTIVE_SCORING: usize = 65_536;

/// Seed-stream layout for the adaptive loop.
///
/// Every random draw gets its own [`child_seed`] stream. Each round owns a
/// block of 2^16 stream ids, so per-round purposes can never collide with
/// another round's for any feasible round count — the previous flat
/// `50 + round` / `70 + round` / `90 + round` offsets overlapped from
/// round 20 (e.g. eval stream of round 20 == baseline-train stream of
/// round 0), silently correlating draws that must be independent. A
/// regression test below pins the disjointness.
pub(crate) mod streams {
    /// Initial acquisition draw (global, not per-round).
    pub const INITIAL: u64 = 1;
    /// Holdout evaluation-set draw (global, not per-round).
    pub const HOLDOUT: u64 = 2;

    /// Each round owns the block `[ROUND_BASE * (round+1), ROUND_BASE * (round+2))`.
    const ROUND_BASE: u64 = 1 << 16;
    const EVAL: u64 = 0;
    const BASELINE_DRAW: u64 = 1;
    const BASELINE_TRAIN: u64 = 2;
    const POOL: u64 = 3;
    /// Committee members start at offset 0x100 inside the round block.
    const COMMITTEE: u64 = 0x100;

    fn block(round: usize) -> u64 {
        ROUND_BASE * (round as u64 + 1)
    }

    /// Final-model training seed for the round's trajectory point.
    pub fn eval(round: usize) -> u64 {
        block(round) + EVAL
    }

    /// Equal-budget random-baseline sample draw.
    pub fn baseline_draw(round: usize) -> u64 {
        block(round) + BASELINE_DRAW
    }

    /// Random-baseline model training seed.
    pub fn baseline_train(round: usize) -> u64 {
        block(round) + BASELINE_TRAIN
    }

    /// Candidate-pool draw for capped scoring on huge spaces.
    pub fn pool(round: usize) -> u64 {
        block(round) + POOL
    }

    /// Per-member committee training seed.
    pub fn committee(round: usize, member: usize) -> u64 {
        block(round) + COMMITTEE + member as u64
    }
}

/// How trajectory errors are measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalMode {
    /// Label the whole space and report ground-truth MAPE over it (the
    /// historical behaviour). Only sensible when a precomputed sweep is at
    /// hand or the space is small; rejected past
    /// [`MAX_EXHAUSTIVE_SCORING`] points without a precomputed sweep.
    FullSpace,
    /// Label a seeded holdout of the given size once, keep it disjoint
    /// from acquisition, and report MAPE over it.
    Holdout(usize),
    /// Measure nothing: trajectory errors are NaN and the simulation count
    /// stays exactly `initial + batch × rounds`.
    AcquisitionOnly,
}

/// Configuration of an adaptive exploration.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Random seed points to start from.
    pub initial: usize,
    /// Configurations added per acquisition round.
    pub batch: usize,
    /// Acquisition rounds.
    pub rounds: usize,
    /// Committee size (networks trained with different seeds).
    pub committee: usize,
    /// Candidate-pool cap per round: score committee disagreement over a
    /// seeded sample of this many unacquired configurations. `0` scores
    /// every unacquired point, which is rejected for spaces past
    /// [`MAX_EXHAUSTIVE_SCORING`] points.
    pub pool: usize,
    /// Error-measurement protocol for the trajectory.
    pub eval: EvalMode,
    /// Committee member model (NN-Q by default: cheap and diverse).
    pub member: ModelKind,
    /// Final model retrained on the acquired sample for evaluation.
    pub final_model: ModelKind,
    /// Simulator options (used only when no precomputed sweep is given).
    pub sim: cpusim::runner::SimOptions,
    /// Master seed.
    pub seed: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            initial: 24,
            batch: 12,
            rounds: 4,
            committee: 5,
            pool: 0,
            eval: EvalMode::FullSpace,
            member: ModelKind::NnQ,
            final_model: ModelKind::NnE,
            sim: cpusim::runner::SimOptions::default(),
            seed: 0xADA,
        }
    }
}

/// One point of the budget-vs-error trajectory.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Simulations spent on acquisition so far.
    pub budget: usize,
    /// Error of the final model trained on the adaptive sample (NaN under
    /// [`EvalMode::AcquisitionOnly`]).
    pub adaptive_error: f64,
    /// Error of the same model trained on a random sample of equal size
    /// (the paper's protocol; NaN under [`EvalMode::AcquisitionOnly`]).
    pub random_error: f64,
}

/// Result of one adaptive exploration.
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// The benchmark explored.
    pub benchmark: Benchmark,
    /// Error trajectory, one entry per round (including the seed round).
    pub trajectory: Vec<TrajectoryPoint>,
    /// Distinct configurations whose labels were produced (fresh
    /// simulations, or rows revealed from a precomputed sweep). Under
    /// [`EvalMode::AcquisitionOnly`] with no checkpoint restore this is
    /// exactly `initial + batch × rounds`.
    pub simulated: usize,
}

/// Label source for the explorer: a precomputed sweep (labels are revealed
/// as configurations are acquired) or the sharded lazy simulator. Counts
/// distinct label productions so tests can pin the simulation budget.
struct Oracle<'a> {
    space: &'a DesignSpace,
    benchmark: Benchmark,
    sim: cpusim::runner::SimOptions,
    precomputed: Option<Vec<SimResult>>,
    ledger: Option<&'a str>,
    cache: HashMap<usize, SimResult>,
    simulated: usize,
}

impl<'a> Oracle<'a> {
    /// Label `idxs` (cached labels are free), returning results in request
    /// order. Duplicate requests share one label.
    fn labels(&mut self, idxs: &[usize]) -> Result<Vec<SimResult>> {
        let mut missing: Vec<usize> = Vec::new();
        let mut seen: HashSet<usize> = HashSet::new();
        for &i in idxs {
            if !self.cache.contains_key(&i) && seen.insert(i) {
                missing.push(i);
            }
        }
        if !missing.is_empty() {
            match &self.precomputed {
                Some(pre) => {
                    for &i in &missing {
                        self.cache.insert(i, pre[i].clone());
                    }
                    self.simulated += missing.len();
                }
                None => {
                    let batch = cpusim::shard::try_simulate_indices(
                        self.space,
                        self.benchmark,
                        &self.sim,
                        &missing,
                        self.ledger,
                    )?;
                    // Ledger-restored labels are not fresh simulations.
                    self.simulated += batch.simulated;
                    for (i, r) in missing.iter().zip(batch.results) {
                        self.cache.insert(*i, r);
                    }
                }
            }
        }
        idxs.iter()
            .map(|i| {
                self.cache.get(i).cloned().ok_or_else(|| {
                    Error::degenerate(format!("oracle produced no label for index {i}"))
                })
            })
            .collect()
    }
}

/// Draw `k` distinct indices from `0..n` avoiding `exclude`. Rejection
/// sampling when the draw is sparse (never materializes `0..n`), a
/// filtered shuffle when it is dense.
fn draw_distinct(rng: &mut impl Rng, n: usize, k: usize, exclude: &HashSet<usize>) -> Vec<usize> {
    debug_assert!(
        k + exclude.len() <= n,
        "draw_distinct: k + |exclude| must fit in n"
    );
    let free = n - exclude.len();
    let mut out = Vec::with_capacity(k);
    if k.saturating_mul(4) >= free {
        for i in linalg::dist::permutation(rng, n) {
            if !exclude.contains(&i) {
                out.push(i);
                if out.len() == k {
                    break;
                }
            }
        }
    } else {
        let mut seen: HashSet<usize> = HashSet::with_capacity(k);
        while out.len() < k {
            let i = rng.random_range(0..n);
            if !exclude.contains(&i) && seen.insert(i) {
                out.push(i);
            }
        }
    }
    out
}

/// Validate an [`AdaptiveConfig`] against a space of `n` points. Returns
/// the total acquisition budget.
fn validate_config(cfg: &AdaptiveConfig, n: usize, has_precomputed: bool) -> Result<usize> {
    if n == 0 {
        return Err(Error::invalid(
            "adaptive exploration needs a non-empty space",
        ));
    }
    if cfg.initial == 0 {
        return Err(Error::invalid(
            "adaptive exploration needs at least one initial point",
        ));
    }
    if cfg.rounds > 0 && cfg.batch == 0 {
        return Err(Error::invalid(
            "adaptive exploration with rounds > 0 needs a non-zero batch",
        ));
    }
    if cfg.committee < 2 {
        return Err(Error::invalid(
            "query-by-committee needs a committee of at least 2",
        ));
    }
    let budget = cfg
        .batch
        .checked_mul(cfg.rounds)
        .and_then(|b| b.checked_add(cfg.initial))
        .ok_or_else(|| Error::invalid("adaptive budget overflows usize"))?;
    if budget >= n {
        return Err(Error::invalid(format!(
            "adaptive budget of {budget} points (initial {} + batch {} \u{d7} rounds {}) \
             exceeds the space of {n} points",
            cfg.initial, cfg.batch, cfg.rounds
        )));
    }
    if cfg.pool == 0 && n > MAX_EXHAUSTIVE_SCORING {
        return Err(Error::invalid(format!(
            "space has {n} points, too many to score exhaustively; \
             set AdaptiveConfig::pool to cap candidate scoring"
        )));
    }
    match cfg.eval {
        EvalMode::FullSpace => {
            if n > MAX_EXHAUSTIVE_SCORING && !has_precomputed {
                return Err(Error::invalid(format!(
                    "full-space evaluation would simulate all {n} points; \
                     use EvalMode::Holdout or EvalMode::AcquisitionOnly"
                )));
            }
        }
        EvalMode::Holdout(k) => {
            if k == 0 {
                return Err(Error::invalid(
                    "holdout evaluation needs a non-empty holdout",
                ));
            }
            if budget + k > n {
                return Err(Error::invalid(format!(
                    "budget {budget} + holdout {k} exceeds the space of {n} points"
                )));
            }
        }
        EvalMode::AcquisitionOnly => {}
    }
    Ok(budget)
}

/// Run the adaptive exploration. A precomputed sweep (covering the whole
/// space, in index order) doubles as the simulator oracle; without one,
/// labels are produced lazily through the sharded driver, persisting to
/// `ledger` (a sweep-checkpoint path) when given so an interrupted
/// exploration resumes without re-simulating.
pub fn try_run_adaptive(
    benchmark: Benchmark,
    space: &DesignSpace,
    cfg: &AdaptiveConfig,
    precomputed: Option<Vec<SimResult>>,
    ledger: Option<&str>,
) -> Result<AdaptiveResult> {
    let n = space.len();
    let _budget = validate_config(cfg, n, precomputed.is_some())?;
    if let Some(pre) = &precomputed {
        if pre.len() != n {
            return Err(Error::invalid(format!(
                "precomputed sweep has {} results for a space of {n} points",
                pre.len()
            )));
        }
    }
    let _span = telemetry::span!(
        "dse/adaptive",
        benchmark = benchmark.name(),
        space = n,
        initial = cfg.initial,
        rounds = cfg.rounds
    );

    let mut oracle = Oracle {
        space,
        benchmark,
        sim: cfg.sim,
        precomputed,
        ledger,
        cache: HashMap::new(),
        simulated: 0,
    };

    // Evaluation set: labeled once, disjoint from every acquisition draw.
    let (holdout, eval_table): (HashSet<usize>, Option<Table>) = match cfg.eval {
        EvalMode::AcquisitionOnly => (HashSet::new(), None),
        EvalMode::FullSpace => {
            let all: Vec<usize> = (0..n).collect();
            let rows = oracle.labels(&all)?;
            (HashSet::new(), Some(try_table_from_sweep(&rows)?))
        }
        EvalMode::Holdout(k) => {
            let mut hrng = seeded_rng(child_seed(cfg.seed, streams::HOLDOUT));
            let idxs = draw_distinct(&mut hrng, n, k, &HashSet::new());
            let rows = oracle.labels(&idxs)?;
            (
                idxs.into_iter().collect(),
                Some(try_table_from_sweep(&rows)?),
            )
        }
    };

    let mut rng = seeded_rng(child_seed(cfg.seed, streams::INITIAL));
    let mut acquired: Vec<usize> = draw_distinct(&mut rng, n, cfg.initial, &holdout);
    let mut trajectory = Vec::with_capacity(cfg.rounds + 1);

    for round in 0..=cfg.rounds {
        let budget = acquired.len();
        let train_rows = oracle.labels(&acquired)?;
        let train_table = try_table_from_sweep(&train_rows)?;

        let (adaptive_error, random_error) = match &eval_table {
            None => (f64::NAN, f64::NAN),
            Some(eval) => {
                let model = try_train(
                    cfg.final_model,
                    &train_table,
                    child_seed(cfg.seed, streams::eval(round)),
                )?;
                let (a_err, _) = mape(&model.try_predict(eval)?, eval.target());
                // Equal-budget random baseline (fresh draw each round).
                let mut brng = seeded_rng(child_seed(cfg.seed, streams::baseline_draw(round)));
                let random_rows = draw_distinct(&mut brng, n, budget, &holdout);
                let random_table = try_table_from_sweep(&oracle.labels(&random_rows)?)?;
                let baseline = try_train(
                    cfg.final_model,
                    &random_table,
                    child_seed(cfg.seed, streams::baseline_train(round)),
                )?;
                let (r_err, _) = mape(&baseline.try_predict(eval)?, eval.target());
                (a_err, r_err)
            }
        };
        trajectory.push(TrajectoryPoint {
            budget,
            adaptive_error,
            random_error,
        });

        if round == cfg.rounds {
            break;
        }

        // Query-by-committee: train the committee on the acquired sample.
        let committee: Vec<TrainedModel> = (0..cfg.committee)
            .into_par_iter()
            .map(|m| {
                try_train(
                    cfg.member,
                    &train_table,
                    child_seed(cfg.seed, streams::committee(round, m)),
                )
            })
            .collect::<Result<Vec<_>>>()?;

        // Candidate pool: everything unacquired, or a seeded cap of it.
        let acquired_set: HashSet<usize> = acquired.iter().copied().collect();
        let taken: HashSet<usize> = acquired_set.union(&holdout).copied().collect();
        let candidates: Vec<usize> = if cfg.pool == 0 {
            (0..n).filter(|i| !taken.contains(i)).collect()
        } else {
            let mut prng = seeded_rng(child_seed(cfg.seed, streams::pool(round)));
            let want = cfg.pool.min(n - taken.len());
            draw_distinct(&mut prng, n, want, &taken)
        };
        if candidates.len() < cfg.batch {
            return Err(Error::degenerate(format!(
                "round {round} candidate pool has {} points but the batch needs {}",
                candidates.len(),
                cfg.batch
            )));
        }

        // Disagreement is scored on *features only* — candidates are
        // decoded lazily and never simulated unless selected.
        let cand_configs: Vec<CpuConfig> = candidates.iter().map(|&i| space.config_at(i)).collect();
        let cand_table = try_table_from_configs(&cand_configs)?;
        let predictions: Vec<Vec<f64>> = committee
            .par_iter()
            .map(|m| m.try_predict(&cand_table))
            .collect::<Result<Vec<_>>>()?;

        let mut disagreement: Vec<(usize, f64)> = candidates
            .iter()
            .enumerate()
            .map(|(j, &i)| {
                let preds: Vec<f64> = predictions.iter().map(|p| p[j]).collect();
                (i, std_dev(&preds))
            })
            .collect();
        // Stable sort: ties resolve in candidate order, keeping the
        // acquisition deterministic for a fixed seed.
        disagreement.sort_by(|a, b| b.1.total_cmp(&a.1));
        acquired.extend(disagreement.iter().take(cfg.batch).map(|&(i, _)| i));
    }

    Ok(AdaptiveResult {
        benchmark,
        trajectory,
        simulated: oracle.simulated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpusim::runner::SimOptions;

    fn tiny_space() -> DesignSpace {
        DesignSpace::from_configs(
            DesignSpace::table1()
                .configs()
                .iter()
                .copied()
                .step_by(24)
                .collect(),
        )
    }

    fn tiny_cfg() -> AdaptiveConfig {
        AdaptiveConfig {
            initial: 16,
            batch: 8,
            rounds: 2,
            committee: 3,
            member: ModelKind::NnS,
            final_model: ModelKind::NnS,
            sim: SimOptions::quick(),
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn trajectory_has_expected_shape() {
        let r = try_run_adaptive(Benchmark::Mesa, &tiny_space(), &tiny_cfg(), None, None)
            .expect("tiny adaptive run succeeds");
        assert_eq!(r.trajectory.len(), 3);
        assert_eq!(r.trajectory[0].budget, 16);
        assert_eq!(r.trajectory[1].budget, 24);
        assert_eq!(r.trajectory[2].budget, 32);
        for p in &r.trajectory {
            assert!(p.adaptive_error.is_finite() && p.random_error.is_finite());
        }
        // FullSpace evaluation labels the whole space.
        assert_eq!(r.simulated, tiny_space().len());
    }

    #[test]
    fn acquisition_never_duplicates_points() {
        // Indirectly verified: budgets strictly increase by `batch`, which
        // requires every acquired batch to be disjoint from the pool.
        let cfg = AdaptiveConfig {
            initial: 12,
            batch: 6,
            rounds: 3,
            committee: 3,
            member: ModelKind::NnS,
            final_model: ModelKind::LrB,
            sim: SimOptions::quick(),
            seed: 9,
            ..Default::default()
        };
        let r = try_run_adaptive(Benchmark::Applu, &tiny_space(), &cfg, None, None)
            .expect("tiny adaptive run succeeds");
        let budgets: Vec<usize> = r.trajectory.iter().map(|p| p.budget).collect();
        assert_eq!(budgets, vec![12, 18, 24, 30]);
    }

    #[test]
    fn oversized_budget_is_a_typed_error() {
        let cfg = AdaptiveConfig {
            initial: 150,
            batch: 50,
            rounds: 10,
            ..Default::default()
        };
        let e = try_run_adaptive(Benchmark::Applu, &tiny_space(), &cfg, None, None)
            .expect_err("oversized budget must be rejected");
        assert_eq!(e.kind(), "invalid");
        assert!(
            e.to_string().contains("exceeds the space"),
            "unexpected message: {e}"
        );
    }

    #[test]
    fn holdout_mode_keeps_eval_points_out_of_acquisition() {
        let cfg = AdaptiveConfig {
            initial: 8,
            batch: 4,
            rounds: 2,
            committee: 2,
            pool: 24,
            eval: EvalMode::Holdout(16),
            member: ModelKind::NnS,
            final_model: ModelKind::LrB,
            sim: SimOptions::quick(),
            seed: 11,
        };
        let r = try_run_adaptive(Benchmark::Mcf, &tiny_space(), &cfg, None, None)
            .expect("holdout adaptive run succeeds");
        assert_eq!(r.trajectory.len(), 3);
        for p in &r.trajectory {
            assert!(p.adaptive_error.is_finite() && p.random_error.is_finite());
        }
        // Labels: 16 holdout + 16 acquired + per-round random baselines
        // (8, 12, 16 points, overlapping draws may be cached). The exact
        // count is seed-dependent; the bound is what matters.
        assert!(r.simulated >= 32, "holdout + acquisition must be labeled");
        assert!(
            r.simulated <= 16 + 16 + 36,
            "labels are cached, not re-simulated"
        );
    }

    #[test]
    fn seed_streams_never_collide() {
        // Regression for the flat `50 + round` / `70 + round` / `90 + round`
        // layout: eval(20) used to equal baseline_train(0). With blocked
        // streams every (round, purpose) pair is unique across 40 rounds
        // and 64 committee members.
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(streams::INITIAL));
        assert!(seen.insert(streams::HOLDOUT));
        for round in 0..40 {
            assert!(seen.insert(streams::eval(round)), "eval({round}) collides");
            assert!(
                seen.insert(streams::baseline_draw(round)),
                "baseline_draw({round}) collides"
            );
            assert!(
                seen.insert(streams::baseline_train(round)),
                "baseline_train({round}) collides"
            );
            assert!(seen.insert(streams::pool(round)), "pool({round}) collides");
            for m in 0..64 {
                assert!(
                    seen.insert(streams::committee(round, m)),
                    "committee({round}, {m}) collides"
                );
            }
        }
        // The old layout collided exactly here.
        assert_ne!(streams::eval(20), streams::baseline_train(0));
    }

    #[test]
    fn pool_capped_scoring_is_deterministic() {
        let cfg = AdaptiveConfig {
            initial: 8,
            batch: 4,
            rounds: 2,
            committee: 2,
            pool: 32,
            eval: EvalMode::AcquisitionOnly,
            member: ModelKind::NnS,
            final_model: ModelKind::NnS,
            sim: SimOptions::quick(),
            seed: 7,
        };
        let a = try_run_adaptive(Benchmark::Gcc, &tiny_space(), &cfg, None, None)
            .expect("pooled adaptive run succeeds");
        let b = try_run_adaptive(Benchmark::Gcc, &tiny_space(), &cfg, None, None)
            .expect("pooled adaptive run succeeds");
        assert_eq!(a.simulated, b.simulated);
        assert_eq!(a.simulated, 8 + 4 * 2);
        for (p, q) in a.trajectory.iter().zip(&b.trajectory) {
            assert_eq!(p.budget, q.budget);
            assert!(p.adaptive_error.is_nan() && q.adaptive_error.is_nan());
        }
    }
}
