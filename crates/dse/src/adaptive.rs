//! Adaptive (active-learning) design-space exploration — an extension past
//! the paper's fixed random sampling (§2 closes with "there may be other
//! means of utilizing the predictive models during the design space
//! exploration").
//!
//! Instead of drawing the whole training sample up front, the explorer
//! alternates: train a small *committee* of networks on everything
//! simulated so far, find the unsimulated configurations the committee
//! disagrees on most (query-by-committee uncertainty), simulate exactly
//! those, and repeat. The result is an error trajectory comparable, at
//! equal simulation budget, with the paper's one-shot random sample.

use crate::data::table_from_sweep;
use cpusim::runner::{sweep_design_space, SimResult};
use cpusim::{Benchmark, DesignSpace};
use linalg::dist::{child_seed, sample_indices, seeded_rng};
use linalg::stats::{mape, std_dev};
use mlmodels::{train, ModelKind, Table};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration of an adaptive exploration.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Random seed points to start from.
    pub initial: usize,
    /// Configurations added per acquisition round.
    pub batch: usize,
    /// Acquisition rounds.
    pub rounds: usize,
    /// Committee size (networks trained with different seeds).
    pub committee: usize,
    /// Committee member model (NN-Q by default: cheap and diverse).
    pub member: ModelKind,
    /// Final model retrained on the acquired sample for evaluation.
    pub final_model: ModelKind,
    /// Simulator options (used only when no precomputed sweep is given).
    pub sim: cpusim::runner::SimOptions,
    /// Master seed.
    pub seed: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            initial: 24,
            batch: 12,
            rounds: 4,
            committee: 5,
            member: ModelKind::NnQ,
            final_model: ModelKind::NnE,
            sim: cpusim::runner::SimOptions::default(),
            seed: 0xADA,
        }
    }
}

/// One point of the budget-vs-error trajectory.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Simulations spent so far.
    pub budget: usize,
    /// True error of the final model trained on the adaptive sample.
    pub adaptive_error: f64,
    /// True error of the same model trained on a random sample of equal
    /// size (the paper's protocol).
    pub random_error: f64,
}

/// Result of one adaptive exploration.
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// The benchmark explored.
    pub benchmark: Benchmark,
    /// Error trajectory, one entry per round (including the seed round).
    pub trajectory: Vec<TrajectoryPoint>,
}

/// Train the final model on `rows` and measure its error over the space.
fn eval_rows(full: &Table, rows: &[usize], model: ModelKind, seed: u64) -> f64 {
    let sample = full.select_rows(rows);
    let m = train(model, &sample, seed);
    let (err, _) = mape(&m.predict(full), full.target());
    err
}

/// Run the adaptive exploration. A precomputed sweep doubles as the
/// "simulator oracle" (labels are revealed as configurations are acquired)
/// and the ground truth for error measurement.
pub fn run_adaptive(
    benchmark: Benchmark,
    space: &DesignSpace,
    cfg: &AdaptiveConfig,
    precomputed: Option<Vec<SimResult>>,
) -> AdaptiveResult {
    let results = precomputed.unwrap_or_else(|| sweep_design_space(space, benchmark, &cfg.sim));
    let full = table_from_sweep(&results);
    let n = full.n_rows();
    assert!(
        cfg.initial + cfg.batch * cfg.rounds < n,
        "budget exceeds the space"
    );

    let mut rng = seeded_rng(child_seed(cfg.seed, 1));
    let mut acquired: Vec<usize> = sample_indices(&mut rng, n, cfg.initial);
    let mut trajectory = Vec::with_capacity(cfg.rounds + 1);

    for round in 0..=cfg.rounds {
        let budget = acquired.len();
        let adaptive_error = eval_rows(
            &full,
            &acquired,
            cfg.final_model,
            child_seed(cfg.seed, 50 + round as u64),
        );
        // Equal-budget random baseline (fresh draw each round).
        let mut brng = seeded_rng(child_seed(cfg.seed, 90 + round as u64));
        let random_rows = sample_indices(&mut brng, n, budget);
        let random_error = eval_rows(
            &full,
            &random_rows,
            cfg.final_model,
            child_seed(cfg.seed, 70 + round as u64),
        );
        trajectory.push(TrajectoryPoint {
            budget,
            adaptive_error,
            random_error,
        });

        if round == cfg.rounds {
            break;
        }

        // Query-by-committee: disagreement over the unacquired points.
        let sample = full.select_rows(&acquired);
        let committee: Vec<_> = (0..cfg.committee)
            .into_par_iter()
            .map(|m| {
                train(
                    cfg.member,
                    &sample,
                    child_seed(cfg.seed, 1000 + (round * 31 + m) as u64),
                )
            })
            .collect();
        let predictions: Vec<Vec<f64>> = committee.par_iter().map(|m| m.predict(&full)).collect();

        let mut disagreement: Vec<(usize, f64)> = (0..n)
            .filter(|i| !acquired.contains(i))
            .map(|i| {
                let preds: Vec<f64> = predictions.iter().map(|p| p[i]).collect();
                (i, std_dev(&preds))
            })
            .collect();
        disagreement.sort_by(|a, b| b.1.total_cmp(&a.1));
        acquired.extend(disagreement.iter().take(cfg.batch).map(|&(i, _)| i));
    }

    AdaptiveResult {
        benchmark,
        trajectory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpusim::runner::SimOptions;

    fn tiny_space() -> DesignSpace {
        DesignSpace::from_configs(
            DesignSpace::table1()
                .configs()
                .iter()
                .copied()
                .step_by(24)
                .collect(),
        )
    }

    #[test]
    fn trajectory_has_expected_shape() {
        let cfg = AdaptiveConfig {
            initial: 16,
            batch: 8,
            rounds: 2,
            committee: 3,
            member: ModelKind::NnS,
            final_model: ModelKind::NnS,
            sim: SimOptions::quick(),
            seed: 3,
        };
        let r = run_adaptive(Benchmark::Mesa, &tiny_space(), &cfg, None);
        assert_eq!(r.trajectory.len(), 3);
        assert_eq!(r.trajectory[0].budget, 16);
        assert_eq!(r.trajectory[1].budget, 24);
        assert_eq!(r.trajectory[2].budget, 32);
        for p in &r.trajectory {
            assert!(p.adaptive_error.is_finite() && p.random_error.is_finite());
        }
    }

    #[test]
    fn acquisition_never_duplicates_points() {
        // Indirectly verified: budgets strictly increase by `batch`, which
        // requires every acquired batch to be disjoint from the pool.
        let cfg = AdaptiveConfig {
            initial: 12,
            batch: 6,
            rounds: 3,
            committee: 3,
            member: ModelKind::NnS,
            final_model: ModelKind::LrB,
            sim: SimOptions::quick(),
            seed: 9,
        };
        let r = run_adaptive(Benchmark::Applu, &tiny_space(), &cfg, None);
        let budgets: Vec<usize> = r.trajectory.iter().map(|p| p.budget).collect();
        assert_eq!(budgets, vec![12, 18, 24, 30]);
    }

    #[test]
    #[should_panic(expected = "budget exceeds the space")]
    fn oversized_budget_panics() {
        let cfg = AdaptiveConfig {
            initial: 150,
            batch: 50,
            rounds: 10,
            ..Default::default()
        };
        let _ = run_adaptive(Benchmark::Applu, &tiny_space(), &cfg, None);
    }
}
