//! `dse` — the paper's two design-space-exploration workflows (Figure 1).
//!
//! * [`sampled`] — **sampled design-space exploration** (§2, §4.2): sweep
//!   the 4608-point microprocessor space with the [`cpusim`] simulator,
//!   train each model on a random 1–5 % sample, estimate its error with the
//!   §3.3 cross-validation protocol, and measure the *true* error against
//!   the full space.
//! * [`chrono`] — **chronological predictive modelling** (§2, §4.3): train
//!   on one year of [`specdata`] announcements and predict the next.
//! * [`selectbest`] — the *select* method (§4.4, Table 3): pick the model
//!   with the best estimated error and use it for the predictions.
//! * [`adaptive`] — query-by-committee active learning, an extension past
//!   the paper's one-shot random sampling.
//! * [`data`] — adapters turning simulator sweeps and SPEC announcements
//!   into [`mlmodels::Table`]s.
//! * [`report`] — plain-text table/series formatting shared by the
//!   reproduction harnesses.
//! * [`faultinject`] — deterministic fault injectors (NaN cycles,
//!   collinear columns, divergent configs, truncated checkpoints) backing
//!   the robustness test suite.
//!
//! Each workflow has a panicking legacy entry point and a fallible `try_*`
//! variant returning typed [`fault::Error`]s; the `try_*` forms also
//! accept a `--checkpoint` JSONL path for kill-and-resume operation.

pub mod adaptive;
pub mod chrono;
pub mod data;
pub mod faultinject;
pub mod report;
pub mod sampled;
pub mod selectbest;

pub use adaptive::{try_run_adaptive, AdaptiveConfig, AdaptiveResult, EvalMode, TrajectoryPoint};
pub use chrono::{run_chronological, try_run_chronological, ChronoConfig, ChronoResult};
pub use sampled::{
    run_sampled_dse, try_run_sampled_dse, DroppedFit, SampledConfig, SampledPoint, SampledRun,
    SamplingStrategy,
};
pub use selectbest::{select_method_error, try_select_method_error, SelectOutcome};
